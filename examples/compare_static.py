#!/usr/bin/env python3
"""Compare SLING against the S2-like static baseline on a few categories.

This is a scaled-down version of the Table 2 experiment (Section 5.5): it
runs both analyses over a handful of categories and prints the
Both / S2-only / SLING-only / Neither buckets.  The full table is produced by
``python -m repro.evaluation.table2``.

Run with ``python examples/compare_static.py``.
"""

from repro.evaluation.table2 import format_table2, run_table2


def main() -> None:
    result = run_table2(
        categories=["SLL", "DLL", "Binary Search Tree", "GRASShopper_SLL (Recursive)"],
    )
    print(format_table2(result))
    summary = result.summary()
    print(
        f"\nSLING finds {summary.both + summary.sling_only} of {summary.total} documented "
        f"properties; the static baseline finds {summary.both + summary.s2_only}."
    )


if __name__ == "__main__":
    main()
