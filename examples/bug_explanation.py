#!/usr/bin/env python3
"""Case studies of Section 5.4: using inferred invariants to explain bugs.

Two of the paper's examples are reproduced against the benchmark suite:

* ``glib/glist_SLL/sortMerge``: a typo makes the function always return null.
  SLING's postcondition reports ``res = nil``, which is how the paper says
  the bug was noticed.  The fixed variant gets a proper merged-list
  postcondition.
* ``AFWP/dll_fix``: a seeded bug makes the repair loop never execute; the
  inferred loop invariant contains ``k = nil`` where the documented invariant
  allows ``k`` to range over the list.

Run with ``python examples/bug_explanation.py``.
"""

from repro.benchsuite import get_benchmark
from repro.core import Sling
from repro.sl.stdpreds import STRUCT_FIELDS


def show(title: str, lines: list[str]) -> None:
    print(f"\n== {title} ==")
    for line in lines:
        print("  ", line)


def sort_merge_case_study() -> None:
    for name in ("gslist/sortMerge", "gslist/sortMergeFixed"):
        benchmark = get_benchmark(name)
        sling = Sling(benchmark.program, benchmark.predicates)
        spec = sling.infer_function(benchmark.function, benchmark.test_cases(seed=1))
        posts = [
            invariant.pretty(STRUCT_FIELDS)
            for invariants in spec.postconditions.values()
            for invariant in invariants
        ]
        show(f"{name}: inferred postconditions", posts[:4])
        always_null = all("res" not in text or "res = nil" in text or "nil = res" in text
                          for text in posts if "res" in text)
        if name.endswith("sortMerge"):
            print("   --> the result is reported as null: the typo bug is visible")
        else:
            print("   --> the merged list is described normally" if not always_null else "")


def dll_fix_case_study() -> None:
    for name in ("afwp_dll/dll_fix", "afwp_dll/dll_fix_fixed"):
        benchmark = get_benchmark(name)
        sling = Sling(benchmark.program, benchmark.predicates)
        spec = sling.infer_function(benchmark.function, benchmark.test_cases(seed=1))
        loops = [
            invariant.pretty(STRUCT_FIELDS)
            for invariants in spec.loop_invariants.values()
            for invariant in invariants
        ]
        show(f"{name}: inferred loop invariants", loops[:4])
        if all("k = nil" in text or "nil = k" in text for text in loops):
            print("   --> every loop invariant forces k = nil: the repair loop never runs (bug!)")
        else:
            print("   --> k ranges over the list as the documented invariant expects")


def main() -> None:
    sort_merge_case_study()
    dll_fix_case_study()


if __name__ == "__main__":
    main()
