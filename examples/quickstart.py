#!/usr/bin/env python3
"""Quickstart: infer the specification of the paper's ``concat`` example.

This reproduces Section 2 of the paper end to end:

1. define the ``concat`` function over doubly-linked lists in heaplang,
2. run it on a handful of random inputs under the tracing debugger,
3. let SLING infer the precondition, the postconditions at both returns and
   the invariant at the labelled locations.

Run with ``python examples/quickstart.py``.
"""

import random

from repro.core import Sling
from repro.datagen import make_dll
from repro.lang import Function, If, Label, Program, Return, Store, standard_structs
from repro.lang.ast import Assign
from repro.lang.builder import call, field, is_null, not_null, v
from repro.sl.stdpreds import STRUCT_FIELDS, predicates_for


def build_concat_program() -> Program:
    """The ``concat`` function of the paper's Figure 1, in heaplang."""
    concat = Function(
        "concat",
        [("x", "DllNode*"), ("y", "DllNode*")],
        "DllNode*",
        [
            Label("L1"),
            If(
                is_null("x"),
                [Label("L2"), Return(v("y"))],
                [
                    Assign("tmp", call("concat", field("x", "next"), v("y"))),
                    Store(v("x"), "next", v("tmp")),
                    If(not_null("tmp"), [Store(v("tmp"), "prev", v("x"))]),
                    Label("L3"),
                    Return(v("x")),
                ],
            ),
        ],
    )
    return Program(standard_structs(), [concat])


def main() -> None:
    program = build_concat_program()
    predicates = predicates_for("dll")

    # Test inputs: the empty list plus random doubly-linked lists (the paper
    # uses size 10; smaller sizes keep this example fast).
    rng = random.Random(7)
    test_cases = [
        lambda heap: [make_dll(heap, rng, 3), make_dll(heap, rng, 2)],
        lambda heap: [0, make_dll(heap, rng, 2)],
        lambda heap: [make_dll(heap, rng, 10), make_dll(heap, rng, 10)],
    ]

    sling = Sling(program, predicates)
    specification = sling.infer_function("concat", test_cases)

    print("== Inferred precondition (compare with F'_L1 in the paper) ==")
    for invariant in specification.preconditions[:3]:
        print("  ", invariant.pretty(STRUCT_FIELDS))

    for location, invariants in specification.postconditions.items():
        print(f"\n== Postcondition at {location} ==")
        for invariant in invariants[:3]:
            print("  ", invariant.pretty(STRUCT_FIELDS))

    print("\nFrame-rule validation:", "passed" if specification.validated else "FAILED")
    print(f"Total invariants: {specification.invariant_count()} "
          f"({specification.inference_seconds:.2f}s)")


if __name__ == "__main__":
    main()
