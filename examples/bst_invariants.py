#!/usr/bin/env python3
"""Infer invariants for binary-search-tree operations at arbitrary locations.

Shows the second half of the public API: instead of whole-function
specifications, ask for the invariants at one specific location -- here the
loop head of the iterative BST lookup and the entry of the recursive
insertion -- and print the data-sensitive shape facts SLING finds (the ``bst``
predicate tracks lower/upper bounds of the stored keys).

Run with ``python examples/bst_invariants.py``.
"""

from repro.benchsuite import get_benchmark
from repro.core import Sling, SlingConfig
from repro.sl.stdpreds import STRUCT_FIELDS


def main() -> None:
    find_iter = get_benchmark("bst/findIter")
    sling = Sling(find_iter.program, find_iter.predicates, SlingConfig())
    tests = find_iter.test_cases(seed=11)

    print("== Loop invariant of bst/findIter (cursor walks down a BST) ==")
    for invariant in sling.infer_at("findIter", "loop#0", tests)[:4]:
        print("  ", invariant.pretty(STRUCT_FIELDS))

    print("\n== Precondition of bst/insert ==")
    insert = get_benchmark("bst/insert")
    sling_insert = Sling(insert.program, insert.predicates)
    for invariant in sling_insert.infer_at("insert", "entry", insert.test_cases(seed=11))[:4]:
        print("  ", invariant.pretty(STRUCT_FIELDS))

    print("\n== Postconditions of bst/insert (each return statement) ==")
    spec = sling_insert.infer_function("insert", insert.test_cases(seed=11))
    for location, invariants in spec.postconditions.items():
        for invariant in invariants[:2]:
            print(f"  [{location}]", invariant.pretty(STRUCT_FIELDS))


if __name__ == "__main__":
    main()
