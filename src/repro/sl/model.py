"""Stack-heap models (concrete traces) and their operators.

A stack-heap model ``(s, h)`` pairs a *stack* ``s : Var -> Val`` with a
*heap* ``h : Loc -> (Type, Val*)`` (Section 3 of the paper).  Values are
Python integers, ``nil`` is ``0`` and allocated addresses are positive
integers.

The module also provides the sequence operators ``(+)`` (disjoint union) and
``(\\)`` (difference) lifted over sequences of models, which Algorithm 1 uses
to thread residual heaps through the iterative inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.sl.errors import HeapError
from repro.sl.exprs import NIL_VALUE


# ---------------------------------------------------------------------------
# Canonical labeling (address-bijection invariants)
# ---------------------------------------------------------------------------
#
# Two stack-heap models that differ only by a bijection on their allocated
# addresses satisfy exactly the same symbolic-heap formulae (for the fragment
# this reproduction checks: pointer values are only ever compared for
# equality, followed, or tested for allocation -- never ordered or used in
# arithmetic).  Canonical labeling makes that equivalence *observable*: a
# deterministic DFS from the sorted stack roots renames addresses to dense
# canonical ids, and models (or bare heaps) with equal canonical forms are
# isomorphic, with the composed relabelings as the witness bijection.
#
# Encoding.  In a canonical form every *address occurrence* (a value that
# lies in ``dom(h)`` at a position typed as a pointer) is replaced by the
# tagged pair ``('a', cid)``; every other value is kept raw.  The tag keeps
# renamed addresses from colliding with untouched integer data, so equal
# forms really do mean "same structure, same data, addresses renamed".
#
# Exactness guard.  The invariance argument needs every renamed value to be
# used only as a pointer.  With a :class:`~repro.lang.types.StructRegistry`
# the field types decide that exactly; a model where an *integer-typed*
# field (or integer-typed stack variable) coincidentally holds an allocated
# address is marked ``exact=False`` and excluded from any sharing, as is
# every canonicalization performed without struct information.  Consumers
# (the isomorphism dedup in the driver, the canonical stream keys in the
# checker) only ever share work between ``exact`` forms.


class CanonicalForm:
    """An interned canonical form: value identity with a precomputed hash."""

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CanonicalForm):
            return NotImplemented
        return self._hash == other._hash and self.key == other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CanonicalForm({self._hash:#x})"


#: Process-wide intern table: canonical key -> shared :class:`CanonicalForm`.
#: Populating it before forking engine workers lets the children inherit
#: every known form copy-on-write (see ``InferenceEngine`` warm-pool mode).
_INTERN_FORMS: dict[tuple, CanonicalForm] = {}
_INTERN_LIMIT = 65_536


def intern_form(key: tuple) -> CanonicalForm:
    """The shared :class:`CanonicalForm` for ``key`` (process-wide)."""
    form = _INTERN_FORMS.get(key)
    if form is None:
        if len(_INTERN_FORMS) >= _INTERN_LIMIT:
            # Safety valve: forms are tiny, but unbounded growth across a
            # long-lived engine process is still growth.  Dropping the table
            # only loses sharing of *identity*, never correctness.
            _INTERN_FORMS.clear()
        form = CanonicalForm(key)
        _INTERN_FORMS[key] = form
    return form


def intern_table_size() -> int:
    """Number of canonical forms currently interned in this process."""
    return len(_INTERN_FORMS)


class HeapCanon:
    """The canonical labeling of one heap (relative to a DFS seed order).

    ``to_id`` maps each allocated address to its dense canonical id (1-based,
    in DFS-visit order); ``to_tag`` maps it to the tagged pair used inside
    canonical forms; ``from_addr`` is the inverse (index 0 unused).  ``exact``
    is the exactness guard described in the module notes; ``root_tag`` is the
    encoded seed value (``('a', 1)`` whenever the seed is allocated).
    """

    __slots__ = ("form", "exact", "to_id", "to_tag", "from_addr", "root_tag")

    def __init__(self, form, exact, to_id, to_tag, from_addr, root_tag):
        self.form = form
        self.exact = exact
        self.to_id = to_id
        self.to_tag = to_tag
        self.from_addr = from_addr
        self.root_tag = root_tag

    def encode(self, value: int):
        """Canonical-space image of a concrete value (tag or raw)."""
        return self.to_tag.get(value, value)

    def decode(self, value):
        """Concrete image of a canonical-space value (tag or raw)."""
        if type(value) is tuple:
            return self.from_addr[value[1]]
        return value


class ModelCanon:
    """The canonical labeling of one stack-heap model (stack roots as seeds)."""

    __slots__ = ("form", "exact", "to_id", "to_tag", "from_addr")

    def __init__(self, form, exact, to_id, to_tag, from_addr):
        self.form = form
        self.exact = exact
        self.to_id = to_id
        self.to_tag = to_tag
        self.from_addr = from_addr


def _label_addresses(cells: Mapping[int, "HeapCell"], seeds: Iterable[int]) -> list[int]:
    """Visit order of a deterministic DFS from ``seeds``.

    Seeds are taken in the given order; successors are field values that are
    themselves allocated, followed in declaration order.  Addresses not
    reachable from any seed are appended in ascending address order (each
    starting its own DFS), which keeps the labeling total and deterministic
    -- though only the seeded part is invariant under address renaming.
    """
    order: list[int] = []
    seen: set[int] = set()

    def visit(start: int) -> None:
        stack = [start]
        while stack:
            addr = stack.pop()
            if addr in seen:
                continue
            seen.add(addr)
            order.append(addr)
            # Reversed so the first declared field is explored first.
            for value in reversed(cells[addr].values):
                if value != NIL_VALUE and value not in seen and value in cells:
                    stack.append(value)

    for seed in seeds:
        if seed in cells and seed not in seen:
            visit(seed)
    if len(seen) != len(cells):
        for addr in sorted(cells):
            if addr not in seen:
                visit(addr)
    return order


def _build_labeling(cells, seeds, structs):
    """The full canonical labeling of one cell map: DFS order, both address
    maps, the inverse, the encoded cell tuple and the exactness verdict.

    Shared by :meth:`Heap.canonical` and :meth:`StackHeapModel.canonical` so
    the tag encoding and id base can never drift apart between the two --
    cross-consumer form equality depends on them being identical.
    """
    order = _label_addresses(cells, seeds)
    to_id = {addr: position + 1 for position, addr in enumerate(order)}
    to_tag = {addr: ("a", cid) for addr, cid in to_id.items()}
    from_addr = (0, *order)
    encoded, exact = _encode_cells(cells, order, to_tag, structs)
    return to_id, to_tag, from_addr, encoded, exact


def _encode_cells(cells, order, to_tag, structs) -> tuple[tuple, bool]:
    """Canonical cell tuple (in id order) plus the exactness verdict."""
    exact = structs is not None
    encoded = []
    for addr in order:
        cell = cells[addr]
        struct = structs.get(cell.type_name) if structs is not None and cell.type_name in structs else None
        if struct is None:
            # Unknown structure type: fall back to the value-based heuristic
            # (anything allocated is treated as a pointer) and drop the
            # exactness claim.
            exact = False
            fields = tuple(
                (name, to_tag.get(value, value)) for name, value in cell.fields
            )
        else:
            fields = []
            for name, value in cell.fields:
                if struct.field_type(name).endswith("*"):
                    fields.append((name, to_tag.get(value, value)))
                else:
                    if value in to_tag:
                        # An integer field holding an allocated address: the
                        # renaming could change arithmetic over this value.
                        exact = False
                    fields.append((name, value))
            fields = tuple(fields)
        encoded.append((cell.type_name, fields))
    return tuple(encoded), exact


@dataclass(frozen=True)
class HeapCell:
    """A single allocated cell: its structure type and field values."""

    type_name: str
    fields: tuple[tuple[str, int], ...]

    def __init__(self, type_name: str, fields: Mapping[str, int] | Iterable[tuple[str, int]]):
        object.__setattr__(self, "type_name", type_name)
        if isinstance(fields, Mapping):
            items = tuple(fields.items())
        else:
            items = tuple(fields)
        object.__setattr__(self, "fields", items)
        # The checker reads the value tuple on every points-to match
        # attempt; materialize it once, eagerly.
        object.__setattr__(self, "_values", tuple(value for _, value in items))

    @property
    def field_dict(self) -> dict[str, int]:
        """Field values as a dictionary (field name -> value)."""
        return dict(self.fields)

    @property
    def values(self) -> tuple[int, ...]:
        """Field values in declaration order (precomputed in ``__init__``)."""
        try:
            return self._values
        except AttributeError:
            # Unpickled from an older payload without the eager tuple.
            cached = tuple(value for _, value in self.fields)
            object.__setattr__(self, "_values", cached)
            return cached

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(name for name, _ in self.fields)

    def get(self, field_name: str) -> int:
        """Return the value of ``field_name``."""
        for name, value in self.fields:
            if name == field_name:
                return value
        raise HeapError(f"cell of type {self.type_name!r} has no field {field_name!r}")


class Heap:
    """An immutable finite partial map from addresses to :class:`HeapCell`."""

    __slots__ = ("_cells", "_hash", "_domain", "_canon", "_reach")

    def __init__(self, cells: Mapping[int, HeapCell] | None = None):
        self._cells: dict[int, HeapCell] = dict(cells) if cells else {}
        self._hash: int | None = None
        self._domain: frozenset[int] | None = None
        #: Per-root canonical labelings (see :meth:`canonical`).
        self._canon: dict[int, HeapCanon] | None = None
        #: Memoized reachability (see :meth:`reachable_from`).
        self._reach: dict[tuple[int, ...], frozenset[int]] | None = None

    def __getstate__(self) -> dict[int, HeapCell]:
        # Cached hash/domain/canon are per-process (string hashing is
        # salted); ship only the cells across pickle boundaries.
        return self._cells

    def __setstate__(self, state: dict[int, HeapCell]) -> None:
        self._cells = state
        self._hash = None
        self._domain = None
        self._canon = None
        self._reach = None

    # -- mapping interface ----------------------------------------------------

    def __contains__(self, addr: int) -> bool:
        return addr in self._cells

    def __getitem__(self, addr: int) -> HeapCell:
        try:
            return self._cells[addr]
        except KeyError:
            raise HeapError(f"address {addr:#x} is not allocated") from None

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Heap):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        # Heaps are hashed on every memoized checker lookup; the underlying
        # frozenset is only materialized once.
        if self._hash is None:
            self._hash = hash(frozenset(self._cells.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heap({self._cells!r})"

    # -- queries --------------------------------------------------------------

    def domain(self) -> frozenset[int]:
        """The set of allocated addresses ``dom(h)`` (computed once)."""
        if self._domain is None:
            self._domain = frozenset(self._cells)
        return self._domain

    def items(self) -> Iterable[tuple[int, HeapCell]]:
        """Iterate over ``(address, cell)`` pairs."""
        return self._cells.items()

    def get(self, addr: int) -> HeapCell | None:
        """Return the cell at ``addr`` or ``None`` if unallocated."""
        return self._cells.get(addr)

    def is_empty(self) -> bool:
        """True if the heap has no cells."""
        return not self._cells

    def disjoint_from(self, other: "Heap") -> bool:
        """``h1 # h2``: the two heaps have disjoint domains."""
        if len(self._cells) > len(other._cells):
            return other.disjoint_from(self)
        return all(addr not in other._cells for addr in self._cells)

    # -- constructions ---------------------------------------------------------

    def restrict(self, addrs: Iterable[int]) -> "Heap":
        """The sub-heap containing only the given addresses (that are present)."""
        wanted = set(addrs)
        return Heap({addr: cell for addr, cell in self._cells.items() if addr in wanted})

    def remove(self, addrs: Iterable[int]) -> "Heap":
        """The heap without the given addresses."""
        unwanted = set(addrs)
        return Heap({addr: cell for addr, cell in self._cells.items() if addr not in unwanted})

    def union(self, other: "Heap") -> "Heap":
        """Disjoint union ``h1 o h2``; raises :class:`HeapError` on overlap."""
        if not self.disjoint_from(other):
            overlap = self.domain() & other.domain()
            raise HeapError(f"heap union of overlapping heaps (shared addresses {sorted(overlap)})")
        merged = dict(self._cells)
        merged.update(other._cells)
        return Heap(merged)

    def difference(self, other: "Heap") -> "Heap":
        """Heap difference ``h1 \\ h2`` (removes addresses present in ``other``)."""
        return self.remove(other.domain())

    def reachable_from(self, roots: Iterable[int]) -> frozenset[int]:
        """Addresses of cells reachable from ``roots`` by following field values.

        Memoized per (normalized) root set: the variable-ordering heuristic,
        the heap splitter and the candidate screens all re-ask the same
        reachability questions about the same (immutable) heap.
        """
        key = tuple(sorted(set(roots)))
        cache = self._reach
        if cache is None:
            cache = self._reach = {}
        cached = cache.get(key)
        if cached is not None:
            return cached
        seen: set[int] = set()
        stack = [addr for addr in key if addr in self._cells]
        while stack:
            addr = stack.pop()
            if addr in seen:
                continue
            seen.add(addr)
            for value in self._cells[addr].values:
                if value != NIL_VALUE and value in self._cells and value not in seen:
                    stack.append(value)
        result = frozenset(seen)
        cache[key] = result
        return result

    # -- canonical labeling ----------------------------------------------------

    def canonical(self, root: int, structs=None) -> HeapCanon:
        """Canonical labeling of this heap with the DFS seeded at ``root``.

        Cached per root value.  The cache deliberately ignores ``structs``
        identity: a heap lives inside one program, whose struct registry does
        not change over the heap's lifetime.
        """
        cache = self._canon
        if cache is None:
            cache = self._canon = {}
        cached = cache.get(root)
        if cached is not None:
            return cached
        cells = self._cells
        to_id, to_tag, from_addr, encoded, exact = _build_labeling(cells, (root,), structs)
        canon = HeapCanon(
            form=intern_form(("h", encoded)),
            exact=exact,
            to_id=to_id,
            to_tag=to_tag,
            from_addr=from_addr,
            root_tag=to_tag.get(root, root),
        )
        cache[root] = canon
        return canon


@dataclass(frozen=True)
class StackHeapModel:
    """A concrete trace: stack, heap and (optional) variable typing.

    ``var_types`` maps stack variable names to heaplang type names (e.g.
    ``"Node*"`` or ``"int"``); it is used by the inference to restrict
    predicate-argument candidates to type-consistent variables.

    ``freed_addresses`` records addresses that were reachable at snapshot
    time but had already been passed to ``free``; the paper observes that
    LLDB still reports the (now invalid) contents of such cells, which makes
    the resulting invariants spurious.  We keep the information so the
    evaluation can report spurious counts exactly like Table 1.
    """

    stack: tuple[tuple[str, int], ...]
    heap: Heap
    var_types: tuple[tuple[str, str], ...] = ()
    freed_addresses: frozenset[int] = frozenset()

    def __init__(
        self,
        stack: Mapping[str, int] | Iterable[tuple[str, int]],
        heap: Heap | Mapping[int, HeapCell],
        var_types: Mapping[str, str] | Iterable[tuple[str, str]] = (),
        freed_addresses: Iterable[int] = (),
    ):
        stack_items = tuple(stack.items()) if isinstance(stack, Mapping) else tuple(stack)
        object.__setattr__(self, "stack", stack_items)
        object.__setattr__(self, "heap", heap if isinstance(heap, Heap) else Heap(heap))
        type_items = (
            tuple(var_types.items()) if isinstance(var_types, Mapping) else tuple(var_types)
        )
        object.__setattr__(self, "var_types", type_items)
        object.__setattr__(self, "freed_addresses", frozenset(freed_addresses))

    def __hash__(self) -> int:
        # Models key the checker's memo table; cache the (immutable) hash.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.stack, self.heap, self.var_types, self.freed_addresses))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> dict:
        # Drop the per-process caches (salted hashes, derived dicts) so a
        # pickled model re-derives them in the receiving interpreter.
        state = dict(self.__dict__)
        for cache in ("_hash", "_stack_map", "_types_map", "_canonical", "_pointer_vars"):
            state.pop(cache, None)
        return state

    # -- stack access -----------------------------------------------------------

    @property
    def stack_dict(self) -> dict[str, int]:
        """The stack as a fresh dictionary (variable -> value)."""
        return dict(self.stack)

    @property
    def type_dict(self) -> dict[str, str]:
        """Variable typing as a fresh dictionary (variable -> type name)."""
        return dict(self.var_types)

    @property
    def stack_map(self) -> dict[str, int]:
        """The stack as a shared, cached dictionary.  Do not mutate."""
        cached = self.__dict__.get("_stack_map")
        if cached is None:
            cached = dict(self.stack)
            object.__setattr__(self, "_stack_map", cached)
        return cached

    @property
    def types_map(self) -> dict[str, str]:
        """Variable typing as a shared, cached dictionary.  Do not mutate."""
        cached = self.__dict__.get("_types_map")
        if cached is None:
            cached = dict(self.var_types)
            object.__setattr__(self, "_types_map", cached)
        return cached

    def value_of(self, var: str) -> int:
        """Value of a stack variable."""
        return self.stack_map[var]

    def has_var(self, var: str) -> bool:
        """True when the stack binds ``var``."""
        return var in self.stack_map

    def pointer_vars(self) -> tuple[str, ...]:
        """Stack variables with a pointer type (or untyped variables that hold addresses).

        Computed once per model (the variable-ordering heuristic, the heap
        splitter and pure inference all re-ask it); callers must not mutate
        the returned tuple's backing (they cannot -- it is a tuple).
        """
        cached = self.__dict__.get("_pointer_vars")
        if cached is not None:
            return cached
        types = self.types_map
        result = []
        for name, value in self.stack:
            var_type = types.get(name)
            if var_type is not None:
                if var_type.endswith("*"):
                    result.append(name)
            elif value == NIL_VALUE or value in self.heap:
                result.append(name)
        cached = tuple(result)
        object.__setattr__(self, "_pointer_vars", cached)
        return cached

    # -- canonical labeling -----------------------------------------------------

    def canonical(self, structs=None) -> ModelCanon:
        """Canonical labeling of the model, seeded from the sorted stack roots.

        Models with equal (``exact``) canonical forms are isomorphic: they
        have the same stack variables, types and data, and their heaps differ
        only by the address bijection ``other.from_addr . self.to_id``.
        Cached per model; the cache ignores ``structs`` identity (one program,
        one registry -- see :meth:`Heap.canonical`).
        """
        cached = self.__dict__.get("_canonical")
        if cached is not None:
            return cached
        cells = self.heap._cells
        types = self.types_map
        seeds = [value for _, value in sorted(self.stack)]
        to_id, to_tag, from_addr, encoded, exact = _build_labeling(cells, seeds, structs)
        stack_enc = []
        for name, value in self.stack:
            var_type = types.get(name)
            if var_type is None:
                # Untyped stack variable (e.g. the ghost ``res``): treated as
                # a pointer whenever it holds an allocated address, exactly
                # like :meth:`pointer_vars` does.
                stack_enc.append((name, to_tag.get(value, value)))
            elif var_type.endswith("*"):
                stack_enc.append((name, to_tag.get(value, value)))
            else:
                if value in to_tag:
                    # Integer variable coincidentally holding an address: the
                    # renaming could change its arithmetic meaning.
                    exact = False
                stack_enc.append((name, value))
        freed_enc = tuple(
            sorted(
                (to_tag.get(addr, addr) for addr in self.freed_addresses),
                key=lambda item: (1, item[1]) if type(item) is tuple else (0, item),
            )
        )
        key = ("m", tuple(stack_enc), self.var_types, encoded, freed_enc)
        canon = ModelCanon(
            form=intern_form(key),
            exact=exact,
            to_id=to_id,
            to_tag=to_tag,
            from_addr=from_addr,
        )
        object.__setattr__(self, "_canonical", canon)
        return canon

    def has_freed_cells(self) -> bool:
        """True when the snapshot observed cells that had already been freed."""
        return bool(self.freed_addresses)

    # -- heap constructions -------------------------------------------------------

    def with_heap(self, heap: Heap) -> "StackHeapModel":
        """Return a copy of the model with a different heap."""
        return StackHeapModel(self.stack, heap, self.var_types, self.freed_addresses)


def models_union(
    models: Sequence[StackHeapModel], others: Sequence[StackHeapModel]
) -> list[StackHeapModel]:
    """Pointwise disjoint heap union of two equal-length model sequences."""
    if len(models) != len(others):
        raise HeapError("model sequences of different lengths cannot be combined")
    return [m.with_heap(m.heap.union(o.heap)) for m, o in zip(models, others)]


def models_difference(
    models: Sequence[StackHeapModel], others: Sequence[StackHeapModel]
) -> list[StackHeapModel]:
    """Pointwise heap difference of two equal-length model sequences."""
    if len(models) != len(others):
        raise HeapError("model sequences of different lengths cannot be combined")
    return [m.with_heap(m.heap.difference(o.heap)) for m, o in zip(models, others)]
