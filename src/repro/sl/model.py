"""Stack-heap models (concrete traces) and their operators.

A stack-heap model ``(s, h)`` pairs a *stack* ``s : Var -> Val`` with a
*heap* ``h : Loc -> (Type, Val*)`` (Section 3 of the paper).  Values are
Python integers, ``nil`` is ``0`` and allocated addresses are positive
integers.

The module also provides the sequence operators ``(+)`` (disjoint union) and
``(\\)`` (difference) lifted over sequences of models, which Algorithm 1 uses
to thread residual heaps through the iterative inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.sl.errors import HeapError
from repro.sl.exprs import NIL_VALUE


@dataclass(frozen=True)
class HeapCell:
    """A single allocated cell: its structure type and field values."""

    type_name: str
    fields: tuple[tuple[str, int], ...]

    def __init__(self, type_name: str, fields: Mapping[str, int] | Iterable[tuple[str, int]]):
        object.__setattr__(self, "type_name", type_name)
        if isinstance(fields, Mapping):
            items = tuple(fields.items())
        else:
            items = tuple(fields)
        object.__setattr__(self, "fields", items)
        # The checker reads the value tuple on every points-to match
        # attempt; materialize it once, eagerly.
        object.__setattr__(self, "_values", tuple(value for _, value in items))

    @property
    def field_dict(self) -> dict[str, int]:
        """Field values as a dictionary (field name -> value)."""
        return dict(self.fields)

    @property
    def values(self) -> tuple[int, ...]:
        """Field values in declaration order (precomputed in ``__init__``)."""
        try:
            return self._values
        except AttributeError:
            # Unpickled from an older payload without the eager tuple.
            cached = tuple(value for _, value in self.fields)
            object.__setattr__(self, "_values", cached)
            return cached

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(name for name, _ in self.fields)

    def get(self, field_name: str) -> int:
        """Return the value of ``field_name``."""
        for name, value in self.fields:
            if name == field_name:
                return value
        raise HeapError(f"cell of type {self.type_name!r} has no field {field_name!r}")


class Heap:
    """An immutable finite partial map from addresses to :class:`HeapCell`."""

    __slots__ = ("_cells", "_hash", "_domain")

    def __init__(self, cells: Mapping[int, HeapCell] | None = None):
        self._cells: dict[int, HeapCell] = dict(cells) if cells else {}
        self._hash: int | None = None
        self._domain: frozenset[int] | None = None

    def __getstate__(self) -> dict[int, HeapCell]:
        # Cached hash/domain are per-process (string hashing is salted);
        # ship only the cells across pickle boundaries.
        return self._cells

    def __setstate__(self, state: dict[int, HeapCell]) -> None:
        self._cells = state
        self._hash = None
        self._domain = None

    # -- mapping interface ----------------------------------------------------

    def __contains__(self, addr: int) -> bool:
        return addr in self._cells

    def __getitem__(self, addr: int) -> HeapCell:
        try:
            return self._cells[addr]
        except KeyError:
            raise HeapError(f"address {addr:#x} is not allocated") from None

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Heap):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        # Heaps are hashed on every memoized checker lookup; the underlying
        # frozenset is only materialized once.
        if self._hash is None:
            self._hash = hash(frozenset(self._cells.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heap({self._cells!r})"

    # -- queries --------------------------------------------------------------

    def domain(self) -> frozenset[int]:
        """The set of allocated addresses ``dom(h)`` (computed once)."""
        if self._domain is None:
            self._domain = frozenset(self._cells)
        return self._domain

    def items(self) -> Iterable[tuple[int, HeapCell]]:
        """Iterate over ``(address, cell)`` pairs."""
        return self._cells.items()

    def get(self, addr: int) -> HeapCell | None:
        """Return the cell at ``addr`` or ``None`` if unallocated."""
        return self._cells.get(addr)

    def is_empty(self) -> bool:
        """True if the heap has no cells."""
        return not self._cells

    def disjoint_from(self, other: "Heap") -> bool:
        """``h1 # h2``: the two heaps have disjoint domains."""
        if len(self._cells) > len(other._cells):
            return other.disjoint_from(self)
        return all(addr not in other._cells for addr in self._cells)

    # -- constructions ---------------------------------------------------------

    def restrict(self, addrs: Iterable[int]) -> "Heap":
        """The sub-heap containing only the given addresses (that are present)."""
        wanted = set(addrs)
        return Heap({addr: cell for addr, cell in self._cells.items() if addr in wanted})

    def remove(self, addrs: Iterable[int]) -> "Heap":
        """The heap without the given addresses."""
        unwanted = set(addrs)
        return Heap({addr: cell for addr, cell in self._cells.items() if addr not in unwanted})

    def union(self, other: "Heap") -> "Heap":
        """Disjoint union ``h1 o h2``; raises :class:`HeapError` on overlap."""
        if not self.disjoint_from(other):
            overlap = self.domain() & other.domain()
            raise HeapError(f"heap union of overlapping heaps (shared addresses {sorted(overlap)})")
        merged = dict(self._cells)
        merged.update(other._cells)
        return Heap(merged)

    def difference(self, other: "Heap") -> "Heap":
        """Heap difference ``h1 \\ h2`` (removes addresses present in ``other``)."""
        return self.remove(other.domain())

    def reachable_from(self, roots: Iterable[int]) -> frozenset[int]:
        """Addresses of cells reachable from ``roots`` by following field values."""
        seen: set[int] = set()
        stack = [addr for addr in roots if addr in self._cells]
        while stack:
            addr = stack.pop()
            if addr in seen:
                continue
            seen.add(addr)
            for value in self._cells[addr].values:
                if value != NIL_VALUE and value in self._cells and value not in seen:
                    stack.append(value)
        return frozenset(seen)


@dataclass(frozen=True)
class StackHeapModel:
    """A concrete trace: stack, heap and (optional) variable typing.

    ``var_types`` maps stack variable names to heaplang type names (e.g.
    ``"Node*"`` or ``"int"``); it is used by the inference to restrict
    predicate-argument candidates to type-consistent variables.

    ``freed_addresses`` records addresses that were reachable at snapshot
    time but had already been passed to ``free``; the paper observes that
    LLDB still reports the (now invalid) contents of such cells, which makes
    the resulting invariants spurious.  We keep the information so the
    evaluation can report spurious counts exactly like Table 1.
    """

    stack: tuple[tuple[str, int], ...]
    heap: Heap
    var_types: tuple[tuple[str, str], ...] = ()
    freed_addresses: frozenset[int] = frozenset()

    def __init__(
        self,
        stack: Mapping[str, int] | Iterable[tuple[str, int]],
        heap: Heap | Mapping[int, HeapCell],
        var_types: Mapping[str, str] | Iterable[tuple[str, str]] = (),
        freed_addresses: Iterable[int] = (),
    ):
        stack_items = tuple(stack.items()) if isinstance(stack, Mapping) else tuple(stack)
        object.__setattr__(self, "stack", stack_items)
        object.__setattr__(self, "heap", heap if isinstance(heap, Heap) else Heap(heap))
        type_items = (
            tuple(var_types.items()) if isinstance(var_types, Mapping) else tuple(var_types)
        )
        object.__setattr__(self, "var_types", type_items)
        object.__setattr__(self, "freed_addresses", frozenset(freed_addresses))

    def __hash__(self) -> int:
        # Models key the checker's memo table; cache the (immutable) hash.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.stack, self.heap, self.var_types, self.freed_addresses))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> dict:
        # Drop the per-process caches (salted hashes, derived dicts) so a
        # pickled model re-derives them in the receiving interpreter.
        state = dict(self.__dict__)
        for cache in ("_hash", "_stack_map", "_types_map"):
            state.pop(cache, None)
        return state

    # -- stack access -----------------------------------------------------------

    @property
    def stack_dict(self) -> dict[str, int]:
        """The stack as a fresh dictionary (variable -> value)."""
        return dict(self.stack)

    @property
    def type_dict(self) -> dict[str, str]:
        """Variable typing as a fresh dictionary (variable -> type name)."""
        return dict(self.var_types)

    @property
    def stack_map(self) -> dict[str, int]:
        """The stack as a shared, cached dictionary.  Do not mutate."""
        cached = self.__dict__.get("_stack_map")
        if cached is None:
            cached = dict(self.stack)
            object.__setattr__(self, "_stack_map", cached)
        return cached

    @property
    def types_map(self) -> dict[str, str]:
        """Variable typing as a shared, cached dictionary.  Do not mutate."""
        cached = self.__dict__.get("_types_map")
        if cached is None:
            cached = dict(self.var_types)
            object.__setattr__(self, "_types_map", cached)
        return cached

    def value_of(self, var: str) -> int:
        """Value of a stack variable."""
        return self.stack_map[var]

    def has_var(self, var: str) -> bool:
        """True when the stack binds ``var``."""
        return var in self.stack_map

    def pointer_vars(self) -> list[str]:
        """Stack variables with a pointer type (or untyped variables that hold addresses)."""
        types = self.type_dict
        result = []
        for name, value in self.stack:
            var_type = types.get(name)
            if var_type is not None:
                if var_type.endswith("*"):
                    result.append(name)
            elif value == NIL_VALUE or value in self.heap:
                result.append(name)
        return result

    def has_freed_cells(self) -> bool:
        """True when the snapshot observed cells that had already been freed."""
        return bool(self.freed_addresses)

    # -- heap constructions -------------------------------------------------------

    def with_heap(self, heap: Heap) -> "StackHeapModel":
        """Return a copy of the model with a different heap."""
        return StackHeapModel(self.stack, heap, self.var_types, self.freed_addresses)


def models_union(
    models: Sequence[StackHeapModel], others: Sequence[StackHeapModel]
) -> list[StackHeapModel]:
    """Pointwise disjoint heap union of two equal-length model sequences."""
    if len(models) != len(others):
        raise HeapError("model sequences of different lengths cannot be combined")
    return [m.with_heap(m.heap.union(o.heap)) for m, o in zip(models, others)]


def models_difference(
    models: Sequence[StackHeapModel], others: Sequence[StackHeapModel]
) -> list[StackHeapModel]:
    """Pointwise heap difference of two equal-length model sequences."""
    if len(models) != len(others):
        raise HeapError("model sequences of different lengths cannot be combined")
    return [m.with_heap(m.heap.difference(o.heap)) for m, o in zip(models, others)]
