"""The standard library of inductive heap predicates used by the benchmarks.

Section 5.2 of the paper explains that, for each benchmark category, SLING is
given the predicate definitions that come with that benchmark.  This module
collects the definitions used by our re-implementation of those benchmarks.
They are written in the textual syntax of :mod:`repro.sl.parser` so the
definitions stay readable and the parser gets exercised on realistic input.

Naming conventions for structure types follow :func:`repro.lang.types.standard_structs`:

========== =======================================
type        fields (in order)
========== =======================================
SllNode     next
SNode       next, data
DllNode     next, prev
CNode       next, data
TNode       left, right
BstNode     left, right, data
AvlNode     left, right, data, height
RbNode      left, right, color, data
PNode       left, right, data
QNode       next
Queue       head, tail
GSNode      next, data
GNode       next, prev, data
NlNode      next, child
BinNode     child, sibling, degree, data
SwNode      left, right, mark
MemChunk    next, prev, size
IterNode    next, current, list
========== =======================================
"""

from __future__ import annotations

from repro.sl.parser import parse_predicates
from repro.sl.predicates import PredicateRegistry

#: Field names of every structure type, used by the pretty printer and
#: mirrored by the heaplang struct registry.
STRUCT_FIELDS: dict[str, tuple[str, ...]] = {
    "SllNode": ("next",),
    "SNode": ("next", "data"),
    "DllNode": ("next", "prev"),
    "CNode": ("next", "data"),
    "TNode": ("left", "right"),
    "BstNode": ("left", "right", "data"),
    "AvlNode": ("left", "right", "data", "height"),
    "RbNode": ("left", "right", "color", "data"),
    "PNode": ("left", "right", "data"),
    "QNode": ("next",),
    "Queue": ("head", "tail"),
    "GSNode": ("next", "data"),
    "GNode": ("next", "prev", "data"),
    "NlNode": ("next", "child"),
    "BinNode": ("child", "sibling", "degree", "data"),
    "SwNode": ("left", "right", "mark"),
    "MemChunk": ("next", "prev", "size"),
    "IterNode": ("next", "current", "list"),
}


_DEFINITIONS = """
# --- singly-linked lists -----------------------------------------------------

pred sll(x: SllNode*) :=
    (emp & x = nil)
  | (exists n. x -> SllNode{next: n} * sll(n));

pred lseg(x: SllNode*, y: SllNode*) :=
    (emp & x = y)
  | (exists n. x -> SllNode{next: n} * lseg(n, y));

# --- singly-linked lists carrying data ----------------------------------------

pred slldata(x: SNode*) :=
    (emp & x = nil)
  | (exists n, d. x -> SNode{next: n, data: d} * slldata(n));

pred slsegdata(x: SNode*, y: SNode*) :=
    (emp & x = y)
  | (exists n, d. x -> SNode{next: n, data: d} * slsegdata(n, y));

# --- sorted singly-linked lists ------------------------------------------------

pred sls(x: SNode*, mi) :=
    (emp & x = nil)
  | (exists n, d. x -> SNode{next: n, data: d} & mi <= d * sls(n, d));

pred slseg(x: SNode*, y: SNode*, mi) :=
    (emp & x = y)
  | (exists n, d. x -> SNode{next: n, data: d} & mi <= d * slseg(n, y, d));

# --- doubly-linked lists --------------------------------------------------------

pred dll(hd: DllNode*, pr: DllNode*, tl: DllNode*, nx: DllNode*) :=
    (emp & hd = nx & pr = tl)
  | (exists u. hd -> DllNode{next: u, prev: pr} * dll(u, hd, tl, nx));

# --- circular singly-linked lists ------------------------------------------------

pred cll(x: CNode*) :=
    (emp & x = nil)
  | (exists n, d. x -> CNode{next: n, data: d} * clseg(n, x));

pred clseg(x: CNode*, y: CNode*) :=
    (emp & x = y)
  | (exists n, d. x -> CNode{next: n, data: d} * clseg(n, y));

# --- binary trees -----------------------------------------------------------------

pred tree(x: TNode*) :=
    (emp & x = nil)
  | (exists l, r. x -> TNode{left: l, right: r} * tree(l) * tree(r));

pred treeseg(x: TNode*, y: TNode*) :=
    (emp & x = y)
  | (exists l, r. x -> TNode{left: l, right: r} * treeseg(l, y) * tree(r))
  | (exists l, r. x -> TNode{left: l, right: r} * tree(l) * treeseg(r, y));

# --- binary search trees ------------------------------------------------------------

pred bst(x: BstNode*, mi, ma) :=
    (emp & x = nil)
  | (exists l, r, d. x -> BstNode{left: l, right: r, data: d}
       & mi <= d & d <= ma * bst(l, mi, d) * bst(r, d, ma));

# --- AVL trees (height-balanced) ------------------------------------------------------

pred avl(x: AvlNode*, h) :=
    (emp & x = nil & h = 0)
  | (exists l, r, d, hl, hr. x -> AvlNode{left: l, right: r, data: d, height: h}
       & h = max(hl, hr) + 1 & hl <= hr + 1 & hr <= hl + 1
       * avl(l, hl) * avl(r, hr));

# --- priority trees / max-heaps --------------------------------------------------------

pred pheap(x: PNode*, ub) :=
    (emp & x = nil)
  | (exists l, r, d. x -> PNode{left: l, right: r, data: d}
       & d <= ub * pheap(l, d) * pheap(r, d));

# --- red-black trees ---------------------------------------------------------------------

pred rbt(x: RbNode*, c, bh) :=
    (emp & x = nil & c = 0 & bh = 1)
  | (exists l, r, d, cl, cr, bhc. x -> RbNode{left: l, right: r, color: c, data: d}
       & c = 1 & cl = 0 & cr = 0 & bh = bhc
       * rbt(l, cl, bhc) * rbt(r, cr, bhc))
  | (exists l, r, d, cl, cr, bhc. x -> RbNode{left: l, right: r, color: c, data: d}
       & c = 0 & bh = bhc + 1
       * rbt(l, cl, bhc) * rbt(r, cr, bhc));

# --- OpenBSD-style queues ---------------------------------------------------------------

pred qlseg(x: QNode*, y: QNode*) :=
    (emp & x = y)
  | (exists n. x -> QNode{next: n} * qlseg(n, y));

pred qlist(h: QNode*, t: QNode*) :=
    (emp & h = nil & t = nil)
  | (exists n. qlseg(h, t) * t -> QNode{next: n} & n = nil);

pred queue(q: Queue*) :=
    (exists h, t. q -> Queue{head: h, tail: t} * qlist(h, t));

# --- glib GSList (singly linked, data-carrying) --------------------------------------------

pred gsll(x: GSNode*) :=
    (emp & x = nil)
  | (exists n, d. x -> GSNode{next: n, data: d} * gsll(n));

pred gslseg(x: GSNode*, y: GSNode*) :=
    (emp & x = y)
  | (exists n, d. x -> GSNode{next: n, data: d} * gslseg(n, y));

# --- glib GList (doubly linked, data-carrying) -----------------------------------------------

pred gdll(hd: GNode*, pr: GNode*, tl: GNode*, nx: GNode*) :=
    (emp & hd = nx & pr = tl)
  | (exists u, d. hd -> GNode{next: u, prev: pr, data: d} * gdll(u, hd, tl, nx));

# --- nested lists (lists of singly-linked lists) -----------------------------------------------

pred nll(x: NlNode*) :=
    (emp & x = nil)
  | (exists n, c. x -> NlNode{next: n, child: c} * sll(c) * nll(n));

# --- binomial heaps ------------------------------------------------------------------------------

pred binheap(x: BinNode*) :=
    (emp & x = nil)
  | (exists c, s, dg, d. x -> BinNode{child: c, sibling: s, degree: dg, data: d}
       * binheap(c) * binheap(s));

# --- Schorr-Waite marked trees ---------------------------------------------------------------------

pred swtree(x: SwNode*) :=
    (emp & x = nil)
  | (exists l, r, m. x -> SwNode{left: l, right: r, mark: m} * swtree(l) * swtree(r));

# --- memory-region chunk lists (doubly linked with sizes) ---------------------------------------------

pred memdll(hd: MemChunk*, pr: MemChunk*, tl: MemChunk*, nx: MemChunk*) :=
    (emp & hd = nx & pr = tl)
  | (exists u, s. hd -> MemChunk{next: u, prev: pr, size: s} * memdll(u, hd, tl, nx));

# --- list iterators (a cursor over a singly-linked list) -----------------------------------------------

pred iter(it: IterNode*, lst: SllNode*) :=
    (exists n, cur. it -> IterNode{next: n, current: cur, list: lst}
       * lseg(lst, cur) * sll(cur));
"""


def standard_predicates() -> PredicateRegistry:
    """Parse and return the full standard predicate library."""
    return parse_predicates(_DEFINITIONS)


def predicates_for(*names: str) -> PredicateRegistry:
    """Return the registry restricted to ``names`` and their dependencies.

    This mirrors the paper's setup where each benchmark category supplies
    only the predicates relevant to its data structures.
    """
    return standard_predicates().subset(names)
