"""Pure expressions and pure formulae of the symbolic-heap fragment.

This module implements the ``e`` (integer expressions), ``a`` (spatial
expressions) and ``Pi`` (pure formulae) productions of Figure 4 in the
paper.  Values are plain Python integers; the null address ``nil`` is the
integer ``0`` (see :data:`NIL_VALUE`).

Expressions and formulae are immutable dataclasses.  They support

* evaluation under an environment (a mapping from variable names to values),
* substitution of variables by expressions,
* free-variable computation,
* structural keys (:meth:`Expr.skey`): nested tuples of plain strings and
  integers that identify a term up to a variable renaming supplied by the
  caller.  The model checker's memo table is keyed on these instead of
  pretty-printed strings -- building a tuple is an order of magnitude
  cheaper than rendering, and tuple hashing reuses CPython's cached string
  hashes.

``Var`` instances are hash-consed: constructing the same name twice yields
the same object (up to an interning capacity), and the hash is computed once
and cached.  Candidate enumeration builds millions of variable nodes per
sweep, almost all of them drawn from a small set of program and boundary
names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.sl.errors import EvaluationError

#: The concrete value of the ``nil`` constant.  Address 0 is never allocated
#: by the heaplang runtime, mirroring the NULL pointer of C.
NIL_VALUE = 0

#: Interning table for :class:`Var` nodes (name -> instance).  Bounded so a
#: long-running process churning through globally fresh existential names
#: cannot grow it without limit; names beyond the cap get ordinary instances.
_VAR_INTERN: dict[str, "Var"] = {}
_VAR_INTERN_LIMIT = 65_536

#: Sentinel distinguishing "no argument" (unpickling goes through
#: ``__new__(cls)`` with no fields) from an empty variable name.
_UNSET = object()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class of pure (integer / spatial) expressions."""

    def eval(self, env: Mapping[str, int]) -> int:
        """Evaluate the expression under ``env``.

        Raises :class:`EvaluationError` if a variable is unbound.
        """
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        """Return the set of variable names occurring in the expression."""
        raise NotImplementedError

    def substitute(self, subst: Mapping[str, "Expr"]) -> "Expr":
        """Return the expression with variables replaced according to ``subst``."""
        raise NotImplementedError

    def skey(self, ren: Mapping[str, str]) -> object:
        """Structural key: a hashable tuple/str/int tree identifying the term.

        ``ren`` maps variable names to replacement tokens (used to alpha-
        normalize bound variables positionally); unmapped names appear
        verbatim.  Two expressions have equal keys iff they are equal up to
        that renaming.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Expr):
    """A program or existential variable (hash-consed)."""

    name: str

    def __new__(cls, name: object = _UNSET):
        if name is _UNSET or cls is not Var:  # unpickling / copy path
            return super().__new__(cls)
        if name.startswith("_") or (name.startswith("u") and name[1:].isdigit()):
            # Globally fresh names ("_v<N>" from the checker, "u<N>" from
            # the candidate loop) are constructed a handful of times and
            # never reused; interning them would only fill the bounded
            # table with dead entries and displace reusable program names.
            return super().__new__(cls)
        cached = _VAR_INTERN.get(name)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        if len(_VAR_INTERN) < _VAR_INTERN_LIMIT:
            _VAR_INTERN[name] = self
        return self

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(("var", self.name))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> dict:
        # The cached hash is salted per process (PYTHONHASHSEED); never let
        # it travel across a pickle boundary to a foreign interpreter.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def eval(self, env: Mapping[str, int]) -> int:
        if self.name not in env:
            raise EvaluationError(f"unbound variable {self.name!r}")
        return env[self.name]

    def free_vars(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return subst.get(self.name, self)

    def skey(self, ren: Mapping[str, str]) -> object:
        return ren.get(self.name, self.name)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


@dataclass(frozen=True)
class IntConst(Expr):
    """An integer constant ``k``."""

    value: int

    def eval(self, env: Mapping[str, int]) -> int:
        return self.value

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return self

    def skey(self, ren: Mapping[str, str]) -> object:
        return self.value

    def __str__(self) -> str:  # pragma: no cover
        return str(self.value)


@dataclass(frozen=True)
class Nil(Expr):
    """The ``nil`` spatial constant (the null address); a process singleton."""

    _instance = None

    def __new__(cls):
        if cls is Nil:
            cached = Nil._instance
            if cached is not None:
                return cached
            Nil._instance = cached = super().__new__(cls)
            return cached
        return super().__new__(cls)

    def eval(self, env: Mapping[str, int]) -> int:
        return NIL_VALUE

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return self

    def skey(self, ren: Mapping[str, str]) -> object:
        return _NIL_KEY

    def __str__(self) -> str:  # pragma: no cover
        return "nil"


#: Shared structural-key atom for ``nil`` (a tuple so it can never collide
#: with a variable literally named "nil" -- variables key as plain strings).
_NIL_KEY = ("nil",)


@dataclass(frozen=True)
class Neg(Expr):
    """Arithmetic negation ``-e``."""

    operand: Expr

    def eval(self, env: Mapping[str, int]) -> int:
        return -self.operand.eval(env)

    def free_vars(self) -> frozenset[str]:
        return self.operand.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return Neg(self.operand.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("neg", self.operand.skey(ren))


@dataclass(frozen=True)
class Add(Expr):
    """Addition ``e1 + e2``."""

    left: Expr
    right: Expr

    def eval(self, env: Mapping[str, int]) -> int:
        return self.left.eval(env) + self.right.eval(env)

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return Add(self.left.substitute(subst), self.right.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("add", self.left.skey(ren), self.right.skey(ren))


@dataclass(frozen=True)
class Sub(Expr):
    """Subtraction ``e1 - e2``."""

    left: Expr
    right: Expr

    def eval(self, env: Mapping[str, int]) -> int:
        return self.left.eval(env) - self.right.eval(env)

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return Sub(self.left.substitute(subst), self.right.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("sub", self.left.skey(ren), self.right.skey(ren))


@dataclass(frozen=True)
class Mul(Expr):
    """Multiplication by a constant, ``k * e`` (linear arithmetic only)."""

    factor: int
    operand: Expr

    def eval(self, env: Mapping[str, int]) -> int:
        return self.factor * self.operand.eval(env)

    def free_vars(self) -> frozenset[str]:
        return self.operand.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return Mul(self.factor, self.operand.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("mul", self.factor, self.operand.skey(ren))


@dataclass(frozen=True)
class Max(Expr):
    """``max(e1, e2)`` -- used by height-indexed predicates such as AVL trees."""

    left: Expr
    right: Expr

    def eval(self, env: Mapping[str, int]) -> int:
        return max(self.left.eval(env), self.right.eval(env))

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> Expr:
        return Max(self.left.substitute(subst), self.right.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("max", self.left.skey(ren), self.right.skey(ren))


# ---------------------------------------------------------------------------
# Pure formulae
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PureFormula:
    """Base class of pure (heap-independent) formulae."""

    def eval(self, env: Mapping[str, int]) -> bool:
        """Evaluate the formula under ``env`` (raises if a variable is unbound)."""
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, subst: Mapping[str, Expr]) -> "PureFormula":
        raise NotImplementedError

    def skey(self, ren: Mapping[str, str]) -> object:
        """Structural key of the formula (see :meth:`Expr.skey`)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TrueF(PureFormula):
    """The trivially true pure formula."""

    def eval(self, env: Mapping[str, int]) -> bool:
        return True

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, subst: Mapping[str, Expr]) -> PureFormula:
        return self

    def skey(self, ren: Mapping[str, str]) -> object:
        return _TRUE_KEY


@dataclass(frozen=True)
class FalseF(PureFormula):
    """The trivially false pure formula."""

    def eval(self, env: Mapping[str, int]) -> bool:
        return False

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, subst: Mapping[str, Expr]) -> PureFormula:
        return self

    def skey(self, ren: Mapping[str, str]) -> object:
        return _FALSE_KEY


_TRUE_KEY = ("true",)
_FALSE_KEY = ("false",)


@dataclass(frozen=True)
class _BinRel(PureFormula):
    """Shared implementation of binary relations between expressions."""

    left: Expr
    right: Expr

    _op = staticmethod(lambda a, b: False)  # overridden by subclasses
    _tag = "rel"  # overridden by subclasses (structural-key tag)

    def eval(self, env: Mapping[str, int]) -> bool:
        return type(self)._op(self.left.eval(env), self.right.eval(env))

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> PureFormula:
        return type(self)(self.left.substitute(subst), self.right.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return (type(self)._tag, self.left.skey(ren), self.right.skey(ren))


@dataclass(frozen=True)
class Eq(_BinRel):
    """Equality ``e1 = e2`` (also used for spatial expressions)."""

    _op = staticmethod(lambda a, b: a == b)
    _tag = "="


@dataclass(frozen=True)
class Ne(_BinRel):
    """Disequality ``e1 != e2``."""

    _op = staticmethod(lambda a, b: a != b)
    _tag = "!="


@dataclass(frozen=True)
class Lt(_BinRel):
    """Strict less-than ``e1 < e2``."""

    _op = staticmethod(lambda a, b: a < b)
    _tag = "<"


@dataclass(frozen=True)
class Le(_BinRel):
    """Less-than-or-equal ``e1 <= e2``."""

    _op = staticmethod(lambda a, b: a <= b)
    _tag = "<="


@dataclass(frozen=True)
class Gt(_BinRel):
    """Strict greater-than ``e1 > e2``."""

    _op = staticmethod(lambda a, b: a > b)
    _tag = ">"


@dataclass(frozen=True)
class Ge(_BinRel):
    """Greater-than-or-equal ``e1 >= e2``."""

    _op = staticmethod(lambda a, b: a >= b)
    _tag = ">="


@dataclass(frozen=True)
class Not(PureFormula):
    """Negation of a pure formula."""

    operand: PureFormula

    def eval(self, env: Mapping[str, int]) -> bool:
        return not self.operand.eval(env)

    def free_vars(self) -> frozenset[str]:
        return self.operand.free_vars()

    def substitute(self, subst: Mapping[str, Expr]) -> PureFormula:
        return Not(self.operand.substitute(subst))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("not", self.operand.skey(ren))


@dataclass(frozen=True)
class And(PureFormula):
    """Conjunction of pure formulae."""

    parts: tuple[PureFormula, ...]

    def __init__(self, parts: Iterable[PureFormula]):
        object.__setattr__(self, "parts", tuple(parts))

    def eval(self, env: Mapping[str, int]) -> bool:
        return all(part.eval(env) for part in self.parts)

    def free_vars(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.free_vars()
        return result

    def substitute(self, subst: Mapping[str, Expr]) -> PureFormula:
        return And(part.substitute(subst) for part in self.parts)

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("and", *[part.skey(ren) for part in self.parts])


@dataclass(frozen=True)
class Or(PureFormula):
    """Disjunction of pure formulae."""

    parts: tuple[PureFormula, ...]

    def __init__(self, parts: Iterable[PureFormula]):
        object.__setattr__(self, "parts", tuple(parts))

    def eval(self, env: Mapping[str, int]) -> bool:
        return any(part.eval(env) for part in self.parts)

    def free_vars(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.free_vars()
        return result

    def substitute(self, subst: Mapping[str, Expr]) -> PureFormula:
        return Or(part.substitute(subst) for part in self.parts)

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("or", *[part.skey(ren) for part in self.parts])


def conjoin(parts: Iterable[PureFormula]) -> PureFormula:
    """Conjoin ``parts`` into a single pure formula, flattening nested ``And``."""
    flat: list[PureFormula] = []
    for part in parts:
        if isinstance(part, TrueF):
            continue
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TrueF()
    if len(flat) == 1:
        return flat[0]
    return And(flat)
