"""A small recursive-descent parser for SL formulae and predicate definitions.

Grammar (informal)::

    predicates  := preddef*
    preddef     := 'pred' NAME '(' params ')' [':' types] ':=' case ('|' case)* ';'
    case        := formula | '(' formula ')'
    formula     := ['exists' NAME (',' NAME)* '.'] clause
    clause      := term ('&' term)*            -- mixes spatial and pure conjuncts
    term        := spatial_atom | pure_atom
    spatial_atom:= 'emp'
                 | expr '->' NAME '{' NAME ':' expr (',' NAME ':' expr)* '}'
                 | expr '->' NAME '(' expr (',' expr)* ')'
                 | NAME '(' expr (',' expr)* ')'
    pure_atom   := expr OP expr | 'true' | 'false'
    expr        := NAME | INT | 'nil' | '-' expr | expr ('+'|'-') expr | 'max' '(' expr ',' expr ')'

Spatial conjuncts inside a clause may be combined with either ``*`` or
``&``; the parser sorts conjuncts into the spatial and pure parts of the
resulting :class:`~repro.sl.spatial.SymHeap`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from repro.sl.errors import ParseError
from repro.sl.exprs import (
    Add,
    Eq,
    Expr,
    FalseF,
    Ge,
    Gt,
    IntConst,
    Le,
    Lt,
    Max,
    Ne,
    Neg,
    Nil,
    PureFormula,
    Sub,
    TrueF,
    Var,
)
from repro.sl.predicates import InductivePredicate, PredCase, PredicateRegistry
from repro.sl.spatial import PointsTo, PredApp, Spatial, SymHeap, star

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<arrow>->)
  | (?P<define>:=)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(){},.;*&|:+-])
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"pred", "exists", "emp", "nil", "true", "false", "max"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(f"expected {text!r} but found {token.text!r}", token.position)
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.advance()
            return True
        return False

    def at_name(self) -> bool:
        token = self.peek()
        return token.kind == "name" and token.text not in _KEYWORDS

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_additive()

    def _parse_additive(self) -> Expr:
        left = self._parse_unary()
        while self.peek().text in ("+", "-"):
            operator = self.advance().text
            right = self._parse_unary()
            left = Add(left, right) if operator == "+" else Sub(left, right)
        return left

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token.text == "-":
            self.advance()
            return Neg(self._parse_unary())
        if token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if token.kind == "int":
            self.advance()
            return IntConst(int(token.text))
        if token.text == "nil":
            self.advance()
            return Nil()
        if token.text == "max":
            self.advance()
            self.expect("(")
            left = self.parse_expr()
            self.expect(",")
            right = self.parse_expr()
            self.expect(")")
            return Max(left, right)
        if token.kind == "name":
            self.advance()
            return Var(token.text)
        raise ParseError(f"expected an expression but found {token.text!r}", token.position)

    # -- formulae -----------------------------------------------------------------

    def parse_formula(self) -> SymHeap:
        exists: list[str] = []
        if self.peek().text == "exists":
            self.advance()
            exists.append(self._parse_name())
            while self.accept(","):
                exists.append(self._parse_name())
            self.expect(".")
        spatial_atoms, pure_parts = self._parse_clause()
        return SymHeap(exists=exists, spatial=star(*spatial_atoms), pure=pure_parts)

    def _parse_name(self) -> str:
        token = self.peek()
        if token.kind != "name" or token.text in _KEYWORDS:
            raise ParseError(f"expected a name but found {token.text!r}", token.position)
        return self.advance().text

    def _parse_clause(self) -> tuple[list[Spatial], list[PureFormula]]:
        spatial_atoms: list[Spatial] = []
        pure_parts: list[PureFormula] = []
        self._parse_term(spatial_atoms, pure_parts)
        while self.peek().text in ("&", "*"):
            self.advance()
            self._parse_term(spatial_atoms, pure_parts)
        return spatial_atoms, pure_parts

    def _parse_term(
        self, spatial_atoms: list[Spatial], pure_parts: list[PureFormula]
    ) -> None:
        token = self.peek()
        if token.text == "emp":
            self.advance()
            return
        if token.text == "true":
            self.advance()
            pure_parts.append(TrueF())
            return
        if token.text == "false":
            self.advance()
            pure_parts.append(FalseF())
            return
        if token.text == "(":
            # A parenthesised sub-clause: parse it and merge its conjuncts.
            self.advance()
            inner_spatial, inner_pure = self._parse_clause()
            self.expect(")")
            spatial_atoms.extend(inner_spatial)
            pure_parts.extend(inner_pure)
            return
        # Either a predicate application, a points-to or a pure relation.
        if self.at_name() and self.tokens[self.index + 1].text == "(":
            name = self.advance().text
            self.expect("(")
            args = [self.parse_expr()]
            while self.accept(","):
                args.append(self.parse_expr())
            self.expect(")")
            spatial_atoms.append(PredApp(name, args))
            return
        expr = self.parse_expr()
        token = self.peek()
        if token.text == "->":
            self.advance()
            spatial_atoms.append(self._parse_points_to_tail(expr))
            return
        if token.kind == "op":
            operator = self.advance().text
            right = self.parse_expr()
            pure_parts.append(_RELATIONS[operator](expr, right))
            return
        raise ParseError(
            f"expected '->' or a comparison after expression, found {token.text!r}",
            token.position,
        )

    def _parse_points_to_tail(self, source: Expr) -> PointsTo:
        type_name = self._parse_name()
        if self.accept("{"):
            field_names: list[str] = []
            args: list[Expr] = []
            field_names.append(self._parse_name())
            self.expect(":")
            args.append(self.parse_expr())
            while self.accept(","):
                field_names.append(self._parse_name())
                self.expect(":")
                args.append(self.parse_expr())
            self.expect("}")
            return PointsTo(source, type_name, args)
        self.expect("(")
        args = [self.parse_expr()]
        while self.accept(","):
            args.append(self.parse_expr())
        self.expect(")")
        return PointsTo(source, type_name, args)

    # -- predicate definitions -------------------------------------------------------

    def parse_predicates(self) -> list[InductivePredicate]:
        predicates: list[InductivePredicate] = []
        while self.peek().text == "pred":
            predicates.append(self._parse_preddef())
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(f"unexpected trailing input {token.text!r}", token.position)
        return predicates

    def _parse_preddef(self) -> InductivePredicate:
        self.expect("pred")
        name = self._parse_name()
        self.expect("(")
        params = [self._parse_name()]
        param_types: list[str | None] = [None]
        if self.accept(":"):
            param_types[-1] = self._parse_type()
        while self.accept(","):
            params.append(self._parse_name())
            param_types.append(None)
            if self.accept(":"):
                param_types[-1] = self._parse_type()
        self.expect(")")
        self.expect(":=")
        cases = [PredCase(self._parse_case())]
        while self.accept("|"):
            cases.append(PredCase(self._parse_case()))
        self.expect(";")
        return InductivePredicate(name, params, cases, param_types)

    def _parse_type(self) -> str:
        name = self._parse_name()
        if self.accept("*"):
            return f"{name}*"
        return name

    def _parse_case(self) -> SymHeap:
        if self.peek().text == "(":
            # Peek inside to decide whether the parenthesis wraps a whole case
            # (e.g. ``(emp & x = nil)``) or starts an expression.  A whole
            # case always begins with emp/exists/a spatial atom/pure relation,
            # so simply parse a formula inside the parentheses.
            self.advance()
            formula = self.parse_formula()
            self.expect(")")
            return formula
        return self.parse_formula()


_RELATIONS = {
    "=": Eq,
    "!=": Ne,
    "<": Lt,
    "<=": Le,
    ">": Gt,
    ">=": Ge,
}


def parse_formula(text: str) -> SymHeap:
    """Parse a single symbolic-heap formula."""
    parser = _Parser(text)
    formula = parser.parse_formula()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"unexpected trailing input {token.text!r}", token.position)
    return formula


def parse_expr(text: str) -> Expr:
    """Parse a single pure expression."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"unexpected trailing input {token.text!r}", token.position)
    return expr


def parse_predicates(
    text: str, registry: PredicateRegistry | None = None
) -> PredicateRegistry:
    """Parse predicate definitions, returning (or extending) a registry."""
    parser = _Parser(text)
    predicates = parser.parse_predicates()
    result = registry if registry is not None else PredicateRegistry()
    for predicate in predicates:
        result.add(predicate)
    return result


def parse_predicate(text: str) -> InductivePredicate:
    """Parse a single predicate definition."""
    parser = _Parser(text)
    predicates = parser.parse_predicates()
    if len(predicates) != 1:
        raise ParseError(f"expected exactly one predicate definition, got {len(predicates)}")
    return predicates[0]


def field_name_table(text_or_mapping: Mapping[str, tuple[str, ...]]) -> dict[str, tuple[str, ...]]:
    """Normalise a struct field-name table used by the pretty printer."""
    return {name: tuple(fields) for name, fields in text_or_mapping.items()}
