"""Inductive heap predicate definitions and their registry.

An inductive predicate ``p(t1, ..., tn)`` is defined by a finite disjunction
of *cases*, each of which is a symbolic heap over the formal parameters
(plus case-local existential variables).  The canonical example from the
paper is the doubly-linked-list predicate::

    dll(hd, pr, tl, nx) :=  (emp  &  hd = nx  &  pr = tl)
                         |  (exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx))

Predicates carry optional parameter types, which the inference uses to prune
type-inconsistent argument permutations (Algorithm 2, line 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.sl.errors import SLError, UnknownPredicateError
from repro.sl.exprs import Expr, IntConst, Nil, Var
from repro.sl.spatial import PointsTo, PredApp, Spatial, SymHeap, fresh_var

#: Upper bound on memoized case templates per predicate (the key space is
#: tiny in practice: one entry per case and argument *shape*).
_UNFOLD_CACHE_LIMIT = 512


@dataclass(frozen=True)
class PredCase:
    """One disjunct of an inductive predicate definition."""

    body: SymHeap

    def instantiate(self, params: Sequence[str], args: Sequence[Expr]) -> SymHeap:
        """Substitute actual arguments for formal parameters, freshening locals."""
        if len(params) != len(args):
            raise SLError(
                f"predicate case expects {len(params)} arguments, got {len(args)}"
            )
        renamed = self.body.rename_exists_fresh()
        substitution = dict(zip(params, args))
        return renamed.substitute(substitution)


@dataclass(frozen=True)
class InductivePredicate:
    """A named inductive heap predicate definition."""

    name: str
    params: tuple[str, ...]
    cases: tuple[PredCase, ...]
    param_types: tuple[str | None, ...] = ()

    def __init__(
        self,
        name: str,
        params: Iterable[str],
        cases: Iterable[PredCase | SymHeap],
        param_types: Iterable[str | None] | None = None,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        normalized = tuple(
            case if isinstance(case, PredCase) else PredCase(case) for case in cases
        )
        object.__setattr__(self, "cases", normalized)
        if param_types is None:
            types: tuple[str | None, ...] = tuple(None for _ in self.params)
        else:
            types = tuple(param_types)
        if len(types) != len(self.params):
            raise SLError(
                f"predicate {name!r}: {len(self.params)} parameters but {len(types)} types"
            )
        object.__setattr__(self, "param_types", types)
        # Unfolding memo: (case index, canonical argument shape) -> template
        # body.  Lists (not dataclass fields) so the instance stays frozen,
        # hashable and comparable on its definition alone.
        object.__setattr__(self, "_unfold_cache", {})
        object.__setattr__(self, "_unfold_stats", [0, 0])  # [hits, misses]

    @property
    def arity(self) -> int:
        """Number of parameters."""
        return len(self.params)

    def unfold(self, args: Sequence[Expr]) -> list[SymHeap]:
        """Return the case bodies instantiated with ``args`` (one per disjunct)."""
        return [self.instantiate_case(index, args) for index in range(len(self.cases))]

    def instantiate_case(self, index: int, args: Sequence[Expr]) -> SymHeap:
        """Instantiate one case, memoizing the instantiation per argument shape.

        The model checker unfolds the same predicates with the same argument
        *shapes* (e.g. ``sll(?)`` with a single variable argument) thousands
        of times per inference run; only the variable names differ because
        they are generated fresh.  This caches the case body instantiated
        with positional placeholder arguments and specializes it per call --
        mapping placeholders to the actual argument expressions and alpha-
        renaming the case-local existentials to globally fresh names -- in a
        single substitution pass instead of the two passes (freshen, then
        substitute) of :meth:`PredCase.instantiate`.

        The per-call freshening is what keeps reuse sound: two unfoldings of
        the same case inside one search never share existential names, so a
        binding made for one can never constrain the other.
        """
        key = _canonical_args(args)
        if key is None:
            self._unfold_stats[1] += 1
            return self.cases[index].instantiate(self.params, args)
        template = self._unfold_cache.get((index, key))
        if template is None:
            self._unfold_stats[1] += 1
            placeholders = [_placeholder_expr(token) for token in key]
            template = self.cases[index].instantiate(self.params, placeholders)
            if len(self._unfold_cache) < _UNFOLD_CACHE_LIMIT:
                self._unfold_cache[(index, key)] = template
        else:
            self._unfold_stats[0] += 1
        substitution: dict[str, Expr] = {
            token: arg for token, arg in zip(key, args) if token.startswith("?a")
        }
        renaming = {name: Var(fresh_var()) for name in template.exists}
        substitution.update(renaming)
        return SymHeap(
            tuple(renaming[name].name for name in template.exists),
            template.spatial.substitute(substitution),
            template.pure.substitute(substitution),
        )

    def unfold_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of this predicate's unfolding memo."""
        return {
            "hits": self._unfold_stats[0],
            "misses": self._unfold_stats[1],
            "entries": len(self._unfold_cache),
        }

    def root_types(self) -> frozenset[str]:
        """Structure types that may anchor this predicate.

        Collected from the points-to atoms of the definition (including
        transitively referenced predicates is not needed: the first parameter
        of every benchmark predicate is dereferenced in its own body).
        """
        types: set[str] = set()
        for case in self.cases:
            for atom in case.body.spatial_atoms():
                if isinstance(atom, PointsTo):
                    types.add(atom.type_name)
        return frozenset(types)

    def singleton_count(self) -> int:
        """Number of points-to atoms across all cases (a complexity metric)."""
        return sum(
            1
            for case in self.cases
            for atom in case.body.spatial_atoms()
            if isinstance(atom, PointsTo)
        )

    def inductive_count(self) -> int:
        """Number of predicate applications across all cases (a complexity metric)."""
        return sum(
            1
            for case in self.cases
            for atom in case.body.spatial_atoms()
            if isinstance(atom, PredApp)
        )

    def apply(self, args: Sequence[Expr] | Sequence[str]) -> PredApp:
        """Build an application of this predicate; strings become variables."""
        exprs = [arg if isinstance(arg, Expr) else Var(arg) for arg in args]
        if len(exprs) != self.arity:
            raise SLError(f"{self.name} expects {self.arity} arguments, got {len(exprs)}")
        return PredApp(self.name, exprs)


class PredicateRegistry:
    """A collection of inductive predicate definitions, looked up by name."""

    def __init__(self, predicates: Iterable[InductivePredicate] = ()):
        self._predicates: dict[str, InductivePredicate] = {}
        for predicate in predicates:
            self.add(predicate)

    def add(self, predicate: InductivePredicate) -> None:
        """Register (or replace) a predicate definition."""
        self._predicates[predicate.name] = predicate

    def get(self, name: str) -> InductivePredicate:
        """Look up a predicate; raises :class:`UnknownPredicateError` if absent."""
        try:
            return self._predicates[name]
        except KeyError:
            raise UnknownPredicateError(f"unknown predicate {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._predicates

    def __iter__(self) -> Iterator[InductivePredicate]:
        return iter(self._predicates.values())

    def __len__(self) -> int:
        return len(self._predicates)

    def names(self) -> list[str]:
        """Names of all registered predicates."""
        return list(self._predicates)

    def subset(self, names: Iterable[str]) -> "PredicateRegistry":
        """A new registry containing only the named predicates (and their deps)."""
        wanted = set(names)
        closure: set[str] = set()
        frontier = list(wanted)
        while frontier:
            name = frontier.pop()
            if name in closure or name not in self._predicates:
                continue
            closure.add(name)
            for case in self._predicates[name].cases:
                for atom in case.body.spatial_atoms():
                    if isinstance(atom, PredApp) and atom.name not in closure:
                        frontier.append(atom.name)
        # Preserve definition order: iterating the ``closure`` set directly
        # would make the subset's candidate-enumeration order (and with it
        # tie-breaking among equally-ranked invariants) depend on
        # PYTHONHASHSEED from process to process.
        return PredicateRegistry(
            predicate for name, predicate in self._predicates.items() if name in closure
        )

    def candidates_for_type(self, type_name: str | None) -> list[InductivePredicate]:
        """Predicates whose definition dereferences the given structure type.

        This implements the filtering optimisation of Section 4.2: only
        predicates with at least one parameter of the root pointer's type
        are considered.  Predicates whose definitions never dereference any
        cell (degenerate) are always returned.
        """
        if type_name is None:
            return list(self._predicates.values())
        base = type_name.rstrip("*")
        result = []
        for predicate in self._predicates.values():
            roots = predicate.root_types()
            if not roots or base in roots:
                result.append(predicate)
        return result

    def merged_with(self, other: "PredicateRegistry") -> "PredicateRegistry":
        """Union of two registries (``other`` wins on name clashes)."""
        merged = PredicateRegistry(self)
        for predicate in other:
            merged.add(predicate)
        return merged

    def unfold_stats(self) -> dict[str, int]:
        """Aggregated unfolding-cache counters across all predicates."""
        hits = sum(predicate._unfold_stats[0] for predicate in self)
        misses = sum(predicate._unfold_stats[1] for predicate in self)
        return {"hits": hits, "misses": misses}


def _canonical_args(args: Sequence[Expr]) -> tuple[str, ...] | None:
    """Shape key of an argument tuple: variables numbered by first occurrence.

    ``(Var("u17"), Var("u17"), Nil())`` and ``(Var("n3"), Var("n3"), Nil())``
    both map to ``("?a0", "?a0", "nil")`` -- the same template applies to
    both.  Compound argument expressions are rare in unfoldings; they return
    ``None`` so the caller falls back to the uncached path.
    """
    tokens: list[str] = []
    numbering: dict[str, str] = {}
    for arg in args:
        if isinstance(arg, Var):
            token = numbering.get(arg.name)
            if token is None:
                token = f"?a{len(numbering)}"
                numbering[arg.name] = token
            tokens.append(token)
        elif isinstance(arg, Nil):
            tokens.append("nil")
        elif isinstance(arg, IntConst):
            tokens.append(f"int:{arg.value}")
        else:
            return None
    return tuple(tokens)


def _placeholder_expr(token: str) -> Expr:
    """The placeholder expression standing for one canonical-argument token."""
    if token.startswith("?a"):
        return Var(token)
    if token == "nil":
        return Nil()
    return IntConst(int(token.removeprefix("int:")))


def predicate_complexity(predicate: InductivePredicate) -> Mapping[str, int]:
    """Complexity metrics quoted in Section 5.2 (parameters, singletons, inductives)."""
    return {
        "params": predicate.arity,
        "singletons": predicate.singleton_count(),
        "inductives": predicate.inductive_count(),
    }
