"""Inductive heap predicate definitions and their registry.

An inductive predicate ``p(t1, ..., tn)`` is defined by a finite disjunction
of *cases*, each of which is a symbolic heap over the formal parameters
(plus case-local existential variables).  The canonical example from the
paper is the doubly-linked-list predicate::

    dll(hd, pr, tl, nx) :=  (emp  &  hd = nx  &  pr = tl)
                         |  (exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx))

Predicates carry optional parameter types, which the inference uses to prune
type-inconsistent argument permutations (Algorithm 2, line 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.sl.errors import SLError, UnknownPredicateError
from repro.sl.exprs import Expr, IntConst, Nil, Var
from repro.sl.spatial import PointsTo, PredApp, SepConj, Spatial, SymHeap, fresh_var

#: Upper bound on memoized case templates per predicate (the key space is
#: tiny in practice: one entry per case and argument *shape*).
_UNFOLD_CACHE_LIMIT = 512


@dataclass(frozen=True)
class PredCase:
    """One disjunct of an inductive predicate definition."""

    body: SymHeap

    def instantiate(self, params: Sequence[str], args: Sequence[Expr]) -> SymHeap:
        """Substitute actual arguments for formal parameters, freshening locals."""
        if len(params) != len(args):
            raise SLError(
                f"predicate case expects {len(params)} arguments, got {len(args)}"
            )
        renamed = self.body.rename_exists_fresh()
        substitution = dict(zip(params, args))
        return renamed.substitute(substitution)


@dataclass(frozen=True)
class InductivePredicate:
    """A named inductive heap predicate definition."""

    name: str
    params: tuple[str, ...]
    cases: tuple[PredCase, ...]
    param_types: tuple[str | None, ...] = ()

    def __init__(
        self,
        name: str,
        params: Iterable[str],
        cases: Iterable[PredCase | SymHeap],
        param_types: Iterable[str | None] | None = None,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        normalized = tuple(
            case if isinstance(case, PredCase) else PredCase(case) for case in cases
        )
        object.__setattr__(self, "cases", normalized)
        if param_types is None:
            types: tuple[str | None, ...] = tuple(None for _ in self.params)
        else:
            types = tuple(param_types)
        if len(types) != len(self.params):
            raise SLError(
                f"predicate {name!r}: {len(self.params)} parameters but {len(types)} types"
            )
        object.__setattr__(self, "param_types", types)
        # Unfolding memo: (case index, canonical argument shape) -> template
        # body.  Lists (not dataclass fields) so the instance stays frozen,
        # hashable and comparable on its definition alone.
        object.__setattr__(self, "_unfold_cache", {})
        object.__setattr__(self, "_unfold_stats", [0, 0])  # [hits, misses]
        # Per-case screening metadata (built lazily; see repro.sl.screen).
        object.__setattr__(self, "_case_screens", None)

    @property
    def arity(self) -> int:
        """Number of parameters."""
        return len(self.params)

    def unfold(self, args: Sequence[Expr]) -> list[SymHeap]:
        """Return the case bodies instantiated with ``args`` (one per disjunct)."""
        return [self.instantiate_case(index, args) for index in range(len(self.cases))]

    def instantiate_case(self, index: int, args: Sequence[Expr]) -> SymHeap:
        """Instantiate one case, memoizing the instantiation per argument shape.

        The model checker unfolds the same predicates with the same argument
        *shapes* (e.g. ``sll(?)`` with a single variable argument) thousands
        of times per inference run; only the variable names differ because
        they are generated fresh.  This caches the case body instantiated
        with positional placeholder arguments *compiled into closure
        builders* (:func:`_compile_spatial` / :func:`_compile_pure`), and
        specializes it per call: the builders construct the instantiated
        body directly from a placeholder -> argument mapping, skipping the
        generic ``substitute`` tree walk and the dataclass normalization
        passes entirely.  Case-local existentials are alpha-renamed to
        globally fresh names on every call.

        The per-call freshening is what keeps reuse sound: two unfoldings of
        the same case inside one search never share existential names, so a
        binding made for one can never constrain the other.
        """
        key = _canonical_args(args)
        if key is None:
            self._unfold_stats[1] += 1
            return self.cases[index].instantiate(self.params, args)
        entry = self._template_entry(index, key)
        template, spatial_builder, pure_builder = entry[0], entry[1], entry[2]
        # Placeholder -> actual argument mapping.  ``zip`` may also pair the
        # "nil"/"int:k" tokens with their (constant) arguments; the compiled
        # builders never look those up, so no filtering is needed.
        mapping: dict[str, Expr] = dict(zip(key, args))
        new_exists = []
        for name in template.exists:
            fresh = Var(fresh_var())
            mapping[name] = fresh
            new_exists.append(fresh.name)
        result = object.__new__(SymHeap)
        object.__setattr__(result, "exists", tuple(new_exists))
        object.__setattr__(
            result,
            "spatial",
            spatial_builder(mapping) if spatial_builder is not None else template.spatial,
        )
        object.__setattr__(
            result,
            "pure",
            pure_builder(mapping) if pure_builder is not None else template.pure,
        )
        return result

    def instantiate_case_goals(
        self, index: int, args: Sequence[Expr], key: tuple[str, ...] | None
    ) -> tuple[tuple[str, ...], list[Spatial], list]:
        """Instantiate one case directly as search goals.

        Returns ``(existentials, spatial atoms, pure conjuncts)`` -- the
        exact inputs of the checker's ``_solve`` -- without materializing a
        :class:`SymHeap` (or re-flattening it into atoms/conjuncts on every
        unfolding).  ``key`` is the caller-computed
        :func:`canonical_unfold_key` of ``args`` (callers unfolding several
        cases share one key computation); ``None`` falls back to the
        uncached instantiation.
        """
        if key is None:
            self._unfold_stats[1] += 1
            body = self.cases[index].instantiate(self.params, args)
            return body.exists, list(body.spatial_atoms()), _flatten_pure(body.pure)
        entry = self._template_entry(index, key)
        template, atom_slots, conj_slots = entry[0], entry[3], entry[4]
        mapping: dict[str, Expr] = dict(zip(key, args))
        template_exists = template.exists
        if template_exists:
            new_exists = []
            for name in template_exists:
                fresh = Var(fresh_var())
                mapping[name] = fresh
                new_exists.append(fresh.name)
            exists: tuple[str, ...] = tuple(new_exists)
        else:
            exists = ()
        atoms = [
            fn(mapping) if fn is not None else const for fn, const in atom_slots
        ]
        conjuncts = [
            fn(mapping) if fn is not None else const for fn, const in conj_slots
        ]
        return exists, atoms, conjuncts

    def _template_entry(self, index: int, key: tuple[str, ...]) -> tuple:
        """The compiled unfolding template for one (case, argument shape).

        Entries are ``(template, spatial builder, pure builder, atom slots,
        conjunct slots)``; slots pair an optional builder closure with the
        constant node it falls back to.
        """
        entry = self._unfold_cache.get((index, key))
        if entry is None:
            self._unfold_stats[1] += 1
            placeholders = [_placeholder_expr(token) for token in key]
            template = self.cases[index].instantiate(self.params, placeholders)
            known = {token for token in key if token.startswith("?a")}
            known.update(template.exists)
            atom_slots = tuple(
                (_compile_spatial(atom, known), atom)
                for atom in template.spatial.atoms()
            )
            conj_slots = tuple(
                (_compile_pure(conjunct, known), conjunct)
                for conjunct in _flatten_pure(template.pure)
            )
            entry = (
                template,
                _compile_spatial(template.spatial, known),
                _compile_pure(template.pure, known),
                atom_slots,
                conj_slots,
            )
            if len(self._unfold_cache) < _UNFOLD_CACHE_LIMIT:
                self._unfold_cache[(index, key)] = entry
        else:
            self._unfold_stats[0] += 1
        return entry

    def case_screens(self):
        """Per-case screening metadata (see :mod:`repro.sl.screen`).

        Compiled once per definition and shared by the checker's case
        pruning and the candidate pre-filter.
        """
        screens = self._case_screens
        if screens is None:
            from repro.sl.screen import build_case_screens

            screens = build_case_screens(self.params, [case.body for case in self.cases])
            object.__setattr__(self, "_case_screens", screens)
        return screens

    def unfold_cache_keys(self) -> list[tuple[int, tuple[str, ...]]]:
        """The ``(case index, argument shape)`` keys memoized so far.

        The compiled templates themselves contain closures and cannot be
        serialized; the persistent cache stores these keys and recompiles
        via :meth:`warm_unfold_template` on load.
        """
        return list(self._unfold_cache)

    def warm_unfold_template(self, index: int, key: tuple[str, ...]) -> bool:
        """Precompile one unfolding template (persistent-cache warm start).

        Returns ``False`` for an out-of-range case index (a stale cache row
        for a since-edited predicate; harmless to skip).  The hit/miss
        counters are snapshotted around the compile so warming is invisible
        to ``unfold_stats()`` and the pinned counter baselines.
        """
        if index < 0 or index >= len(self.cases):
            return False
        stats = self._unfold_stats
        snapshot = (stats[0], stats[1])
        try:
            self._template_entry(index, key)
        finally:
            stats[0], stats[1] = snapshot
        return True

    def unfold_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of this predicate's unfolding memo."""
        return {
            "hits": self._unfold_stats[0],
            "misses": self._unfold_stats[1],
            "entries": len(self._unfold_cache),
        }

    def root_types(self) -> frozenset[str]:
        """Structure types that may anchor this predicate.

        Collected from the points-to atoms of the definition (including
        transitively referenced predicates is not needed: the first parameter
        of every benchmark predicate is dereferenced in its own body).
        """
        types: set[str] = set()
        for case in self.cases:
            for atom in case.body.spatial_atoms():
                if isinstance(atom, PointsTo):
                    types.add(atom.type_name)
        return frozenset(types)

    def singleton_count(self) -> int:
        """Number of points-to atoms across all cases (a complexity metric)."""
        return sum(
            1
            for case in self.cases
            for atom in case.body.spatial_atoms()
            if isinstance(atom, PointsTo)
        )

    def inductive_count(self) -> int:
        """Number of predicate applications across all cases (a complexity metric)."""
        return sum(
            1
            for case in self.cases
            for atom in case.body.spatial_atoms()
            if isinstance(atom, PredApp)
        )

    def apply(self, args: Sequence[Expr] | Sequence[str]) -> PredApp:
        """Build an application of this predicate; strings become variables."""
        exprs = [arg if isinstance(arg, Expr) else Var(arg) for arg in args]
        if len(exprs) != self.arity:
            raise SLError(f"{self.name} expects {self.arity} arguments, got {len(exprs)}")
        return PredApp(self.name, exprs)


class PredicateRegistry:
    """A collection of inductive predicate definitions, looked up by name."""

    def __init__(self, predicates: Iterable[InductivePredicate] = ()):
        self._predicates: dict[str, InductivePredicate] = {}
        for predicate in predicates:
            self.add(predicate)

    def add(self, predicate: InductivePredicate) -> None:
        """Register (or replace) a predicate definition."""
        self._predicates[predicate.name] = predicate

    def get(self, name: str) -> InductivePredicate:
        """Look up a predicate; raises :class:`UnknownPredicateError` if absent."""
        try:
            return self._predicates[name]
        except KeyError:
            raise UnknownPredicateError(f"unknown predicate {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._predicates

    def __iter__(self) -> Iterator[InductivePredicate]:
        return iter(self._predicates.values())

    def __len__(self) -> int:
        return len(self._predicates)

    def names(self) -> list[str]:
        """Names of all registered predicates."""
        return list(self._predicates)

    def subset(self, names: Iterable[str]) -> "PredicateRegistry":
        """A new registry containing only the named predicates (and their deps)."""
        wanted = set(names)
        closure: set[str] = set()
        frontier = list(wanted)
        while frontier:
            name = frontier.pop()
            if name in closure or name not in self._predicates:
                continue
            closure.add(name)
            for case in self._predicates[name].cases:
                for atom in case.body.spatial_atoms():
                    if isinstance(atom, PredApp) and atom.name not in closure:
                        frontier.append(atom.name)
        # Preserve definition order: iterating the ``closure`` set directly
        # would make the subset's candidate-enumeration order (and with it
        # tie-breaking among equally-ranked invariants) depend on
        # PYTHONHASHSEED from process to process.
        return PredicateRegistry(
            predicate for name, predicate in self._predicates.items() if name in closure
        )

    def candidates_for_type(self, type_name: str | None) -> list[InductivePredicate]:
        """Predicates whose definition dereferences the given structure type.

        This implements the filtering optimisation of Section 4.2: only
        predicates with at least one parameter of the root pointer's type
        are considered.  Predicates whose definitions never dereference any
        cell (degenerate) are always returned.
        """
        if type_name is None:
            return list(self._predicates.values())
        base = type_name.rstrip("*")
        result = []
        for predicate in self._predicates.values():
            roots = predicate.root_types()
            if not roots or base in roots:
                result.append(predicate)
        return result

    def merged_with(self, other: "PredicateRegistry") -> "PredicateRegistry":
        """Union of two registries (``other`` wins on name clashes)."""
        merged = PredicateRegistry(self)
        for predicate in other:
            merged.add(predicate)
        return merged

    def unfold_stats(self) -> dict[str, int]:
        """Aggregated unfolding-cache counters across all predicates."""
        hits = sum(predicate._unfold_stats[0] for predicate in self)
        misses = sum(predicate._unfold_stats[1] for predicate in self)
        return {"hits": hits, "misses": misses}


def _canonical_args(args: Sequence[Expr]) -> tuple[str, ...] | None:
    """Shape key of an argument tuple: variables numbered by first occurrence.

    ``(Var("u17"), Var("u17"), Nil())`` and ``(Var("n3"), Var("n3"), Nil())``
    both map to ``("?a0", "?a0", "nil")`` -- the same template applies to
    both.  Compound argument expressions are rare in unfoldings; they return
    ``None`` so the caller falls back to the uncached path.
    """
    tokens: list[str] = []
    numbering: dict[str, str] = {}
    for arg in args:
        cls = arg.__class__
        if cls is Var:
            token = numbering.get(arg.name)
            if token is None:
                count = len(numbering)
                token = _ARG_TOKENS[count] if count < len(_ARG_TOKENS) else f"?a{count}"
                numbering[arg.name] = token
            tokens.append(token)
        elif cls is Nil:
            tokens.append("nil")
        elif cls is IntConst:
            tokens.append(f"int:{arg.value}")
        else:
            return None
    return tuple(tokens)


#: Pre-built placeholder tokens (predicate arities are small).
_ARG_TOKENS = tuple(f"?a{index}" for index in range(16))

#: Public alias: the canonical argument-shape key used by the unfolding
#: caches.  The checker computes it once per predicate goal and shares it
#: across the cases it unfolds.
canonical_unfold_key = _canonical_args


def _flatten_pure(pure) -> list:
    """Top-level conjuncts of a pure formula (``TrueF`` contributes none)."""
    from repro.sl.exprs import And, TrueF

    if isinstance(pure, TrueF):
        return []
    if isinstance(pure, And):
        result: list = []
        for part in pure.parts:
            result.extend(_flatten_pure(part))
        return result
    return [pure]


def _placeholder_expr(token: str) -> Expr:
    """The placeholder expression standing for one canonical-argument token."""
    if token.startswith("?a"):
        return Var(token)
    if token == "nil":
        return Nil()
    return IntConst(int(token.removeprefix("int:")))


# ---------------------------------------------------------------------------
# Template compilation
# ---------------------------------------------------------------------------
#
# A cached unfolding template is specialized on every call with a mapping
# from placeholder/existential names to actual expressions.  Instead of the
# generic (and allocation-heavy) ``substitute`` tree walk, each template is
# compiled once into nested closures that rebuild exactly the nodes that
# mention substituted names; constant subtrees are shared with the template.
# A compiler returns ``None`` when the whole subtree is constant.


def _compile_expr(expr: Expr, known: set[str]):
    """Compile an expression into ``fn(mapping) -> Expr`` (``None`` = constant)."""
    from repro.sl.exprs import Add, Max, Mul, Neg, Sub

    cls = expr.__class__
    if cls is Var:
        if expr.name in known:
            name = expr.name
            return lambda m: m[name]
        return None
    if cls is Nil or cls is IntConst:
        return None
    if cls is Neg:
        operand = _compile_expr(expr.operand, known)
        if operand is None:
            return None
        return lambda m: Neg(operand(m))
    if cls is Mul:
        operand = _compile_expr(expr.operand, known)
        if operand is None:
            return None
        factor = expr.factor
        return lambda m: Mul(factor, operand(m))
    if cls in (Add, Sub, Max):
        left = _compile_expr(expr.left, known)
        right = _compile_expr(expr.right, known)
        if left is None and right is None:
            return None
        left_const, right_const = expr.left, expr.right
        if left is None:
            return lambda m: cls(left_const, right(m))
        if right is None:
            return lambda m: cls(left(m), right_const)
        return lambda m: cls(left(m), right(m))
    # Unknown expression kind: fall back to the generic substitution.
    return lambda m: expr.substitute(m)


def _compile_args(args: Sequence[Expr], known: set[str]):
    """Compile an argument tuple; ``None`` when every argument is constant.

    Arities 1-4 (every benchsuite predicate) get unrolled builders so the
    per-unfolding cost is a plain tuple display, not a generator pass.
    """
    compiled = [_compile_expr(arg, known) for arg in args]
    if not any(fn is not None for fn in compiled):
        return None
    slots = [
        fn if fn is not None else (lambda m, _c=arg: _c)
        for fn, arg in zip(compiled, args)
    ]
    if len(slots) == 1:
        (f0,) = slots
        return lambda m: (f0(m),)
    if len(slots) == 2:
        f0, f1 = slots
        return lambda m: (f0(m), f1(m))
    if len(slots) == 3:
        f0, f1, f2 = slots
        return lambda m: (f0(m), f1(m), f2(m))
    if len(slots) == 4:
        f0, f1, f2, f3 = slots
        return lambda m: (f0(m), f1(m), f2(m), f3(m))
    frozen = tuple(slots)
    return lambda m: tuple([fn(m) for fn in frozen])


def _compile_spatial(spatial: Spatial, known: set[str]):
    """Compile a spatial formula into ``fn(mapping) -> Spatial`` (``None`` = constant)."""
    cls = spatial.__class__
    if cls is PointsTo:
        source = _compile_expr(spatial.source, known)
        args = _compile_args(spatial.args, known)
        if source is None and args is None:
            return None
        type_name = spatial.type_name
        source_const, args_const = spatial.source, spatial.args

        def build_pt(m):
            atom = object.__new__(PointsTo)
            object.__setattr__(atom, "source", source(m) if source else source_const)
            object.__setattr__(atom, "type_name", type_name)
            object.__setattr__(atom, "args", args(m) if args else args_const)
            return atom

        return build_pt
    if cls is PredApp:
        args = _compile_args(spatial.args, known)
        if args is None:
            return None
        name = spatial.name

        def build_app(m):
            atom = object.__new__(PredApp)
            object.__setattr__(atom, "name", name)
            object.__setattr__(atom, "args", args(m))
            return atom

        return build_app
    if isinstance(spatial, SepConj):
        parts = [_compile_spatial(part, known) for part in spatial.parts]
        if not any(fn is not None for fn in parts):
            return None
        slots = tuple(
            fn if fn is not None else (lambda m, _c=part: _c)
            for fn, part in zip(parts, spatial.parts)
        )

        def build_sep(m):
            # The template's parts are already flat and Emp-free, so the
            # dataclass flattening pass is safely bypassed.
            conj = object.__new__(SepConj)
            object.__setattr__(conj, "parts", tuple(fn(m) for fn in slots))
            return conj

        return build_sep
    # Emp (and any unknown leaf) is constant.
    return None


def _compile_pure(pure, known: set[str]):
    """Compile a pure formula into ``fn(mapping) -> PureFormula`` (``None`` = constant)."""
    from repro.sl.exprs import And, Not, Or, _BinRel

    cls = pure.__class__
    if isinstance(pure, _BinRel):
        left = _compile_expr(pure.left, known)
        right = _compile_expr(pure.right, known)
        if left is None and right is None:
            return None
        left_const, right_const = pure.left, pure.right

        def build_rel(m):
            rel = object.__new__(cls)
            object.__setattr__(rel, "left", left(m) if left else left_const)
            object.__setattr__(rel, "right", right(m) if right else right_const)
            return rel

        return build_rel
    if cls is Not:
        operand = _compile_pure(pure.operand, known)
        if operand is None:
            return None
        return lambda m: Not(operand(m))
    if cls in (And, Or):
        parts = [_compile_pure(part, known) for part in pure.parts]
        if not any(fn is not None for fn in parts):
            return None
        slots = tuple(
            fn if fn is not None else (lambda m, _c=part: _c)
            for fn, part in zip(parts, pure.parts)
        )

        def build_junction(m):
            junction = object.__new__(cls)
            object.__setattr__(junction, "parts", tuple(fn(m) for fn in slots))
            return junction

        return build_junction
    # TrueF / FalseF (and any unknown leaf) are constant.
    return None


def predicate_complexity(predicate: InductivePredicate) -> Mapping[str, int]:
    """Complexity metrics quoted in Section 5.2 (parameters, singletons, inductives)."""
    return {
        "params": predicate.arity,
        "singletons": predicate.singleton_count(),
        "inductives": predicate.inductive_count(),
    }
