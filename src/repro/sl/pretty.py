"""Pretty printing of SL expressions, formulae and stack-heap models.

The textual syntax produced here is the same one accepted by
:mod:`repro.sl.parser`, so formulas round-trip through
``parse_formula(pretty(f))``.
"""

from __future__ import annotations

from typing import Mapping

from repro.sl.exprs import (
    Add,
    And,
    Eq,
    Expr,
    FalseF,
    Ge,
    Gt,
    IntConst,
    Le,
    Lt,
    Max,
    Mul,
    Ne,
    Neg,
    Nil,
    Not,
    Or,
    PureFormula,
    Sub,
    TrueF,
    Var,
)
from repro.sl.model import StackHeapModel
from repro.sl.predicates import InductivePredicate
from repro.sl.spatial import Emp, PointsTo, PredApp, SepConj, Spatial, SymHeap


def pretty_expr(expr: Expr) -> str:
    """Render a pure expression."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, Nil):
        return "nil"
    if isinstance(expr, Neg):
        return f"-({pretty_expr(expr.operand)})"
    if isinstance(expr, Add):
        return f"({pretty_expr(expr.left)} + {pretty_expr(expr.right)})"
    if isinstance(expr, Sub):
        return f"({pretty_expr(expr.left)} - {pretty_expr(expr.right)})"
    if isinstance(expr, Mul):
        return f"({expr.factor} * {pretty_expr(expr.operand)})"
    if isinstance(expr, Max):
        return f"max({pretty_expr(expr.left)}, {pretty_expr(expr.right)})"
    raise TypeError(f"cannot pretty-print expression {expr!r}")


def pretty_pure(formula: PureFormula) -> str:
    """Render a pure formula."""
    if isinstance(formula, TrueF):
        return "true"
    if isinstance(formula, FalseF):
        return "false"
    if isinstance(formula, Eq):
        return f"{pretty_expr(formula.left)} = {pretty_expr(formula.right)}"
    if isinstance(formula, Ne):
        return f"{pretty_expr(formula.left)} != {pretty_expr(formula.right)}"
    if isinstance(formula, Lt):
        return f"{pretty_expr(formula.left)} < {pretty_expr(formula.right)}"
    if isinstance(formula, Le):
        return f"{pretty_expr(formula.left)} <= {pretty_expr(formula.right)}"
    if isinstance(formula, Gt):
        return f"{pretty_expr(formula.left)} > {pretty_expr(formula.right)}"
    if isinstance(formula, Ge):
        return f"{pretty_expr(formula.left)} >= {pretty_expr(formula.right)}"
    if isinstance(formula, Not):
        return f"!({pretty_pure(formula.operand)})"
    if isinstance(formula, And):
        return " & ".join(pretty_pure(part) for part in formula.parts)
    if isinstance(formula, Or):
        return " | ".join(f"({pretty_pure(part)})" for part in formula.parts)
    raise TypeError(f"cannot pretty-print pure formula {formula!r}")


def pretty_spatial(
    spatial: Spatial, field_names: Mapping[str, tuple[str, ...]] | None = None
) -> str:
    """Render a spatial formula.

    ``field_names`` optionally maps structure type names to field-name
    tuples, enabling the ``x -> Node{next: a, prev: b}`` named syntax; when
    absent the positional ``x -> Node(a, b)`` syntax is used.
    """
    if isinstance(spatial, Emp):
        return "emp"
    if isinstance(spatial, PointsTo):
        rendered_args = [pretty_expr(arg) for arg in spatial.args]
        names = (field_names or {}).get(spatial.type_name)
        if names is not None and len(names) == len(rendered_args):
            body = ", ".join(f"{name}: {value}" for name, value in zip(names, rendered_args))
            return f"{pretty_expr(spatial.source)} -> {spatial.type_name}{{{body}}}"
        return f"{pretty_expr(spatial.source)} -> {spatial.type_name}({', '.join(rendered_args)})"
    if isinstance(spatial, PredApp):
        return f"{spatial.name}({', '.join(pretty_expr(arg) for arg in spatial.args)})"
    if isinstance(spatial, SepConj):
        if not spatial.parts:
            return "emp"
        return " * ".join(pretty_spatial(part, field_names) for part in spatial.parts)
    raise TypeError(f"cannot pretty-print spatial formula {spatial!r}")


def pretty(
    formula: SymHeap, field_names: Mapping[str, tuple[str, ...]] | None = None
) -> str:
    """Render a symbolic heap ``exists xs . Sigma & Pi``."""
    parts = []
    spatial_text = pretty_spatial(formula.spatial, field_names)
    pure_text = pretty_pure(formula.pure)
    if spatial_text != "emp" or pure_text == "true":
        parts.append(spatial_text)
    if pure_text != "true":
        parts.append(pure_text)
    body = " & ".join(parts)
    if formula.exists:
        return f"exists {', '.join(formula.exists)}. {body}"
    return body


def pretty_predicate(predicate: InductivePredicate) -> str:
    """Render an inductive predicate definition in parser syntax."""
    header = f"pred {predicate.name}({', '.join(predicate.params)})"
    cases = [f"({pretty(case.body)})" for case in predicate.cases]
    return f"{header} := {' | '.join(cases)};"


def pretty_model(model: StackHeapModel) -> str:
    """Human-readable rendering of a stack-heap model (for debugging/reports)."""
    lines = ["stack:"]
    for name, value in model.stack:
        rendered = "nil" if value == 0 else f"{value:#x}"
        lines.append(f"  {name} = {rendered}")
    lines.append("heap:")
    for addr in sorted(model.heap.domain()):
        cell = model.heap[addr]
        fields = ", ".join(
            f"{name}: {'nil' if value == 0 else format(value, '#x')}"
            for name, value in cell.fields
        )
        marker = "  (freed)" if addr in model.freed_addresses else ""
        lines.append(f"  {addr:#x} -> {cell.type_name}{{{fields}}}{marker}")
    return "\n".join(lines)
