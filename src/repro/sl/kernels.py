"""Columnar group-at-once decision kernels for skeleton-batched checking.

``ModelChecker._check_batch`` historically settled each
:class:`~repro.sl.checker.PureVariant` of a candidate group with its own
scan over the shared :class:`~repro.sl.checker.EnvStream` -- one compiled
closure call per (variant, entry) pair, which the committed benchmarks
measured at 132k+ ``pure_variant_evals`` per Table 1 sweep.  This module
replaces that loop with a *group kernel*: all variants of a group are
settled against one model in a single pass over the stream's columnar
side-representation.

The kernel works in three steps:

1. the stream is materialized to exhaustion once (exactly the entries the
   per-variant scans would have pulled) and its per-position posting-list
   indexes (:meth:`EnvStream.position_index`) are built lazily for the
   positions the group actually pins;
2. variants are bucketed by pinned-position signature; each bucket shares
   one pair of code-generated matchers (:mod:`repro.cache.codegen`), keyed
   process-wide by the registry fingerprint;
3. a variant with pins resolves to the ordered intersection of its pins'
   posting lists -- only those candidate entries are examined (entries
   carrying deferred pure goals still re-run the endgame per variant); a
   variant with no pins keeps the full scan as its fallback.

On top of the indexes sits a *settle-record memo* (``EnvStream._settle_cache``):
the match/best-size/tie computation depends only on ``(pinned positions,
encoded values)`` -- every variant pinning the same values shares one record,
and only the final per-variant instantiation step (:func:`_finish`) runs
separately.  Because streams are memoized across groups and batches, the
record for the ubiquitous pin-free (all-fresh-argument) variant is computed
once per stream instead of once per consulting group.  Records from a stream
without deferred goals are view-independent (matching happens in the stream's
own coordinate space) and shared across all consumers; a stream with deferred
goals re-runs the endgame under each consumer's decoded environment, so its
records are additionally keyed by the consumer's canonical labeling (a stable,
per-(heap, root) memoized object).

Exactness: verdicts replicate ``_decide_variant`` bit-for-bit.  The posting
intersection enumerates candidates in ascending entry order -- the same
order the scan visits them -- so "first solution of maximal consumed size",
the ``max_solutions`` cutoff, tie detection and the ``_UNDECIDED`` triggers
(incomplete stream, too many matches, ambiguous ties) all fire identically.
The equivalence suite (``tests/sl/test_kernels.py``) asserts this per
(variant, model) against the legacy scan under both stream-view kinds.

Counters (:class:`repro.sl.screen.ScreeningStats`): ``kernel_groups``
counts kernel invocations (one per group x model), ``stream_index_hits``
variants resolved through posting-list intersection,
``kernel_scan_fallbacks`` pin-free variants that scanned every entry;
``pure_variant_evals`` keeps its meaning -- entries actually examined per
variant -- and is what the columnar path drives down.
"""

from __future__ import annotations

from repro.cache.codegen import matcher_for
from repro.sl.checker import CheckResult, _UNDECIDED, _variant_instantiation

#: Settle record for a pinned-value combination that matched more than
#: ``max_solutions`` entries -- every variant sharing it is ``_UNDECIDED``.
_OVERFLOW = object()

#: Cache-miss sentinel (``None`` is a valid record: a sound refutation).
_ABSENT = object()


def decide_group(
    checker,
    predicate: str,
    root_position: int,
    stream,
    view,
    slot_names: tuple[str, ...],
    stack: dict[str, int],
    model,
    domain: frozenset[int],
    work: list,
) -> list:
    """Settle every variant of one candidate group against one model.

    ``work`` holds ``(variant index, variant, positions, values)`` items --
    the resolved slot requirements of each still-live variant (``positions``
    and ``values`` aligned, values in the consumer's concrete space).
    Returns one verdict per item, aligned: ``None`` for a sound refutation,
    a :class:`CheckResult` when the stream settles the pair exactly, or the
    ``_UNDECIDED`` sentinel when only the exact search can.
    """
    stats = checker.screen_stats
    stats.kernel_groups += 1
    count = len(work)
    if not stream.materialize():
        # Every verdict off an incomplete stream depends on the unobserved
        # tail: ``_decide_variant`` returns ``_UNDECIDED`` in all such
        # branches, so the kernel skips the per-entry work entirely.
        return [_UNDECIDED] * count

    verdicts: list = [None] * count
    entries = stream.entries
    arity = len(slot_names)
    max_solutions = checker.max_solutions
    discharge = checker._discharge_deferred
    space = checker.codegen_space()
    cache = stream._settle_cache
    if cache is None:
        cache = stream._settle_cache = {}
    # Records from a deferred-free stream are view-independent: matching
    # compares encoded values in the stream's own coordinate space and no
    # endgame runs, so every consumer shares one record per key.  With
    # deferred goals the endgame re-runs under the consumer's *decoded*
    # environment, and the decoding is exactly the view's ``from_addr``
    # table -- so records are additionally keyed by that tuple.  It is
    # structural on purpose: consumer heaps are ephemeral (phase-3 models
    # chain through freshly built residuals), but address-identical
    # consumers of one canonical form keep producing the same ``from_addr``
    # and so keep hitting the same records.  The identity view decodes
    # nothing, so its records need no consumer component either.
    consumer = None
    if stream.has_deferred() and view.canon is not None:
        consumer = view.canon.from_addr

    # Bucket by pinned-position signature (insertion-ordered, deterministic):
    # one generated matcher pair serves a whole bucket, and the bucket's
    # positions decide index vs scan resolution once.
    buckets: dict[tuple[int, ...], list[int]] = {}
    for slot, item in enumerate(work):
        bucket = buckets.get(item[2])
        if bucket is None:
            buckets[item[2]] = [slot]
        else:
            bucket.append(slot)

    for positions, members in buckets.items():
        names = tuple(slot_names[position] for position in positions)
        match, endgame = matcher_for(
            space, predicate, arity, root_position, positions, names
        )
        if positions:
            indexes = None
            for slot in members:
                item = work[slot]
                values = item[3]
                encoded = view.encode_values(values)
                stats.stream_index_hits += 1
                key = (positions, encoded, consumer)
                record = cache.get(key, _ABSENT)
                if record is _ABSENT:
                    if indexes is None:
                        indexes = [
                            stream.position_index(position) for position in positions
                        ]
                    candidates = _candidate_entries(indexes, encoded)
                    record = _settle_indexed(
                        stats, entries, candidates, endgame, discharge,
                        max_solutions, values, view,
                    )
                    cache[key] = record
                verdicts[slot] = _verdict(
                    record, item[1], slot_names, stack, model, domain, view
                )
        else:
            # Nothing pinned: every entry is trivially slot-compatible, so
            # the record degenerates to the scan the legacy path would run
            # -- computed once per (stream, consumer) and shared by every
            # group's all-fresh variant from then on.
            stats.kernel_scan_fallbacks += len(members)
            key = (positions, (), consumer)
            record = cache.get(key, _ABSENT)
            if record is _ABSENT:
                record = _settle_scan(
                    stats, entries, match, discharge, max_solutions, view
                )
                cache[key] = record
            for slot in members:
                verdicts[slot] = _verdict(
                    record, work[slot][1], slot_names, stack, model, domain, view
                )
    return verdicts


def _candidate_entries(indexes: list, encoded: tuple) -> list[int]:
    """Ascending entry indices compatible with every pinned (position, value).

    Per pin the compatible set is ``postings[value] + wildcards`` (disjoint
    ascending lists, merged in order); the intersection walks the smallest
    pin's list in order and membership-tests the rest, so candidates come
    out in stream enumeration order -- which the "first solution of maximal
    size" selection rule depends on.
    """
    lists: list[list[int]] = []
    for (postings, wildcards), value in zip(indexes, encoded):
        posting = postings.get(value)
        if posting is None:
            merged = wildcards
        elif not wildcards:
            merged = posting
        else:
            merged = _merge(posting, wildcards)
        if not merged:
            return []
        lists.append(merged)
    if len(lists) == 1:
        return lists[0]
    lists.sort(key=len)
    others = [set(entry_ids) for entry_ids in lists[1:]]
    return [
        index
        for index in lists[0]
        if all(index in other for other in others)
    ]


def _merge(left: list[int], right: list[int]) -> list[int]:
    """Merge two disjoint ascending index lists, preserving order."""
    merged: list[int] = []
    i = j = 0
    left_len = len(left)
    right_len = len(right)
    while i < left_len and j < right_len:
        if left[i] < right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    if i < left_len:
        merged.extend(left[i:])
    if j < right_len:
        merged.extend(right[j:])
    return merged


def _settle_indexed(
    stats, entries, candidates, endgame, discharge, max_solutions, values, view,
):
    """Settle one pinned-value combination from its pre-intersected candidates.

    Slot compatibility is guaranteed by the index intersection; only entries
    carrying deferred pure goals still run the generated endgame (the scan
    "fallback for deferred entries" reduced to exactly those entries).
    Returns a shareable record: ``_OVERFLOW`` (more matches than
    ``max_solutions``), ``None`` (no match -- a sound refutation off a
    complete stream) or the tie list of maximal-size ``(entry, final_env)``
    solutions, which :func:`_verdict` finishes per variant.
    """
    matches = 0
    best_size = -1
    evals = 0
    tied: list = []
    for index in candidates:
        entry = entries[index]
        evals += 1
        if entry.deferred is None:
            final_env = None
        else:
            final_env = endgame(entry, values, view, discharge)
            if final_env is None:
                continue
        matches += 1
        if matches > max_solutions:
            stats.pure_variant_evals += evals
            return _OVERFLOW
        size = entry.nconsumed
        if size > best_size:
            best_size = size
            tied = [(entry, final_env)]
        elif size == best_size:
            tied.append((entry, final_env))
    stats.pure_variant_evals += evals
    if matches == 0:
        return None
    return tied


def _settle_scan(stats, entries, match, discharge, max_solutions, view):
    """Settle the pin-free combination by scanning every entry.

    Same record contract as :func:`_settle_indexed`; the generated matcher
    receives empty value tuples (nothing is pinned) and only the deferred
    endgame can reject an entry.
    """
    matches = 0
    best_size = -1
    evals = 0
    tied: list = []
    for entry in entries:
        evals += 1
        matched, final_env = match(entry, (), (), view, discharge)
        if not matched:
            continue
        matches += 1
        if matches > max_solutions:
            stats.pure_variant_evals += evals
            return _OVERFLOW
        size = entry.nconsumed
        if size > best_size:
            best_size = size
            tied = [(entry, final_env)]
        elif size == best_size:
            tied.append((entry, final_env))
    stats.pure_variant_evals += evals
    if matches == 0:
        return None
    return tied


def _verdict(record, variant, slot_names, stack, model, domain, view):
    """Turn one (possibly cached) settle record into a per-variant verdict."""
    if record is None:
        return None
    if record is _OVERFLOW:
        return _UNDECIDED
    return _finish(record, variant, slot_names, stack, model, domain, view)


def _finish(tied, variant, slot_names, stack, model, domain, view):
    """Turn a tie set into a verdict (shared tail of both settle loops).

    Replicates ``_decide_variant``: the first enumerated solution of maximal
    consumed size wins, unless a tied solution disagrees on residual or
    instantiation -- then only the exact search may choose.
    """
    chosen_entry, chosen_env = tied[0]
    instantiation = _variant_instantiation(
        variant, chosen_entry, chosen_env, stack, slot_names, view
    )
    for entry, final_env in tied[1:]:
        if entry.avail != chosen_entry.avail:
            return _UNDECIDED
        if (
            _variant_instantiation(variant, entry, final_env, stack, slot_names, view)
            != instantiation
        ):
            return _UNDECIDED
    avail = view.decode_avail(chosen_entry.avail)
    return CheckResult(
        residual=model.heap.restrict(avail),
        instantiation=instantiation,
        consumed=domain - avail,
    )
