"""Errors raised by the separation-logic core."""


class SLError(Exception):
    """Base class for all separation-logic related errors."""


class EvaluationError(SLError):
    """A pure expression could not be evaluated (e.g. unbound variable)."""


class ParseError(SLError):
    """A textual SL formula or predicate definition could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class UnknownPredicateError(SLError):
    """A formula refers to a predicate that is not in the registry."""


class HeapError(SLError):
    """Invalid heap operation (overlapping union, missing address, ...)."""
