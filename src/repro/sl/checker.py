"""Symbolic-heap model checking with residual heaps and instantiations.

This module implements Definition 2 of the paper::

    s, h  ||-  F   ~~>   h', iota

i.e. given a concrete stack-heap model ``(s, h)`` and a symbolic heap ``F``,
find a *residual* sub-heap ``h' <= h`` and an *instantiation* ``iota`` of
``F``'s existential variables such that ``s, h \\ h' |=_iota F``.

The paper encodes this problem into Z3 following Brotherston et al. (POPL
2016).  Z3 is not available in this offline environment, so the checker
solves the problem directly: because the model is concrete and finite,
satisfaction is decidable by a backtracking search that unfolds inductive
predicates, consumes heap cells for points-to atoms and binds existential
variables by unification against observed values.  Among all valid
reductions the checker returns one with a *minimal* residual heap (maximal
coverage), which matches the behaviour SLING relies on in its examples
(e.g. ``dll(x, u1, u2, tmp)`` covering the whole sub-heap of ``x``).

Performance architecture (see ``docs/performance.md``):

* the memo table is keyed on :meth:`SymHeap.structural_key` -- a nested
  tuple built from interned AST nodes, with existentials alpha-normalized
  positionally -- instead of a ``pretty()``-rendered string;
* the search threads one mutable environment and one mutable
  available-address set through the recursion, undoing bindings via a
  *trail* on backtrack, instead of copying a ``dict`` per branch;
* predicate cases are screened (:mod:`repro.sl.screen`) before they are
  instantiated: a recursive case whose root address is not available, or a
  base case whose equalities are already violated, is skipped outright;
* :meth:`check_all` is fail-fast: models are tried in ascending heap-size
  order and the last refuting model per formula shape is remembered, so the
  likeliest refuter runs first and most wrong candidates die after a single
  (often memoized) check.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.sl.errors import EvaluationError, UnknownPredicateError
from repro.sl.exprs import (
    And,
    Eq,
    Expr,
    IntConst,
    Ne,
    Nil,
    Not,
    Or,
    PureFormula,
    TrueF,
    FalseF,
    Var,
)
from repro.sl.model import Heap, StackHeapModel
from repro.sl.predicates import PredicateRegistry, canonical_unfold_key
from repro.sl.screen import ScreeningStats, case_feasible, formula_shape
from repro.sl.spatial import Emp, PointsTo, PredApp, SepConj, Spatial, SymHeap
from repro.telemetry import monotime


@dataclass(frozen=True)
class CheckResult:
    """The outcome of a successful reduction ``s,h ||- F ~~> h', iota``."""

    residual: Heap
    instantiation: dict[str, int]
    consumed: frozenset[int]

    def covers_everything(self) -> bool:
        """True when the formula modelled the entire heap (empty residual)."""
        return self.residual.is_empty()


def _span_name(formula: SymHeap) -> str:
    """Span label of a checked formula: its leading spatial atom's predicate."""
    atoms = formula.spatial_atoms()
    if not atoms:
        return "<pure>"
    return getattr(atoms[0], "name", type(atoms[0]).__name__)


@dataclass
class _SearchState:
    """Mutable bookkeeping shared across one top-level ``check`` call."""

    steps: int = 0
    solutions: int = 0
    max_depth: int = 0
    #: Binding trail: variable names (bound in the environment) interleaved
    #: with addresses (consumed from the available set), popped on backtrack.
    trail: list = field(default_factory=list)
    max_trail: int = 0
    #: Raw-leaf mode (skeleton streams): yield ``(env, available, deferred
    #: pures, unknowns)`` at each leaf instead of discharging the deferred
    #: goals and yielding a finished ``(env, available)`` pair.
    raw: bool = False


class CheckBudgetExceeded(Exception):
    """Internal signal: the search exceeded its step budget."""


class ModelChecker:
    """Checks symbolic heaps against concrete stack-heap models.

    Parameters
    ----------
    registry:
        The inductive predicate definitions that formulas may refer to.
    max_steps:
        Upper bound on the number of search steps per ``check`` call; beyond
        it the best solution found so far is returned (or ``None``).
    max_solutions:
        Number of complete reductions to enumerate before settling on the
        best one found; keeps the search cheap on heavily ambiguous
        formulas.
    cache_size:
        Capacity of the built-in memo table.  Every ``check`` call is keyed
        on ``(structural key, model)`` -- the key alpha-renames existentials
        positionally so candidates that differ only in the machine-generated
        names of their existentials share one entry -- and both successful
        and failed reductions are cached.  ``0`` disables memoization.
        ``None`` (the default) is adaptive: batched checking bypasses the
        per-formula memo entirely (its skeleton streams already share the
        search), so the table defaults off when ``batch_by_skeleton`` is on
        and to 65,536 entries otherwise.
    batch_by_skeleton:
        Enables :meth:`check_batch`'s shared skeleton streams (see below).
        The flag is consulted by the candidate loop (:mod:`repro.core.
        infer_atom`) and by the adaptive ``cache_size`` default; the batched
        decision procedure itself is always exact.
    fail_fast:
        When true, :meth:`check_all` orders models by ascending heap size
        and remembers the last refuting model per formula shape, so the
        likeliest refuter is tried first.  Results are unchanged either way.
    prune_cases:
        When true, predicate cases are screened against the current
        environment before being instantiated (skipping, e.g., recursive
        cases whose root address is not available).  Results are unchanged
        either way.
    columnar_kernels:
        When true (the default), :meth:`check_batch` settles all variants of
        a candidate group through the columnar group kernel
        (:mod:`repro.sl.kernels`): per-position posting-list indexes over the
        stream's slot columns plus code-generated matchers, instead of the
        per-variant closure scan.  Verdicts are identical either way (the
        kernel replicates :meth:`_decide_variant`'s selection rule exactly);
        only the per-entry work and the ``kernel_*`` counters change.
    """

    def __init__(
        self,
        registry: PredicateRegistry,
        max_steps: int = 50_000,
        max_solutions: int = 64,
        cache_size: int | None = None,
        fail_fast: bool = True,
        prune_cases: bool = True,
        batch_by_skeleton: bool = True,
        stream_cache_size: int = 1024,
        stream_max_entries: int = 4096,
        canonical_stream_keys: bool = True,
        structs=None,
        columnar_kernels: bool = True,
    ):
        self.registry = registry
        #: Key skeleton streams and learned refuters on canonical heap forms
        #: (see :mod:`repro.sl.model`): streams are then shared across
        #: address-renamed models, with environments translated back through
        #: the witness bijection lazily.  Requires ``structs`` (a
        #: :class:`~repro.lang.types.StructRegistry`) for the exactness
        #: guard; without one the checker silently keeps concrete keys.
        self.canonical_stream_keys = canonical_stream_keys
        self.structs = structs
        self.max_steps = max_steps
        self.max_solutions = max_solutions
        self.batch_by_skeleton = batch_by_skeleton
        if cache_size is None:
            # Adaptive default: the batched pipeline shares the search via
            # skeleton streams and proved the per-formula memo a net loss
            # (see docs/performance.md), so it only defaults on when the
            # caller opts out of batching.
            cache_size = 0 if batch_by_skeleton else 65_536
        self.cache_size = cache_size
        self.fail_fast = fail_fast
        self.prune_cases = prune_cases
        self._cache: OrderedDict[tuple, tuple | None] | None = (
            OrderedDict() if cache_size > 0 else None
        )
        self.cache_hits = 0
        self.cache_misses = 0
        #: Whether the most recent ``_check_uncached`` selection was
        #: enumeration-order dependent (see its docstring).
        self.last_check_ambiguous = False
        #: Screening / fail-fast counters (shared with the candidate loop).
        self.screen_stats = ScreeningStats()
        #: Learned refuters: formula shape -> index of the model (within the
        #: last ``check_all`` batch of that shape) that refuted it.  Bounded
        #: with the same LRU discipline as the check memo: formula shapes
        #: accumulate for the life of an engine run otherwise.
        self._refuters: OrderedDict[tuple, int] = OrderedDict()
        self.refuters_limit = _REFUTERS_LIMIT
        #: Memoized skeleton streams: (skeleton structural key, model) ->
        #: :class:`EnvStream`, LRU-bounded.
        self.stream_cache_size = stream_cache_size
        self.stream_max_entries = stream_max_entries
        self._streams: OrderedDict[tuple, EnvStream] = OrderedDict()
        #: Optional disk tier beneath the canonical-keyed caches (set by
        #: :meth:`repro.cache.tier.PersistentCache.attach`; ``None`` keeps
        #: every code path byte-identical to the cache-less checker).
        self.persistent = None
        #: Optional span tracer (set by the owning :class:`Sling`; ``None``
        #: keeps ``check_all``/``check_batch`` on the untraced fast path).
        self.tracer = None
        #: Optional fault-injection plan (set by the owning :class:`Sling`;
        #: ``None`` keeps the stream-materialization site untouched).
        self.fault_plan = None
        self.columnar_kernels = columnar_kernels
        #: The group decision kernel (``None`` keeps the legacy per-variant
        #: scan).  Imported lazily: :mod:`repro.sl.kernels` imports names
        #: from this module at load time.
        self._kernel = None
        if columnar_kernels:
            from repro.sl.kernels import decide_group

            self._kernel = decide_group
        #: Registry fingerprint keying the process-wide code-gen matcher
        #: cache (computed lazily on first kernel use; see
        #: :mod:`repro.cache.codegen`).
        self._codegen_space: str | None = None

    # ------------------------------------------------------------------ API --

    def check(self, model: StackHeapModel, formula: SymHeap) -> CheckResult | None:
        """Memoizing wrapper around the reduction of Definition 2.

        Results are looked up by the alpha-normalized structural key of the
        formula and the model; on a hit the cached instantiation is rebound
        to the formula's actual existential names (cached entries are
        name-independent otherwise: residual and consumed sets only mention
        heap addresses).
        """
        if self._cache is None:
            # No memo table: still count the lookup as a miss so that
            # ``hits + misses`` remains the number of ``check`` calls.
            self.cache_misses += 1
            return self._check_uncached(model, formula)
        # The shadow mask records which existentials collide with a stack
        # variable of this model: the search resolves such names against the
        # stack (a scoping quirk kept for compatibility), so alpha-variants
        # with different collisions are NOT equivalent and must not share an
        # entry.
        stack = model.stack_map
        shadow = tuple(
            position
            for position, name in enumerate(formula.exists)
            if name in stack
        )
        key = (formula.structural_key(), shadow, model)
        entry = self._cache.get(key, _CACHE_ABSENT)
        if entry is not _CACHE_ABSENT:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            payload, ambiguous = entry
            # Replay the ambiguity signal on every hit: the dedup layer
            # snapshots the counter around each location and must see
            # order-dependent selections even when they are served from the
            # memo (the cached result itself is deterministic -- it just is
            # not replayable through an address bijection).
            self.last_check_ambiguous = ambiguous
            if ambiguous:
                self.screen_stats.exact_selection_ambiguities += 1
            if payload is None:
                return None
            residual, consumed, instantiation_items = payload
            return CheckResult(
                residual=residual,
                instantiation={
                    formula.exists[position]: value
                    for position, value in instantiation_items
                },
                consumed=consumed,
            )
        self.cache_misses += 1
        result = self._check_uncached(model, formula)
        if result is None:
            payload = None
        else:
            payload = (
                result.residual,
                result.consumed,
                tuple(
                    (formula.exists.index(name), value)
                    for name, value in result.instantiation.items()
                ),
            )
        self._cache[key] = (payload, self.last_check_ambiguous)
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return result

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current size of the memo table."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache) if self._cache is not None else 0,
            "capacity": self.cache_size,
        }

    def clear_cache(self) -> None:
        """Drop all memoized reductions (and skeleton streams), reset counters."""
        if self._cache is not None:
            self._cache.clear()
        self._streams.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _check_uncached(self, model: StackHeapModel, formula: SymHeap) -> CheckResult | None:
        """Run the reduction of Definition 2; ``None`` when no reduction exists.

        Sets ``self.last_check_ambiguous`` when the *selection* among valid
        reductions was enumeration-order dependent: distinct reductions tied
        at the selected coverage, the solution cap truncated the
        enumeration, or the step budget expired.  The isomorphism-dedup
        layer consults the flag (via the ``exact_selection_ambiguities``
        counter) because only order-independent selections may be replayed
        onto address-renamed models -- the enumeration order itself is not
        renaming-invariant.  (A second full-coverage reduction *after* the
        early-exit on the first one is necessarily unobserved; full-coverage
        ties across alpha-equivalent reductions do not occur for the
        skeleton-shaped candidates Algorithm 2 generates, which pin every
        argument slot per entry.)
        """
        env = dict(model.stack)
        unknowns = set(formula.exists)
        self.last_check_ambiguous = False
        # Free variables of the formula must be interpretable by the stack.
        for name in formula.free_vars():
            if name not in env:
                return None

        spatials = list(formula.spatial_atoms())
        pures = _pure_conjuncts(formula.pure)
        state = _SearchState(
            max_depth=3 * len(model.heap) + 3 * (len(spatials) + len(pures)) + 30
        )
        domain = model.heap.domain()
        available = set(domain)
        best: CheckResult | None = None
        ambiguous = False
        try:
            for solution_env, avail in self._solve(spatials, pures, env, unknowns, available, model, state, 0):
                consumed = domain - avail
                instantiation = {
                    name: solution_env[name]
                    for name in formula.exists
                    if name in solution_env
                }
                result = CheckResult(
                    residual=model.heap.restrict(avail),
                    instantiation=instantiation,
                    consumed=frozenset(consumed),
                )
                if best is None or len(result.consumed) > len(best.consumed):
                    best = result
                    ambiguous = False
                elif len(result.consumed) == len(best.consumed) and (
                    result.residual != best.residual
                    or result.instantiation != best.instantiation
                ):
                    # A distinct reduction tied at the current best size:
                    # "first of maximal size" now depends on the order.
                    ambiguous = True
                state.solutions += 1
                if result.covers_everything():
                    break
                if state.solutions >= self.max_solutions:
                    ambiguous = True
                    break
        except CheckBudgetExceeded:
            ambiguous = True
        if ambiguous:
            self.last_check_ambiguous = True
            self.screen_stats.exact_selection_ambiguities += 1
        if state.max_trail > self.screen_stats.max_trail_depth:
            self.screen_stats.max_trail_depth = state.max_trail
        return best

    def check_all(
        self, models: Sequence[StackHeapModel], formula: SymHeap
    ) -> list[CheckResult] | None:
        """Check a formula against every model; ``None`` unless all succeed.

        With ``fail_fast`` enabled the models are *tried* in ascending
        heap-size order, preceded by the model that most recently refuted a
        formula of the same shape -- most wrong candidates are then settled
        by the first check.  The returned list is always in input order.
        """
        if self.tracer is None:
            return self._check_all(models, formula)
        with self.tracer.span(
            "checker_call", name=_span_name(formula), models=len(models)
        ) as span:
            results = self._check_all(models, formula)
            span.set(refuted=results is None)
        return results

    def _check_all(
        self, models: Sequence[StackHeapModel], formula: SymHeap
    ) -> list[CheckResult] | None:
        count = len(models)
        if not self.fail_fast or count <= 1:
            results = []
            for model in models:
                result = self.check(model, formula)
                if result is None:
                    return None
                results.append(result)
            return results

        shape = formula_shape(formula)
        order = self._model_order(models, shape)
        results: list[CheckResult | None] = [None] * count
        for position, index in enumerate(order):
            result = self.check(models[index], formula)
            if result is None:
                self._learn_refuter_model(shape, models, index)
                if position == 0:
                    self.screen_stats.refuted_by_first_model += 1
                return None
            results[index] = result
        return results  # type: ignore[return-value]

    def _refuter_key(self, model: StackHeapModel) -> object | None:
        """Canonical identity a learned refuter is remembered under.

        With canonical keys on (and a struct registry available) this is the
        model's canonical form: a model that refuted a shape keeps steering
        the try order even when later batches contain only address-renamed
        copies of it.  ``None`` when no exact form is available -- the
        caller then falls back to the positional index, exactly the
        pre-canonical behaviour (storing the model itself would put whole
        heaps in the LRU and deep-compare them on every lookup).
        """
        if self.canonical_stream_keys and self.structs is not None:
            canon = model.canonical(self.structs)
            if canon.exact:
                return canon.form
        return None

    def _model_order(self, models: Sequence[StackHeapModel], shape: tuple) -> list[int]:
        """Fail-fast try order: smallest heap first, learned refuter in front."""
        count = len(models)
        order = sorted(range(count), key=lambda index: len(models[index].heap))
        hint = self._refuters.get(shape)
        if hint is not None:
            self._refuters.move_to_end(shape)
            if type(hint) is int:
                if 0 <= hint < count and order[0] != hint:
                    order.remove(hint)
                    order.insert(0, hint)
            else:
                for index in order:
                    if self._refuter_key(models[index]) == hint:
                        if order[0] != index:
                            order.remove(index)
                            order.insert(0, index)
                        break
        return order

    def _learn_refuter_model(
        self, shape: tuple, models: Sequence[StackHeapModel], index: int
    ) -> None:
        """Remember the refuting model, canonically when possible."""
        key = self._refuter_key(models[index])
        self._learn_refuter(shape, index if key is None else key)

    def _learn_refuter(self, shape: tuple, key: object) -> None:
        """Record the refuting model's key for a shape (LRU-bounded)."""
        self._refuters[shape] = key
        self._refuters.move_to_end(shape)
        if len(self._refuters) > self.refuters_limit:
            self._refuters.popitem(last=False)

    def satisfies(self, model: StackHeapModel, formula: SymHeap) -> bool:
        """Exact satisfaction ``s,h |= F`` (the residual heap must be empty)."""
        result = self.check(model, formula)
        return result is not None and result.covers_everything()

    # ------------------------------------------------------- batched checking --

    def check_batch(
        self,
        models: Sequence[StackHeapModel],
        skeleton: SymHeap,
        pure_variants: Sequence["PureVariant"],
        drop_vacuous: bool = True,
    ) -> list:
        """Decide many pure variants of one spatial skeleton in bulk.

        ``skeleton`` is a single predicate application whose non-root slots
        are existentially relaxed (see :func:`build_skeleton`); each
        :class:`PureVariant` re-pins some of those slots to stack values and
        carries the exact per-candidate formula.  The trail-based ``_solve``
        search runs once per (skeleton, model) and lazily enumerates every
        satisfying environment into a memoized :class:`EnvStream`; a variant
        is then decided by evaluating its compiled slot equalities against
        the streamed environments.

        Exactness contract (the batched pipeline is bit-identical to
        per-candidate :meth:`check_all`):

        * every solution of the per-candidate search projects onto a stream
          entry its matcher accepts (the relaxed search explores a branch
          superset, entries keep their deferred pure goals and the matcher
          re-runs the ``_discharge_deferred`` endgame under the variant's
          bindings), so *no match against a complete stream* is a sound
          refutation -- and refutation is enumeration-order independent;
        * a variant whose matches (on every model) consume nothing can only
          produce an all-vacuous or refuted ``check_all`` outcome, both of
          which the candidate loop drops (only used with ``drop_vacuous``);
        * accepted variants are settled from the stream by replicating the
          exact search's selection rule (first solution of maximal consumed
          size, capped at ``max_solutions``) -- and whenever that selection
          could depend on the per-candidate enumeration order (ties between
          distinct best reductions, too many solutions, incomplete streams)
          the variant falls back to the exact :meth:`check_all`, which
          reproduces residuals, instantiations and tie-breaking
          bit-for-bit.

        Returns one entry per variant: ``None`` (refuted), the
        :data:`BATCH_VACUOUS` sentinel (provably dropped by the vacuity
        filter), or the list of per-model :class:`CheckResult`.
        """
        if self.tracer is None:
            return self._check_batch(models, skeleton, pure_variants, drop_vacuous)
        with self.tracer.span(
            "candidate_group",
            name=_span_name(skeleton),
            variants=len(pure_variants),
            models=len(models),
        ) as span:
            outcomes = self._check_batch(models, skeleton, pure_variants, drop_vacuous)
            span.set(
                refuted=sum(1 for outcome in outcomes if outcome is None),
                vacuous=sum(1 for outcome in outcomes if outcome is BATCH_VACUOUS),
            )
        return outcomes

    def _check_batch(
        self,
        models: Sequence[StackHeapModel],
        skeleton: SymHeap,
        pure_variants: Sequence["PureVariant"],
        drop_vacuous: bool = True,
    ) -> list:
        variants = list(pure_variants)
        if not variants:
            return []
        count = len(models)
        if count == 0:
            return [self.check_all(models, variant.formula) for variant in variants]

        atom = skeleton.spatial_atoms()[0]
        slot_names = tuple(arg.name for arg in atom.args)
        root_position = next(
            position
            for position, name in enumerate(slot_names)
            if not name.startswith(_SLOT_PREFIX)
        )
        root_name = slot_names[root_position]
        shape = formula_shape(skeleton)
        if self.fail_fast and count > 1:
            order = self._model_order(models, shape)
        else:
            order = list(range(count))

        stats = self.screen_stats
        total = len(variants)
        pending = [True] * total
        refuted = [False] * total
        #: Every model so far produced a best reduction consuming nothing
        #: (the precondition of the vacuity short-circuit).
        vacuous_ok = [True] * total
        #: Some (variant, model) pair was undecidable from its stream alone
        #: (incomplete stream, too many solutions, or a genuine tie between
        #: distinct best reductions): only the exact search settles it.
        needs_exact = [False] * total
        #: Per-variant, per-model reductions settled from the streams.
        settled: list[list[CheckResult | None]] = [[None] * count for _ in range(total)]
        #: Per-variant compiled matchers: (pinned positions, evaluator).
        #: The positions are static per variant except for the rare
        #: stack-shadowed free slot, so compilation happens once, not once
        #: per (variant, model).
        matchers: list[tuple[tuple[int, ...], object] | None] = [None] * total
        refuted_per_model: dict[int, int] = {}

        for position, model_index in enumerate(order):
            live = [index for index in range(total) if pending[index]]
            if not live:
                break
            model = models[model_index]
            stack = model.stack_map
            domain = model.heap.domain()
            root_value = stack.get(root_name)
            if root_value is None:
                # The root variable itself is uninterpretable here: the
                # exact search refutes every candidate of the group.
                for index in live:
                    pending[index] = False
                    refuted[index] = True
                refuted_per_model[model_index] = len(live)
                if position == 0:
                    stats.refuted_by_first_model += len(live)
                continue
            stream, view = self._get_stream(skeleton, model, root_position, root_value)
            refuted_here = 0
            if self._kernel is not None:
                # Columnar path: resolve every live variant's requirements,
                # then settle the whole group against this model in one
                # kernel invocation (posting-list intersections over the
                # stream's slot columns, code-generated deferred endgames).
                work: list[tuple[int, PureVariant, tuple, tuple]] = []
                for index in live:
                    variant = variants[index]
                    required = variant.resolve(stack)
                    if required is None:
                        # A free variable of the candidate has no stack value
                        # in this model: the exact search refutes it outright.
                        pending[index] = False
                        refuted[index] = True
                        refuted_here += 1
                        continue
                    work.append(
                        (
                            index,
                            variant,
                            tuple(pair[0] for pair in required),
                            tuple(pair[1] for pair in required),
                        )
                    )
                if work:
                    verdicts = self._run_kernel(
                        atom.name, root_position, stream, view, slot_names,
                        stack, model, domain, work,
                    )
                    for item, verdict in zip(work, verdicts):
                        index = item[0]
                        if verdict is None:
                            pending[index] = False
                            refuted[index] = True
                            refuted_here += 1
                        elif verdict is _UNDECIDED:
                            needs_exact[index] = True
                        else:
                            settled[index][model_index] = verdict
                            if verdict.consumed:
                                vacuous_ok[index] = False
            else:
                for index in live:
                    variant = variants[index]
                    required = variant.resolve(stack)
                    if required is None:
                        # A free variable of the candidate has no stack value
                        # in this model: the exact search refutes it outright.
                        pending[index] = False
                        refuted[index] = True
                        refuted_here += 1
                        continue
                    positions = tuple(pair[0] for pair in required)
                    values = tuple(pair[1] for pair in required)
                    cached = matchers[index]
                    if cached is None or cached[0] != positions:
                        cached = (
                            positions,
                            _compile_matcher(positions, slot_names, self._discharge_deferred),
                        )
                        matchers[index] = cached
                    verdict = self._decide_variant(
                        stream, view, variant, cached[1], values, slot_names, stack, model, domain
                    )
                    if verdict is None:
                        pending[index] = False
                        refuted[index] = True
                        refuted_here += 1
                    elif verdict is _UNDECIDED:
                        needs_exact[index] = True
                    else:
                        settled[index][model_index] = verdict
                        if verdict.consumed:
                            vacuous_ok[index] = False
            if refuted_here:
                refuted_per_model[model_index] = refuted_here
                if position == 0:
                    stats.refuted_by_first_model += refuted_here
        if self.fail_fast and refuted_per_model:
            # Group-granularity refuter learning: remember the model that
            # settled the most variants of this skeleton shape.
            best = max(refuted_per_model, key=refuted_per_model.__getitem__)
            self._learn_refuter_model(shape, models, best)

        outcomes: list = []
        for index in range(total):
            if refuted[index]:
                outcomes.append(None)
            elif needs_exact[index]:
                stats.batch_exact_fallbacks += 1
                outcomes.append(self.check_all(models, variants[index].formula))
            elif drop_vacuous and vacuous_ok[index]:
                outcomes.append(BATCH_VACUOUS)
            else:
                outcomes.append(settled[index])
        return outcomes

    def _run_kernel(
        self,
        predicate: str,
        root_position: int,
        stream: "EnvStream",
        view: "_StreamView",
        slot_names: tuple[str, ...],
        stack: dict[str, int],
        model: StackHeapModel,
        domain: frozenset[int],
        work: list,
    ) -> list:
        """One group-kernel invocation, wrapped in a ``variant_decide`` span.

        ``work`` items are ``(variant index, variant, positions, values)``;
        the returned verdict list is aligned with it.  The untraced path is
        a single attribute test away from calling the kernel directly.
        """
        kernel = self._kernel
        if self.tracer is None:
            return kernel(
                self, predicate, root_position, stream, view, slot_names,
                stack, model, domain, work,
            )
        with self.tracer.span(
            "variant_decide", name=predicate, variants=len(work)
        ) as span:
            verdicts = kernel(
                self, predicate, root_position, stream, view, slot_names,
                stack, model, domain, work,
            )
            span.set(entries=len(stream.entries), complete=stream.complete)
        return verdicts

    def codegen_space(self) -> str:
        """Registry fingerprint namespacing this checker's code-gen matchers.

        The process-wide matcher cache (:mod:`repro.cache.codegen`) is shared
        across checkers; keying it by the PR 6 registry fingerprint means a
        predicate-definition change can never serve a matcher generated for
        another registry.  Computed once per checker (the registry is fixed
        at construction).
        """
        space = self._codegen_space
        if space is None:
            # Imported lazily: repro.cache's package init imports the stream
            # serializer, which imports this module.
            from repro.cache.fingerprint import registry_fingerprint

            space = self._codegen_space = registry_fingerprint(self.registry)
        return space

    def _decide_variant(
        self,
        stream: "EnvStream",
        view: "_StreamView",
        variant: "PureVariant",
        matcher,
        values: tuple[int, ...],
        slot_names: tuple[str, ...],
        stack: dict[str, int],
        model: StackHeapModel,
        domain: frozenset[int],
    ) -> "CheckResult | None | object":
        """Settle one (variant, model) pair from the skeleton stream.

        Replicates ``_check_uncached``'s selection rule over the matching
        entries: the result is the first enumerated solution achieving the
        maximal consumed size, enumeration stops at a full-coverage solution
        or after ``max_solutions``.  Whenever that selection could depend on
        the (unknowable) per-candidate enumeration order -- more matches
        than ``max_solutions``, an incomplete stream, or tied best
        reductions that disagree on residual or instantiation -- the verdict
        is :data:`_UNDECIDED` and the caller falls back to the exact search.

        ``view`` translates between this model's concrete addresses and the
        coordinates the stream stores its entries in: slot comparisons run in
        stream coordinates (the variant's pinned values are encoded once),
        while deferred-goal environments and the final residual/instantiation
        are decoded back to the model's addresses.

        Returns ``None`` for a sound refutation (no compatible environment
        in a complete stream), a :class:`CheckResult` when the selection is
        unambiguous, ``_UNDECIDED`` otherwise.
        """
        stats = self.screen_stats
        entries = stream.entries
        encoded = view.encode_values(values)
        matches = 0
        best_size = -1
        tied: list[tuple[_StreamEntry, dict | None]] = []
        index = 0
        while stream.ensure(index):
            entry = entries[index]
            index += 1
            stats.pure_variant_evals += 1
            matched, final_env = matcher(entry, encoded, values, view)
            if not matched:
                continue
            matches += 1
            if matches > self.max_solutions:
                return _UNDECIDED
            size = entry.nconsumed
            if size > best_size:
                best_size = size
                tied = [(entry, final_env)]
            elif size == best_size:
                tied.append((entry, final_env))
        if matches == 0:
            return None if stream.complete else _UNDECIDED
        if not stream.complete:
            return _UNDECIDED
        chosen_entry, chosen_env = tied[0]
        instantiation = _variant_instantiation(
            variant, chosen_entry, chosen_env, stack, slot_names, view
        )
        for entry, final_env in tied[1:]:
            if entry.avail != chosen_entry.avail:
                return _UNDECIDED
            if (
                _variant_instantiation(variant, entry, final_env, stack, slot_names, view)
                != instantiation
            ):
                return _UNDECIDED
        avail = view.decode_avail(chosen_entry.avail)
        return CheckResult(
            residual=model.heap.restrict(avail),
            instantiation=instantiation,
            consumed=domain - avail,
        )

    def _get_stream(
        self,
        skeleton: SymHeap,
        model: StackHeapModel,
        root_position: int,
        root_value: int,
    ) -> "tuple[EnvStream, _StreamView]":
        """The (memoized) solution stream of one skeleton against one model.

        The memo key deliberately drops everything the relaxed search cannot
        observe: the skeleton mentions only the root variable and its
        reserved slot existentials, so the stream is a function of
        (predicate, arity, root position, root *value*, heap) alone.  Models
        that alias the same structure through different pointer variables --
        or share a residual heap across result branches -- therefore share
        one enumeration.

        With ``canonical_stream_keys`` (and a struct registry, and an exact
        canonicalization) the concrete ``(root value, heap)`` tail of the key
        is replaced by ``(root orbit, canonical heap form)``: address-renamed
        copies of a heap then share one stream, whose entries are stored in
        canonical coordinates and translated per consumer by the returned
        :class:`_StreamView` (the witness bijection, applied lazily).
        """
        atom = skeleton.spatial_atoms()[0]
        canon = None
        if self.canonical_stream_keys and self.structs is not None:
            heap_canon = model.heap.canonical(root_value, self.structs)
            if heap_canon.exact:
                canon = heap_canon
        if canon is None:
            key = (atom.name, len(atom.args), root_position, root_value, model.heap)
            view = _IDENTITY_VIEW
        else:
            key = (atom.name, len(atom.args), root_position, canon.root_tag, canon.form)
            view = _StreamView(canon)
        streams = self._streams
        stream = streams.get(key)
        if stream is not None:
            streams.move_to_end(key)
            self.screen_stats.env_stream_reuses += 1
            if canon is not None and (
                stream.source_root != root_value
                or stream.source_heap_hash != hash(model.heap)
            ):
                # This hit only exists because of canonical keying: the
                # consumer's concrete heap differs from the one the stream
                # was generated from.  Hash comparison (cached on the heap)
                # keeps the classification O(1); a collision miscounting a
                # hit as concrete only skews this statistic, nothing else.
                self.screen_stats.canonical_stream_hits += 1
            return stream, view
        if self.fault_plan is not None:
            # Fault-injection site: a fresh stream is about to be
            # materialized (disk load or skeleton solve).  An injected
            # raise propagates out of the checker like any real failure
            # would -- the engine classifies and retries it.
            from repro.faults import maybe_inject

            maybe_inject(self.fault_plan, "stream_materialize", qualifier=atom.name)
        if canon is not None and self.persistent is not None:
            # Disk tier, canonical keys only: a persisted stream is a
            # finished enumeration in canonical space, directly readable
            # through this consumer's view.  Deliberately counts neither
            # ``skeletons_solved`` (nothing was solved) nor
            # ``env_stream_reuses`` (nothing was in memory).
            loaded = self.persistent.load_stream(key)
            if loaded is not None:
                streams[key] = loaded
                if len(streams) > self.stream_cache_size:
                    streams.popitem(last=False)
                return loaded, view
        stream = EnvStream(
            self._iter_skeleton_leaves(model, skeleton),
            tuple(arg.name for arg in atom.args),
            len(model.heap),
            self.stream_max_entries,
            canon=canon,
            source_root=root_value,
            source_heap_hash=hash(model.heap),
            tracer=self.tracer,
        )
        streams[key] = stream
        if len(streams) > self.stream_cache_size:
            streams.popitem(last=False)
        self.screen_stats.skeletons_solved += 1
        return stream, view

    def _iter_skeleton_leaves(self, model: StackHeapModel, skeleton: SymHeap):
        """Raw-leaf enumeration of the skeleton search (EnvStream source).

        Mirrors ``_check_uncached`` exactly -- same free-variable guard,
        same depth budget -- but yields every leaf ``(env, available,
        deferred pures, unknowns)`` instead of discharging deferred goals
        and selecting a best solution.
        """
        env = dict(model.stack)
        unknowns = set(skeleton.exists)
        for name in skeleton.free_vars():
            if name not in env:
                return
        spatials = list(skeleton.spatial_atoms())
        state = _SearchState(
            max_depth=3 * len(model.heap) + 3 * len(spatials) + 30, raw=True
        )
        available = set(model.heap.domain())
        try:
            yield from self._solve(spatials, [], env, unknowns, available, model, state, 0)
        finally:
            if state.max_trail > self.screen_stats.max_trail_depth:
                self.screen_stats.max_trail_depth = state.max_trail

    # ------------------------------------------------------------ search core --

    def _solve(
        self,
        spatials: list[Spatial],
        pures: list[PureFormula],
        env: dict[str, int],
        unknowns: set[str],
        available: set[int],
        model: StackHeapModel,
        state: _SearchState,
        depth: int,
    ) -> Iterator[tuple[dict[str, int], set[int]]]:
        """Yield (environment, remaining addresses) pairs satisfying all goals.

        Goals arrive pre-partitioned into spatial atoms and pure conjuncts
        (each list in its original relative order).  ``env``, ``unknowns``
        and ``available`` are shared mutable state: bindings and
        consumptions are recorded on ``state.trail`` and undone when this
        frame backtracks (including early generator shutdown).  Yielded
        values are live views -- callers must read them before resuming the
        iteration.
        """
        state.steps += 1
        if state.steps > self.max_steps:
            raise CheckBudgetExceeded
        if depth > state.max_depth:
            return

        trail = state.trail
        entry_mark = len(trail)
        if entry_mark > state.max_trail:
            state.max_trail = entry_mark
        try:
            # First discharge all pure goals that are currently decidable;
            # they never branch, so doing them eagerly prunes the search.
            # The caller's list is only copied once a goal is actually
            # discharged (most frames defer everything).
            if pures:
                copied = False
                progress = True
                while progress:
                    progress = False
                    for index, goal in enumerate(pures):
                        outcome = self._step_pure(goal, env, unknowns, trail)
                        if outcome is _FAIL:
                            return
                        if outcome is _DEFER:
                            continue
                        if not copied:
                            pures = list(pures)
                            copied = True
                        pures.pop(index)
                        progress = True
                        break

            if not spatials:
                if state.raw:
                    # Skeleton-stream mode: hand the raw leaf to the caller
                    # (who snapshots it) without committing to witnesses for
                    # the deferred constraints -- the per-variant evaluation
                    # re-runs the endgame under each variant's bindings.
                    yield env, available, pures, unknowns
                    return
                # Only deferred pure goals remain: constraints over
                # existential variables that the heap never pinned down
                # (e.g. the outer bounds of a bst or the lower bound of a
                # sorted-list segment).  Try to discharge them with a
                # lightweight bound analysis.
                final_env = self._discharge_deferred(pures, env, unknowns)
                if final_env is None:
                    return
                yield final_env, available
                return

            goal = self._pick_spatial(spatials, env)
            rest = list(spatials)
            rest.remove(goal)

            cls = goal.__class__
            if cls is PointsTo:
                yield from self._solve_points_to(goal, rest, pures, env, unknowns, available, model, state, depth)
            elif cls is PredApp:
                yield from self._solve_pred(goal, rest, pures, env, unknowns, available, model, state, depth)
            elif cls is Emp:
                yield from self._solve(rest, pures, env, unknowns, available, model, state, depth)
            elif cls is SepConj:
                expanded = list(goal.atoms()) + rest
                yield from self._solve(expanded, pures, env, unknowns, available, model, state, depth)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected spatial goal {goal!r}")
        finally:
            if len(trail) > entry_mark:
                _undo(env, available, trail, entry_mark)

    def _pick_spatial(self, goals: list[Spatial], env: dict[str, int]) -> Spatial:
        """Prefer atoms whose anchor address is already known (less branching)."""
        if len(goals) == 1:
            return goals[0]
        for goal in goals:
            if goal.__class__ is PointsTo and _try_eval(goal.source, env) is not None:
                return goal
        for goal in goals:
            if goal.__class__ is PredApp and goal.args and _try_eval(goal.args[0], env) is not None:
                return goal
        return goals[0]

    # -- points-to ---------------------------------------------------------------

    def _solve_points_to(
        self,
        goal: PointsTo,
        rest: list[Spatial],
        pures: list[PureFormula],
        env: dict[str, int],
        unknowns: set[str],
        available: set[int],
        model: StackHeapModel,
        state: _SearchState,
        depth: int,
    ) -> Iterator[tuple[dict[str, int], set[int]]]:
        source_value = _try_eval(goal.source, env)
        bind_name = None
        if source_value is not None:
            candidates: list[int] = [source_value] if source_value in available else []
        elif isinstance(goal.source, Var) and goal.source.name in unknowns:
            candidates = sorted(available)
            bind_name = goal.source.name
        else:
            candidates = []

        trail = state.trail
        heap_get = model.heap.get
        goal_args = goal.args
        arg_count = len(goal_args)
        for addr in candidates:
            if addr not in available:
                continue
            cell = heap_get(addr)
            if cell is None or cell.type_name != goal.type_name:
                continue
            values = cell.values
            if len(values) != arg_count:
                continue
            mark = len(trail)
            if bind_name is not None:
                env[bind_name] = addr
                trail.append(bind_name)
            if _unify_all(goal_args, values, env, unknowns, trail):
                available.discard(addr)
                trail.append(addr)
                yield from self._solve(
                    rest, pures, env, unknowns, available, model, state, depth
                )
            _undo(env, available, trail, mark)

    # -- inductive predicates ------------------------------------------------------

    def _solve_pred(
        self,
        goal: PredApp,
        rest: list[Spatial],
        pures: list[PureFormula],
        env: dict[str, int],
        unknowns: set[str],
        available: set[int],
        model: StackHeapModel,
        state: _SearchState,
        depth: int,
    ) -> Iterator[tuple[dict[str, int], set[int]]]:
        try:
            definition = self.registry.get(goal.name)
        except UnknownPredicateError:
            return
        if len(goal.args) != definition.arity:
            return

        # Unfolding depth is bounded by ``state.max_depth`` (set from the heap
        # size): every well-formed recursive case consumes at least one cell
        # before recursing, so deeper unfoldings cannot succeed and are pruned
        # in ``_solve``.
        screens = definition.case_screens() if self.prune_cases else None
        if screens is not None:
            arg_values = [_try_eval(arg, env) for arg in goal.args]
            heap_get = model.heap.get
        unfold_key: object = _KEY_UNSET
        for case_index in range(len(definition.cases)):
            if screens is not None and not case_feasible(
                screens[case_index], arg_values, heap_get, available
            ):
                # The case's own equalities or points-to anchors are already
                # violated (e.g. a recursive case whose root address is not
                # available): instantiating it could only fail.
                self.screen_stats.pruned_cases += 1
                continue
            if unfold_key is _KEY_UNSET:
                unfold_key = canonical_unfold_key(goal.args)
            case_exists, case_atoms, case_conjs = definition.instantiate_case_goals(
                case_index, goal.args, unfold_key
            )
            unknowns.update(case_exists)
            case_spatials = case_atoms + rest
            case_pures = case_conjs + pures
            try:
                yield from self._solve(
                    case_spatials, case_pures, env, unknowns, available, model, state, depth + 1
                )
            finally:
                unknowns.difference_update(case_exists)

    def _discharge_deferred(
        self, goals: list[PureFormula], env: dict[str, int], unknowns: set[str]
    ) -> dict[str, int] | None:
        """Resolve pure constraints left undecided by the spatial search.

        Each remaining constraint involves at least one unbound existential
        variable.  We run a small fixpoint: equalities with one known side
        bind the unknown; inequalities contribute lower/upper bounds for the
        unknowns, which are checked for feasibility and then used to pick a
        witness value.  Constraints that still involve two or more unbound
        variables afterwards are accepted optimistically (they are trivially
        satisfiable in isolation for the predicate shapes we support).

        Operates on a private copy of the environment (with its own local
        trail), so the caller's trail discipline is unaffected.
        """
        env = dict(env)
        local_trail: list = []
        pending = list(goals)
        changed = True
        while changed:
            changed = False
            remaining: list[PureFormula] = []
            for goal in pending:
                outcome = self._step_pure(goal, env, unknowns, local_trail)
                if outcome is _FAIL:
                    return None
                if outcome is _DEFER:
                    remaining.append(goal)
                    continue
                changed = True
            pending = remaining
            if changed:
                continue
            # No equality progress: derive bounds for unknowns from
            # inequalities whose other side is known.
            bounds: dict[str, tuple[int | None, int | None]] = {}
            for goal in pending:
                constraint = _as_bound(goal, env, unknowns)
                if constraint is None:
                    continue
                name, lower, upper = constraint
                current_lower, current_upper = bounds.get(name, (None, None))
                if lower is not None:
                    current_lower = lower if current_lower is None else max(current_lower, lower)
                if upper is not None:
                    current_upper = upper if current_upper is None else min(current_upper, upper)
                bounds[name] = (current_lower, current_upper)
            for name, (lower, upper) in bounds.items():
                if lower is not None and upper is not None and lower > upper:
                    return None
                if lower is not None:
                    env[name] = lower
                elif upper is not None:
                    env[name] = upper
                changed = True
            if not bounds:
                break
        # Whatever is left involves several unbound variables; accept.
        return env

    # -- pure goals -----------------------------------------------------------------

    def _step_pure(
        self, goal: PureFormula, env: dict[str, int], unknowns: set[str], trail: list
    ) -> object:
        """Try to discharge a pure goal against the shared environment.

        Returns ``_OK`` on success (bindings, if any, are recorded on
        ``trail``), ``_FAIL`` when the goal is definitely violated and
        ``_DEFER`` when it cannot be decided yet because of unbound
        existential variables.  On ``_FAIL``/``_DEFER`` any partial bindings
        made while evaluating the goal have been undone.
        """
        cls = goal.__class__
        if cls is Eq:
            side = goal.left
            side_cls = side.__class__
            if side_cls is Var:
                left = env.get(side.name)
            elif side_cls is Nil:
                left = 0
            else:
                left = _try_eval(side, env)
            side = goal.right
            side_cls = side.__class__
            if side_cls is Var:
                right = env.get(side.name)
            elif side_cls is Nil:
                right = 0
            else:
                right = _try_eval(side, env)
            if left is not None:
                if right is not None:
                    return _OK if left == right else _FAIL
                target = goal.right
                if isinstance(target, Var) and target.name in unknowns:
                    env[target.name] = left
                    trail.append(target.name)
                    return _OK
                return _DEFER
            if right is not None:
                target = goal.left
                if isinstance(target, Var) and target.name in unknowns:
                    env[target.name] = right
                    trail.append(target.name)
                    return _OK
            return _DEFER
        if cls is TrueF:
            return _OK
        if cls is FalseF:
            return _FAIL
        if cls is And:
            mark = len(trail)
            for part in goal.parts:
                outcome = self._step_pure(part, env, unknowns, trail)
                if outcome is _FAIL or outcome is _DEFER:
                    _undo_env(env, trail, mark)
                    return outcome
            return _OK
        if cls is Or:
            deferred = False
            for part in goal.parts:
                mark = len(trail)
                outcome = self._step_pure(part, env, unknowns, trail)
                if outcome is _OK:
                    return _OK
                _undo_env(env, trail, mark)
                if outcome is _DEFER:
                    deferred = True
            return _DEFER if deferred else _FAIL
        if cls is Not:
            mark = len(trail)
            inner = self._step_pure(goal.operand, env, unknowns, trail)
            _undo_env(env, trail, mark)
            if inner is _DEFER:
                return _DEFER
            return _OK if inner is _FAIL else _FAIL
        # Remaining binary relations (Ne, Lt, Le, Gt, Ge): decidable only when
        # both sides evaluate.
        try:
            return _OK if goal.eval(env) else _FAIL
        except EvaluationError:
            return _DEFER


# Sentinels used by ``_step_pure``.
_OK = object()
_FAIL = object()
_DEFER = object()

#: Outcome sentinel of ``check_batch``: the variant is not refuted, but every
#: reduction it admits consumes nothing, so the candidate loop's vacuity
#: filter is guaranteed to drop it without needing the concrete results.
BATCH_VACUOUS = object()

#: Internal verdict of ``_decide_variant``: the stream cannot settle this
#: (variant, model) pair exactly; the caller must run the exact search.
_UNDECIDED = object()

#: Upper bound on learned refuter entries (same LRU discipline as the memo).
_REFUTERS_LIMIT = 4096

#: Prefix of the synthetic skeleton slot variables.  ``?`` cannot occur in
#: parsed/program variable names, so slots never shadow stack variables.
_SLOT_PREFIX = "?w"


@dataclass(frozen=True)
class PureVariant:
    """One candidate of a skeleton group, expressed as pure slot deltas.

    A candidate ``p(a0, ..., an)`` with root ``r`` at position ``k`` is
    equivalent to ``exists w... . p(w0, ..., r@k, ..., wn) /\\ wi = ai`` for
    its non-fresh arguments -- the skeleton plus a conjunction of slot
    equalities.  ``formula`` keeps the exact per-candidate symbolic heap for
    the fallback path (and for ablation comparisons).
    """

    #: The original candidate formula (fallback / reference semantics).
    formula: SymHeap
    #: ``(slot position, stack variable)`` equalities.
    var_slots: tuple[tuple[int, str], ...]
    #: Slot positions pinned to ``nil``.
    nil_slots: tuple[int, ...] = ()
    #: ``(slot position, existential name)`` -- unconstrained, *unless* the
    #: name collides with a stack variable of a model, in which case the
    #: search resolves it against the stack (scoping quirk kept for
    #: compatibility) and the slot is pinned like a ``var_slot``.
    free_slots: tuple[tuple[int, str], ...] = ()

    def resolve(self, stack: dict[str, int]) -> tuple[tuple[int, int], ...] | None:
        """Concrete slot requirements under one model's stack.

        ``None`` when a non-fresh argument has no stack value -- the exact
        search refutes such candidates outright (uninterpretable free
        variable), so callers treat it as a refutation.
        """
        required: list[tuple[int, int]] = []
        for position, name in self.var_slots:
            value = stack.get(name)
            if value is None:
                return None
            required.append((position, value))
        for position in self.nil_slots:
            required.append((position, 0))
        for position, name in self.free_slots:
            value = stack.get(name)
            if value is not None:
                required.append((position, value))
        return tuple(required)


def build_skeleton(name: str, arity: int, root: str, root_position: int) -> SymHeap:
    """The spatial skeleton shared by every candidate ``p(.., root@k, ..)``.

    All slots except the root are relaxed to fresh existentials named with
    the reserved ``?w`` prefix (position-stable, so the structural key of a
    skeleton is canonical by construction).
    """
    slots = [
        Var(root) if position == root_position else Var(f"{_SLOT_PREFIX}{position}")
        for position in range(arity)
    ]
    exists = tuple(
        f"{_SLOT_PREFIX}{position}"
        for position in range(arity)
        if position != root_position
    )
    return SymHeap(exists=exists, spatial=PredApp(name, slots))


class _StreamView:
    """Translation between one model's addresses and a stream's coordinates.

    A stream generated under canonical keying stores its entries in
    *canonical space*: address values appear as the tagged pairs of the
    generating heap's canonical labeling.  A consumer of the stream (any
    model whose heap has the same canonical form) sees those entries through
    a view built from its *own* labeling of the same form -- encoding its
    concrete query values into canonical space for slot comparisons, and
    decoding environments, availability sets and instantiation values back
    into its concrete addresses.  The identity view (``canon=None``) serves
    concretely-keyed streams at (near) zero cost.
    """

    __slots__ = ("canon",)

    def __init__(self, canon):
        self.canon = canon

    def encode_values(self, values: tuple) -> tuple:
        canon = self.canon
        if canon is None:
            return values
        to_tag = canon.to_tag
        return tuple(to_tag.get(value, value) for value in values)

    def decode_value(self, value):
        if self.canon is None or type(value) is not tuple:
            return value
        return self.canon.from_addr[value[1]]

    def decode_avail(self, avail: frozenset) -> frozenset:
        canon = self.canon
        if canon is None:
            return avail
        from_addr = canon.from_addr
        return frozenset(from_addr[cid] for cid in avail)

    def decode_env(self, env: dict) -> dict:
        """A fresh, concrete copy of a stored environment (always a copy:
        the matcher extends it in place)."""
        canon = self.canon
        if canon is None:
            return dict(env)
        from_addr = canon.from_addr
        return {
            name: from_addr[value[1]] if type(value) is tuple else value
            for name, value in env.items()
        }


_IDENTITY_VIEW = _StreamView(None)


def _compile_matcher(positions, slot_names, discharge):
    """Compile a variant's pinned slot positions into an entry evaluator.

    Compiled once per variant (the pinned *positions* are static); the
    per-model values arrive per call, both in stream coordinates (``values``,
    for the slot comparisons) and concretely (``concrete``, for the deferred
    endgame).  The evaluator decides whether one streamed environment is
    compatible with the variant's bindings: pinned slots must agree with the
    entry's values (an unbound slot is compatible with anything -- nothing on
    the leaf's path constrained it), and entries carrying deferred pure goals
    re-run the ``_discharge_deferred`` endgame under the extended (decoded)
    environment, exactly as the per-candidate search would.  It returns
    ``(matched, final_env)`` where ``final_env`` is the endgame's witness
    environment in the consumer's concrete space (``None`` for entries
    without deferred goals).
    """
    names = tuple(slot_names[position] for position in positions)
    if len(positions) == 1:
        (position,) = positions
        name = names[0]

        def match_one(entry, values, concrete, view):
            slot = entry.values[position]
            value = values[0]
            if slot is not None and slot != value:
                return False, None
            if entry.deferred is None:
                return True, None
            env = view.decode_env(entry.env)
            if env.get(name) is None:
                env[name] = concrete[0]
            final_env = discharge(list(entry.deferred), env, entry.unknowns)
            return final_env is not None, final_env

        return match_one

    def match_many(entry, values, concrete, view):
        entry_values = entry.values
        for position, value in zip(positions, values):
            slot = entry_values[position]
            if slot is not None and slot != value:
                return False, None
        if entry.deferred is None:
            return True, None
        env = view.decode_env(entry.env)
        for name, value in zip(names, concrete):
            if env.get(name) is None:
                env[name] = value
        final_env = discharge(list(entry.deferred), env, entry.unknowns)
        return final_env is not None, final_env

    return match_many


def _variant_instantiation(
    variant: "PureVariant",
    entry: "_StreamEntry",
    final_env: dict | None,
    stack: dict[str, int],
    slot_names: tuple[str, ...],
    view: "_StreamView",
) -> dict[str, int]:
    """The candidate's existential instantiation at one stream entry.

    Mirrors ``_check_uncached``: a fresh argument is bound to whatever the
    search (or the deferred endgame) pinned its slot to; a fresh name that
    collides with a stack variable resolves to the stack value (the search
    seeds its environment from the stack); unconstrained names are omitted.
    Values read from the entry are decoded into the consumer's addresses
    (``final_env`` is already concrete).
    """
    instantiation: dict[str, int] = {}
    for position, name in variant.free_slots:
        stack_value = stack.get(name)
        if stack_value is not None:
            instantiation[name] = stack_value
            continue
        if final_env is not None:
            value = final_env.get(slot_names[position])
        else:
            value = view.decode_value(entry.values[position])
        if value is not None:
            instantiation[name] = value
    return instantiation


class _StreamEntry:
    """One satisfying leaf of a skeleton search, snapshotted for reuse."""

    __slots__ = ("values", "avail", "nconsumed", "env", "unknowns", "deferred")


class EnvStream:
    """Lazily materialized solutions of one (spatial skeleton, model) search.

    Entries are pulled from the raw-leaf generator on demand (``ensure``),
    snapshotted once and shared by every pure variant that consults the
    stream -- within one ``check_batch`` call and, through the checker's
    stream memo, across candidate batches.  ``complete`` distinguishes an
    exhausted enumeration (refutations may be trusted) from one cut off by
    the step budget or the entry cap (consumers must fall back to exact
    checks).

    Under canonical keying (``canon`` set) the snapshots are stored in
    canonical space -- slot values and environments through the generating
    heap's address tags, availability sets as canonical ids -- so that any
    consumer with the same canonical form can read them through its own
    :class:`_StreamView`.  ``source_root``/``source_heap_hash`` identify
    the concrete (root value, heap) the stream was generated from, letting
    the checker cheaply count the hits that only canonical keying made
    possible.
    """

    __slots__ = (
        "slot_names",
        "entries",
        "complete",
        "source_root",
        "source_heap_hash",
        "_source",
        "_heap_size",
        "_max_entries",
        "_canon",
        "_tracer",
        "_pull_seconds",
        "_first_ts",
        "_indexes",
        "_settle_cache",
        "_has_deferred",
    )

    def __init__(
        self,
        source,
        slot_names: tuple[str, ...],
        heap_size: int,
        max_entries: int,
        canon=None,
        source_root: int | None = None,
        source_heap_hash: int | None = None,
        tracer=None,
    ):
        self.slot_names = slot_names
        self.entries: list[_StreamEntry] = []
        self.complete = False
        self.source_root = source_root
        self.source_heap_hash = source_heap_hash
        self._source = source
        self._heap_size = heap_size
        self._max_entries = max_entries
        self._canon = canon
        self._tracer = tracer
        self._pull_seconds = 0.0
        self._first_ts: float | None = None
        #: Columnar side-representation: slot position -> ``(postings,
        #: wildcards)`` where ``postings`` maps a stored slot value to the
        #: ascending list of entry indices holding it and ``wildcards`` is
        #: the ascending list of entries whose slot is unbound (``None``,
        #: compatible with any pinned value).  Built lazily per position by
        #: :meth:`position_index`, only after the source is exhausted --
        #: entries are immutable from then on, so the index never goes
        #: stale.  Values live in the stream's own coordinate space
        #: (concrete addresses or canonical tags); consumers encode their
        #: query values through their ``_StreamView`` first.
        self._indexes: dict[int, tuple[dict, list[int]]] | None = None
        #: Settle-record memo of the group kernel: ``(positions, encoded
        #: values, consumer key) -> record``.  A record captures the whole
        #: match/best-size/tie computation for one pinned-value combination,
        #: which is variant-independent -- only the final instantiation step
        #: differs per variant.  Streams are reused across groups and
        #: batches, so records carry over with them.  See
        #: :func:`repro.sl.kernels.decide_group` for the key discipline.
        self._settle_cache: dict | None = None
        self._has_deferred: bool | None = None

    def _emit_span(self) -> None:
        """Flush the accumulated pull time as one ``aux``-track span.

        The pulls of a lazily shared stream interleave with arbitrary
        main-track spans, so they cannot live on the span stack; the
        aggregate goes on the ``aux`` track instead (its time is already
        inside the main-track spans that triggered the pulls).  Emitted
        exactly once, when the source closes -- a stream whose enumeration
        is still open when the run ends is simply not reported.
        """
        tracer = self._tracer
        self._tracer = None
        if tracer is None or self._first_ts is None:
            return
        tracer.emit_span(
            "stream_materialize",
            None,
            self._first_ts,
            self._pull_seconds,
            entries=len(self.entries),
            complete=self.complete,
        )

    def ensure(self, index: int) -> bool:
        """Materialize entries up to ``index``; False when none exists."""
        entries = self.entries
        while len(entries) <= index:
            source = self._source
            if source is None:
                return False
            if self._tracer is not None:
                pull_start = monotime()
                if self._first_ts is None:
                    self._first_ts = pull_start
            else:
                pull_start = None
            try:
                env, available, deferred, unknowns = next(source)
            except StopIteration:
                if pull_start is not None:
                    self._pull_seconds += monotime() - pull_start
                self._source = None
                self.complete = True
                self._emit_span()
                return False
            except CheckBudgetExceeded:
                if pull_start is not None:
                    self._pull_seconds += monotime() - pull_start
                self._source = None
                self._emit_span()
                return False
            if pull_start is not None:
                self._pull_seconds += monotime() - pull_start
            canon = self._canon
            entry = _StreamEntry()
            if canon is None:
                entry.values = tuple(env.get(name) for name in self.slot_names)
                entry.avail = frozenset(available)
            else:
                to_tag = canon.to_tag
                entry.values = tuple(
                    to_tag.get(value, value) if value is not None else None
                    for value in (env.get(name) for name in self.slot_names)
                )
                to_id = canon.to_id
                entry.avail = frozenset(to_id[addr] for addr in available)
            entry.nconsumed = self._heap_size - len(available)
            if deferred:
                # The endgame is re-run per variant: keep the leaf's full
                # environment and scope alongside the deferred goals.
                entry.deferred = tuple(deferred)
                if canon is None:
                    entry.env = dict(env)
                else:
                    to_tag = canon.to_tag
                    entry.env = {
                        name: to_tag.get(value, value) for name, value in env.items()
                    }
                entry.unknowns = frozenset(unknowns)
            else:
                entry.deferred = None
                entry.env = None
                entry.unknowns = None
            entries.append(entry)
            if len(entries) >= self._max_entries and self._source is not None:
                # Safety valve for combinatorial skeletons: close out and
                # leave the stream marked incomplete.
                self._source.close()
                self._source = None
                self._emit_span()
        return True

    def materialize(self) -> bool:
        """Exhaust the source; True when the enumeration completed.

        The group kernel settles every variant from the full entry list, so
        it pulls the whole stream up front -- exactly the entries the
        per-variant scan would have pulled (``_decide_variant`` has no early
        exit short of an ``_UNDECIDED`` bail-out, and those verdicts do not
        depend on the unpulled tail either).  After this call ``_source`` is
        ``None`` and the entry list is immutable.
        """
        index = len(self.entries)
        while self.ensure(index):
            index += 1
        return self.complete

    def position_index(self, position: int) -> tuple[dict, list[int]]:
        """The ``(postings, wildcards)`` index of one slot position.

        Built on first request and cached for the stream's lifetime; callers
        must :meth:`materialize` first (the kernel does).  A variant pinning
        ``position`` to value ``v`` matches exactly the entries in
        ``postings.get(v, []) + wildcards`` -- both lists ascending, so
        ordered merges preserve the stream's enumeration order, which the
        selection rule ("first solution of maximal size") depends on.
        """
        indexes = self._indexes
        if indexes is None:
            indexes = self._indexes = {}
        cached = indexes.get(position)
        if cached is None:
            postings: dict = {}
            wildcards: list[int] = []
            for index, entry in enumerate(self.entries):
                value = entry.values[position]
                if value is None:
                    wildcards.append(index)
                else:
                    posting = postings.get(value)
                    if posting is None:
                        postings[value] = [index]
                    else:
                        posting.append(index)
            cached = (postings, wildcards)
            indexes[position] = cached
        return cached

    def has_deferred(self) -> bool:
        """True when any entry carries deferred pure goals.

        Computed once after materialization (entries are immutable then).
        Deferred-free streams settle view-independently -- matching happens
        entirely in the stream's own coordinate space -- which lets the
        kernel share settle records across every consumer view.
        """
        cached = self._has_deferred
        if cached is None:
            cached = self._has_deferred = any(
                entry.deferred is not None for entry in self.entries
            )
        return cached

# Sentinel for the lazily computed unfold key in ``_solve_pred`` (the key
# itself may legitimately be ``None`` for non-canonical argument tuples).
_KEY_UNSET = object()

# Sentinel distinguishing "cached None" from "not cached" in the memo table.
_CACHE_ABSENT = object()


def canonical_formula_key(formula: SymHeap) -> str:
    """Render a formula with its existentials alpha-renamed positionally.

    This is the original (pretty-printed) memo key, kept for debugging and
    for asserting alpha-equivalence in tests; the checker itself now keys
    its memo table on the much cheaper :meth:`SymHeap.structural_key`, which
    induces the same equivalence classes.
    """
    from repro.sl.pretty import pretty

    if not formula.exists:
        return pretty(formula)
    renaming: dict[str, Expr] = {
        name: Var(f"?e{position}") for position, name in enumerate(formula.exists)
    }
    return pretty(
        SymHeap(
            tuple(f"?e{position}" for position in range(len(formula.exists))),
            formula.spatial.substitute(renaming),
            formula.pure.substitute(renaming),
        )
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _undo(env: dict[str, int], available: set[int], trail: list, mark: int) -> None:
    """Pop trail entries down to ``mark``: unbind names, restore addresses."""
    while len(trail) > mark:
        entry = trail.pop()
        if entry.__class__ is str:
            del env[entry]
        else:
            available.add(entry)


def _undo_env(env: dict[str, int], trail: list, mark: int) -> None:
    """Pop (environment-only) trail entries down to ``mark``."""
    while len(trail) > mark:
        del env[trail.pop()]


def _pure_conjuncts(pure: PureFormula) -> list[PureFormula]:
    """Flatten a pure formula into a list of conjuncts."""
    if isinstance(pure, TrueF):
        return []
    if isinstance(pure, And):
        result: list[PureFormula] = []
        for part in pure.parts:
            result.extend(_pure_conjuncts(part))
        return result
    return [pure]


def _try_eval(expr: Expr, env: dict[str, int]) -> int | None:
    """Evaluate an expression, returning ``None`` when a variable is unbound."""
    cls = expr.__class__
    if cls is Var:
        return env.get(expr.name)
    if cls is Nil:
        return 0
    if cls is IntConst:
        return expr.value
    try:
        return expr.eval(env)
    except EvaluationError:
        return None


def _as_bound(
    goal: PureFormula, env: dict[str, int], unknowns: set[str]
) -> tuple[str, int | None, int | None] | None:
    """Interpret an inequality as a lower/upper bound on a single unknown.

    Returns ``(name, lower, upper)`` with exactly one bound set, or ``None``
    when the constraint does not have that shape.
    """
    from repro.sl.exprs import Ge, Gt, Le, Lt  # local import to avoid cycle noise

    if not isinstance(goal, (Le, Lt, Ge, Gt)):
        return None
    left_value = _try_eval(goal.left, env)
    right_value = _try_eval(goal.right, env)
    strict = isinstance(goal, (Lt, Gt))
    lower_first = isinstance(goal, (Le, Lt))  # left <= right
    if (
        isinstance(goal.left, Var)
        and goal.left.name in unknowns
        and left_value is None
        and right_value is not None
    ):
        # u <= k  (upper bound)  or  u >= k (lower bound)
        if lower_first:
            return goal.left.name, None, right_value - 1 if strict else right_value
        return goal.left.name, right_value + 1 if strict else right_value, None
    if (
        isinstance(goal.right, Var)
        and goal.right.name in unknowns
        and right_value is None
        and left_value is not None
    ):
        # k <= u (lower bound)  or  k >= u (upper bound)
        if lower_first:
            return goal.right.name, left_value + 1 if strict else left_value, None
        return goal.right.name, None, left_value - 1 if strict else left_value
    return None


def _unify(
    expr: Expr, value: int, env: dict[str, int], unknowns: set[str], trail: list
) -> bool:
    """Unify an argument expression against an observed value (trail-bound)."""
    if expr.__class__ is Var:
        name = expr.name
        current = env.get(name)
        if current is not None:
            return current == value
        if name in unknowns:
            env[name] = value
            trail.append(name)
            return True
        return False
    current = _try_eval(expr, env)
    if current is not None:
        return current == value
    return False


def _unify_all(
    exprs: Sequence[Expr],
    values: Sequence[int],
    env: dict[str, int],
    unknowns: set[str],
    trail: list,
) -> bool:
    """Unify expressions against observed values, left to right.

    Bindings are recorded on ``trail``; on failure the caller is expected to
    undo to its own mark (partial bindings may remain on the trail).
    """
    for expr, value in zip(exprs, values):
        if not _unify(expr, value, env, unknowns, trail):
            return False
    return True
