"""Symbolic-heap model checking with residual heaps and instantiations.

This module implements Definition 2 of the paper::

    s, h  ||-  F   ~~>   h', iota

i.e. given a concrete stack-heap model ``(s, h)`` and a symbolic heap ``F``,
find a *residual* sub-heap ``h' <= h`` and an *instantiation* ``iota`` of
``F``'s existential variables such that ``s, h \\ h' |=_iota F``.

The paper encodes this problem into Z3 following Brotherston et al. (POPL
2016).  Z3 is not available in this offline environment, so the checker
solves the problem directly: because the model is concrete and finite,
satisfaction is decidable by a backtracking search that unfolds inductive
predicates, consumes heap cells for points-to atoms and binds existential
variables by unification against observed values.  Among all valid
reductions the checker returns one with a *minimal* residual heap (maximal
coverage), which matches the behaviour SLING relies on in its examples
(e.g. ``dll(x, u1, u2, tmp)`` covering the whole sub-heap of ``x``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.sl.errors import EvaluationError, UnknownPredicateError
from repro.sl.exprs import (
    And,
    Eq,
    Expr,
    Ne,
    Not,
    Or,
    PureFormula,
    TrueF,
    FalseF,
    Var,
)
from repro.sl.model import Heap, StackHeapModel
from repro.sl.predicates import PredicateRegistry
from repro.sl.spatial import Emp, PointsTo, PredApp, SepConj, Spatial, SymHeap


@dataclass(frozen=True)
class CheckResult:
    """The outcome of a successful reduction ``s,h ||- F ~~> h', iota``."""

    residual: Heap
    instantiation: dict[str, int]
    consumed: frozenset[int]

    def covers_everything(self) -> bool:
        """True when the formula modelled the entire heap (empty residual)."""
        return self.residual.is_empty()


@dataclass
class _SearchState:
    """Mutable bookkeeping shared across one top-level ``check`` call."""

    steps: int = 0
    solutions: int = 0
    max_depth: int = 0


class CheckBudgetExceeded(Exception):
    """Internal signal: the search exceeded its step budget."""


class ModelChecker:
    """Checks symbolic heaps against concrete stack-heap models.

    Parameters
    ----------
    registry:
        The inductive predicate definitions that formulas may refer to.
    max_steps:
        Upper bound on the number of search steps per ``check`` call; beyond
        it the best solution found so far is returned (or ``None``).
    max_solutions:
        Number of complete reductions to enumerate before settling on the
        best one found; keeps the search cheap on heavily ambiguous
        formulas.
    cache_size:
        Capacity of the built-in memo table.  Every ``check`` call is keyed
        on ``(canonical formula, model)`` -- the formula is alpha-renamed so
        candidates that differ only in the machine-generated names of their
        existentials share one entry -- and both successful and failed
        reductions are cached.  ``0`` disables memoization.
    """

    def __init__(
        self,
        registry: PredicateRegistry,
        max_steps: int = 50_000,
        max_solutions: int = 64,
        cache_size: int = 65_536,
    ):
        self.registry = registry
        self.max_steps = max_steps
        self.max_solutions = max_solutions
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, tuple | None] | None = (
            OrderedDict() if cache_size > 0 else None
        )
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ API --

    def check(self, model: StackHeapModel, formula: SymHeap) -> CheckResult | None:
        """Memoizing wrapper around the reduction of Definition 2.

        Results are looked up by the alpha-normalized formula and the model;
        on a hit the cached instantiation is rebound to the formula's actual
        existential names (cached entries are name-independent otherwise:
        residual and consumed sets only mention heap addresses).
        """
        if self._cache is None:
            return self._check_uncached(model, formula)
        # The shadow mask records which existentials collide with a stack
        # variable of this model: the search resolves such names against the
        # stack (a scoping quirk kept for compatibility), so alpha-variants
        # with different collisions are NOT equivalent and must not share an
        # entry.
        shadow = tuple(
            position
            for position, name in enumerate(formula.exists)
            if model.has_var(name)
        )
        key = (canonical_formula_key(formula), shadow, model)
        entry = self._cache.get(key, _CACHE_ABSENT)
        if entry is not _CACHE_ABSENT:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            if entry is None:
                return None
            residual, consumed, instantiation_items = entry
            return CheckResult(
                residual=residual,
                instantiation={
                    formula.exists[position]: value
                    for position, value in instantiation_items
                },
                consumed=consumed,
            )
        self.cache_misses += 1
        result = self._check_uncached(model, formula)
        if result is None:
            self._cache[key] = None
        else:
            self._cache[key] = (
                result.residual,
                result.consumed,
                tuple(
                    (formula.exists.index(name), value)
                    for name, value in result.instantiation.items()
                ),
            )
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return result

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current size of the memo table."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache) if self._cache is not None else 0,
            "capacity": self.cache_size,
        }

    def clear_cache(self) -> None:
        """Drop all memoized reductions and reset the counters."""
        if self._cache is not None:
            self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _check_uncached(self, model: StackHeapModel, formula: SymHeap) -> CheckResult | None:
        """Run the reduction of Definition 2; ``None`` when no reduction exists."""
        stack_env = dict(model.stack)
        unknowns = set(formula.exists)
        # Free variables of the formula must be interpretable by the stack.
        for name in formula.free_vars():
            if name not in stack_env:
                return None

        goals = list(formula.spatial_atoms()) + list(_pure_conjuncts(formula.pure))
        state = _SearchState(max_depth=3 * len(model.heap) + 3 * len(goals) + 30)
        best: CheckResult | None = None
        try:
            for env, available in self._solve(goals, stack_env, unknowns, model.heap.domain(), model, state, 0):
                consumed = model.heap.domain() - available
                instantiation = {
                    name: env[name] for name in formula.exists if name in env
                }
                result = CheckResult(
                    residual=model.heap.restrict(available),
                    instantiation=instantiation,
                    consumed=frozenset(consumed),
                )
                if best is None or len(result.consumed) > len(best.consumed):
                    best = result
                state.solutions += 1
                if result.covers_everything() or state.solutions >= self.max_solutions:
                    break
        except CheckBudgetExceeded:
            pass
        return best

    def check_all(
        self, models: Sequence[StackHeapModel], formula: SymHeap
    ) -> list[CheckResult] | None:
        """Check a formula against every model; ``None`` unless all succeed."""
        results = []
        for model in models:
            result = self.check(model, formula)
            if result is None:
                return None
            results.append(result)
        return results

    def satisfies(self, model: StackHeapModel, formula: SymHeap) -> bool:
        """Exact satisfaction ``s,h |= F`` (the residual heap must be empty)."""
        result = self.check(model, formula)
        return result is not None and result.covers_everything()

    # ------------------------------------------------------------ search core --

    def _solve(
        self,
        goals: list[object],
        env: dict[str, int],
        unknowns: set[str],
        available: frozenset[int],
        model: StackHeapModel,
        state: _SearchState,
        depth: int,
    ) -> Iterator[tuple[dict[str, int], frozenset[int]]]:
        """Yield (environment, remaining addresses) pairs satisfying all goals."""
        state.steps += 1
        if state.steps > self.max_steps:
            raise CheckBudgetExceeded
        if depth > state.max_depth:
            return

        # First discharge all pure goals that are currently decidable; they
        # never branch, so doing them eagerly prunes the search.
        goals = list(goals)
        progress = True
        while progress:
            progress = False
            for index, goal in enumerate(goals):
                if isinstance(goal, PureFormula):
                    outcome = self._step_pure(goal, env, unknowns)
                    if outcome is _FAIL:
                        return
                    if outcome is _DEFER:
                        continue
                    env = outcome
                    goals.pop(index)
                    progress = True
                    break

        spatial_goals = [goal for goal in goals if isinstance(goal, Spatial)]
        if not spatial_goals:
            # Only deferred pure goals remain: constraints over existential
            # variables that the heap never pinned down (e.g. the outer bounds
            # of a bst or the lower bound of a sorted-list segment).  Try to
            # discharge them with a lightweight bound analysis.
            final_env = self._discharge_deferred(
                [goal for goal in goals if isinstance(goal, PureFormula)], env, unknowns
            )
            if final_env is None:
                return
            yield final_env, available
            return

        goal = self._pick_spatial(spatial_goals, env)
        rest = list(goals)
        rest.remove(goal)

        if isinstance(goal, Emp):
            yield from self._solve(rest, env, unknowns, available, model, state, depth)
        elif isinstance(goal, PointsTo):
            yield from self._solve_points_to(goal, rest, env, unknowns, available, model, state, depth)
        elif isinstance(goal, PredApp):
            yield from self._solve_pred(goal, rest, env, unknowns, available, model, state, depth)
        elif isinstance(goal, SepConj):
            expanded = list(goal.atoms()) + rest
            yield from self._solve(expanded, env, unknowns, available, model, state, depth)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected spatial goal {goal!r}")

    def _pick_spatial(self, goals: list[Spatial], env: dict[str, int]) -> Spatial:
        """Prefer atoms whose anchor address is already known (less branching)."""
        for goal in goals:
            if isinstance(goal, PointsTo) and _try_eval(goal.source, env) is not None:
                return goal
        for goal in goals:
            if isinstance(goal, PredApp) and goal.args and _try_eval(goal.args[0], env) is not None:
                return goal
        return goals[0]

    # -- points-to ---------------------------------------------------------------

    def _solve_points_to(
        self,
        goal: PointsTo,
        rest: list[object],
        env: dict[str, int],
        unknowns: set[str],
        available: frozenset[int],
        model: StackHeapModel,
        state: _SearchState,
        depth: int,
    ) -> Iterator[tuple[dict[str, int], frozenset[int]]]:
        source_value = _try_eval(goal.source, env)
        if source_value is not None:
            candidates: list[int] = [source_value] if source_value in available else []
        elif isinstance(goal.source, Var) and goal.source.name in unknowns:
            candidates = sorted(available)
        else:
            candidates = []

        for addr in candidates:
            if addr not in available:
                continue
            cell = model.heap.get(addr)
            if cell is None or cell.type_name != goal.type_name:
                continue
            if len(cell.values) != len(goal.args):
                continue
            env_after = dict(env)
            if source_value is None:
                env_after[goal.source.name] = addr  # type: ignore[union-attr]
            bound = _unify_all(goal.args, cell.values, env_after, unknowns)
            if bound is None:
                continue
            yield from self._solve(
                rest, bound, unknowns, available - {addr}, model, state, depth
            )

    # -- inductive predicates ------------------------------------------------------

    def _solve_pred(
        self,
        goal: PredApp,
        rest: list[object],
        env: dict[str, int],
        unknowns: set[str],
        available: frozenset[int],
        model: StackHeapModel,
        state: _SearchState,
        depth: int,
    ) -> Iterator[tuple[dict[str, int], frozenset[int]]]:
        try:
            definition = self.registry.get(goal.name)
        except UnknownPredicateError:
            return
        if len(goal.args) != definition.arity:
            return

        # Unfolding depth is bounded by ``state.max_depth`` (set from the heap
        # size): every well-formed recursive case consumes at least one cell
        # before recursing, so deeper unfoldings cannot succeed and are pruned
        # in ``_solve``.
        for case_index in range(len(definition.cases)):
            body = definition.instantiate_case(case_index, goal.args)
            case_unknowns = unknowns | set(body.exists)
            case_goals = (
                list(body.spatial_atoms())
                + list(_pure_conjuncts(body.pure))
                + rest
            )
            yield from self._solve(
                case_goals, dict(env), case_unknowns, available, model, state, depth + 1
            )

    def _discharge_deferred(
        self, goals: list[PureFormula], env: dict[str, int], unknowns: set[str]
    ) -> dict[str, int] | None:
        """Resolve pure constraints left undecided by the spatial search.

        Each remaining constraint involves at least one unbound existential
        variable.  We run a small fixpoint: equalities with one known side
        bind the unknown; inequalities contribute lower/upper bounds for the
        unknowns, which are checked for feasibility and then used to pick a
        witness value.  Constraints that still involve two or more unbound
        variables afterwards are accepted optimistically (they are trivially
        satisfiable in isolation for the predicate shapes we support).
        """
        env = dict(env)
        pending = list(goals)
        changed = True
        while changed:
            changed = False
            remaining: list[PureFormula] = []
            for goal in pending:
                outcome = self._step_pure(goal, env, unknowns)
                if outcome is _FAIL:
                    return None
                if outcome is _DEFER:
                    remaining.append(goal)
                    continue
                env = outcome
                changed = True
            pending = remaining
            if changed:
                continue
            # No equality progress: derive bounds for unknowns from
            # inequalities whose other side is known.
            bounds: dict[str, tuple[int | None, int | None]] = {}
            for goal in pending:
                constraint = _as_bound(goal, env, unknowns)
                if constraint is None:
                    continue
                name, lower, upper = constraint
                current_lower, current_upper = bounds.get(name, (None, None))
                if lower is not None:
                    current_lower = lower if current_lower is None else max(current_lower, lower)
                if upper is not None:
                    current_upper = upper if current_upper is None else min(current_upper, upper)
                bounds[name] = (current_lower, current_upper)
            for name, (lower, upper) in bounds.items():
                if lower is not None and upper is not None and lower > upper:
                    return None
                if lower is not None:
                    env[name] = lower
                elif upper is not None:
                    env[name] = upper
                changed = True
            if not bounds:
                break
        # Whatever is left involves several unbound variables; accept.
        return env

    # -- pure goals -----------------------------------------------------------------

    def _step_pure(
        self, goal: PureFormula, env: dict[str, int], unknowns: set[str]
    ) -> dict[str, int] | object:
        """Try to discharge a pure goal.

        Returns an (possibly extended) environment on success, ``_FAIL`` when
        the goal is definitely violated and ``_DEFER`` when it cannot be
        decided yet because of unbound existential variables.
        """
        if isinstance(goal, TrueF):
            return env
        if isinstance(goal, FalseF):
            return _FAIL
        if isinstance(goal, And):
            current = env
            for part in goal.parts:
                outcome = self._step_pure(part, current, unknowns)
                if outcome is _FAIL or outcome is _DEFER:
                    return outcome
                current = outcome
            return current
        if isinstance(goal, Or):
            deferred = False
            for part in goal.parts:
                outcome = self._step_pure(part, dict(env), unknowns)
                if outcome is _DEFER:
                    deferred = True
                elif outcome is not _FAIL:
                    return outcome
            return _DEFER if deferred else _FAIL
        if isinstance(goal, Not):
            inner = self._step_pure(goal.operand, dict(env), unknowns)
            if inner is _DEFER:
                return _DEFER
            if inner is _FAIL:
                return env
            return _FAIL
        if isinstance(goal, Eq):
            left = _try_eval(goal.left, env)
            right = _try_eval(goal.right, env)
            if left is not None and right is not None:
                return env if left == right else _FAIL
            if left is not None and isinstance(goal.right, Var) and goal.right.name in unknowns:
                extended = dict(env)
                extended[goal.right.name] = left
                return extended
            if right is not None and isinstance(goal.left, Var) and goal.left.name in unknowns:
                extended = dict(env)
                extended[goal.left.name] = right
                return extended
            return _DEFER
        # Remaining binary relations (Ne, Lt, Le, Gt, Ge): decidable only when
        # both sides evaluate.
        try:
            return env if goal.eval(env) else _FAIL
        except EvaluationError:
            return _DEFER


# Sentinels used by ``_step_pure``.
_FAIL = object()
_DEFER = object()

# Sentinel distinguishing "cached None" from "not cached" in the memo table.
_CACHE_ABSENT = object()


def canonical_formula_key(formula: SymHeap) -> str:
    """Render a formula with its existentials alpha-renamed positionally.

    Candidate formulae are generated with globally fresh existential names
    (``u17``, ``u18``, ...), so the same logical candidate re-checked later
    in the search never reuses a name.  Renaming the bound variables to
    ``?e0, ?e1, ...`` (by position -- ``?`` cannot appear in parsed names)
    makes alpha-equivalent candidates collide in the memo table, and the
    positional scheme lets cached instantiations be rebound to the actual
    names of the formula being checked.
    """
    from repro.sl.pretty import pretty

    if not formula.exists:
        return pretty(formula)
    renaming: dict[str, Expr] = {
        name: Var(f"?e{position}") for position, name in enumerate(formula.exists)
    }
    return pretty(
        SymHeap(
            tuple(f"?e{position}" for position in range(len(formula.exists))),
            formula.spatial.substitute(renaming),
            formula.pure.substitute(renaming),
        )
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _pure_conjuncts(pure: PureFormula) -> list[PureFormula]:
    """Flatten a pure formula into a list of conjuncts."""
    if isinstance(pure, TrueF):
        return []
    if isinstance(pure, And):
        result: list[PureFormula] = []
        for part in pure.parts:
            result.extend(_pure_conjuncts(part))
        return result
    return [pure]


def _try_eval(expr: Expr, env: dict[str, int]) -> int | None:
    """Evaluate an expression, returning ``None`` when a variable is unbound."""
    try:
        return expr.eval(env)
    except EvaluationError:
        return None


def _as_bound(
    goal: PureFormula, env: dict[str, int], unknowns: set[str]
) -> tuple[str, int | None, int | None] | None:
    """Interpret an inequality as a lower/upper bound on a single unknown.

    Returns ``(name, lower, upper)`` with exactly one bound set, or ``None``
    when the constraint does not have that shape.
    """
    from repro.sl.exprs import Ge, Gt, Le, Lt  # local import to avoid cycle noise

    if not isinstance(goal, (Le, Lt, Ge, Gt)):
        return None
    left_value = _try_eval(goal.left, env)
    right_value = _try_eval(goal.right, env)
    strict = isinstance(goal, (Lt, Gt))
    lower_first = isinstance(goal, (Le, Lt))  # left <= right
    if (
        isinstance(goal.left, Var)
        and goal.left.name in unknowns
        and left_value is None
        and right_value is not None
    ):
        # u <= k  (upper bound)  or  u >= k (lower bound)
        if lower_first:
            return goal.left.name, None, right_value - 1 if strict else right_value
        return goal.left.name, right_value + 1 if strict else right_value, None
    if (
        isinstance(goal.right, Var)
        and goal.right.name in unknowns
        and right_value is None
        and left_value is not None
    ):
        # k <= u (lower bound)  or  k >= u (upper bound)
        if lower_first:
            return goal.right.name, left_value + 1 if strict else left_value, None
        return goal.right.name, None, left_value - 1 if strict else left_value
    return None


def _unify(expr: Expr, value: int, env: dict[str, int], unknowns: set[str]) -> dict[str, int] | None:
    """Unify an argument expression against an observed value."""
    current = _try_eval(expr, env)
    if current is not None:
        return env if current == value else None
    if isinstance(expr, Var) and expr.name in unknowns:
        extended = dict(env)
        extended[expr.name] = value
        return extended
    return None


def _unify_all(
    exprs: Sequence[Expr],
    values: Sequence[int],
    env: dict[str, int],
    unknowns: set[str],
) -> dict[str, int] | None:
    """Unify a sequence of expressions against observed values, left to right."""
    current: dict[str, int] | None = env
    for expr, value in zip(exprs, values):
        if current is None:
            return None
        current = _unify(expr, value, current, unknowns)
    return current
