"""Fail-fast candidate screening: per-case metadata and per-model facts.

Algorithm 2 spends nearly all of its time proving candidates *wrong*: most
argument permutations handed to the model checker are refuted after a full
backtracking search.  This module makes refutation cheap in two places:

* :func:`case_screens` compiles each case of an inductive predicate into a
  :class:`CaseScreen` -- the syntactic facts a case imposes on its
  *parameters* (equalities with other parameters or ``nil``, points-to
  sources that must be allocated with a matching structure type, field
  values that must agree with parameter values, recursive calls).  The
  checker consults the screen before instantiating a case, and the
  candidate pre-filter consults it before calling the checker at all.

* :class:`ModelFacts` precomputes, once per heap split, the per-model data
  the screens are evaluated against: the sub-heap's domain, its
  boundary-value footprint (addresses, field values and ``nil``), its heap
  type histogram and the root-reachable address set.

Soundness contract: :func:`case_feasible` may return ``True`` for a case
that ultimately fails, but it returns ``False`` only when *no* reduction
through that case can exist -- every screened fact corresponds exactly to a
requirement the backtracking search would enforce (an equality conjunct, a
points-to match, a callee unfolding).  Screening therefore never changes
any result; it only skips work whose outcome is already known.

This refines the boundary-footprint rule (a candidate whose non-fresh
arguments cannot inhabit the sub-heap footprint is refuted without search)
into a per-case feasibility check, which additionally remains sound for
candidates that a base case can satisfy vacuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.sl.errors import UnknownPredicateError
from repro.sl.exprs import And, Eq, IntConst, Ne, Nil, PureFormula, TrueF, Var
from repro.sl.model import StackHeapModel
from repro.sl.spatial import PointsTo, PredApp, SymHeap


# ---------------------------------------------------------------------------
# Screening statistics
# ---------------------------------------------------------------------------


@dataclass
class ScreeningStats:
    """Counters of the screening / fail-fast layer, owned by a checker.

    ``candidates_generated`` counts Algorithm 2 candidates surviving the
    type and signature filters; ``candidates_prefiltered`` those rejected by
    the semantic pre-filter without a checker call; ``candidates_checked``
    those actually handed to ``check_all``.  ``refuted_by_first_model``
    counts ``check_all`` calls settled by the very first model tried (the
    learned-refuter / smallest-heap heuristic working as intended);
    ``pruned_cases`` counts predicate-case unfoldings skipped inside the
    search; ``max_trail_depth`` is the deepest binding trail observed.
    """

    candidates_generated: int = 0
    candidates_prefiltered: int = 0
    candidates_checked: int = 0
    refuted_by_first_model: int = 0
    pruned_cases: int = 0
    max_trail_depth: int = 0
    #: Skeleton-batching counters (see ``ModelChecker.check_batch``):
    #: candidate groups formed by the candidate loop, skeleton searches
    #: actually run, stream-memo reuses, per-(variant, entry) evaluations of
    #: compiled pure deltas, and batched variants that needed the exact
    #: per-candidate fallback.
    candidate_groups: int = 0
    skeletons_solved: int = 0
    env_stream_reuses: int = 0
    pure_variant_evals: int = 0
    batch_exact_fallbacks: int = 0
    #: Stream-memo hits that only canonical keying made possible: the
    #: consuming model's concrete (root value, heap) differs from the one
    #: the stream was generated from (see ``ModelChecker._get_stream``).
    canonical_stream_hits: int = 0
    #: Exact-search selections that were enumeration-order dependent (tied
    #: best reductions, solution-cap truncation, budget expiry).  The
    #: isomorphism-dedup layer snapshots this around each location: such
    #: selections must not be replayed onto address-renamed models.
    exact_selection_ambiguities: int = 0
    #: Columnar-kernel counters (see :mod:`repro.sl.kernels`): group-kernel
    #: invocations (one per candidate group x model), variants resolved by
    #: posting-list intersection over the stream's slot indexes, and
    #: pin-free variants that kept the full entry scan as their fallback.
    kernel_groups: int = 0
    stream_index_hits: int = 0
    kernel_scan_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "candidates_generated": self.candidates_generated,
            "candidates_prefiltered": self.candidates_prefiltered,
            "candidates_checked": self.candidates_checked,
            "refuted_by_first_model": self.refuted_by_first_model,
            "pruned_cases": self.pruned_cases,
            "max_trail_depth": self.max_trail_depth,
            "candidate_groups": self.candidate_groups,
            "skeletons_solved": self.skeletons_solved,
            "env_stream_reuses": self.env_stream_reuses,
            "pure_variant_evals": self.pure_variant_evals,
            "batch_exact_fallbacks": self.batch_exact_fallbacks,
            "canonical_stream_hits": self.canonical_stream_hits,
            "exact_selection_ambiguities": self.exact_selection_ambiguities,
            "kernel_groups": self.kernel_groups,
            "stream_index_hits": self.stream_index_hits,
            "kernel_scan_fallbacks": self.kernel_scan_fallbacks,
        }


# ---------------------------------------------------------------------------
# Per-case metadata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PtScreen:
    """One points-to atom of a case whose source is a formal parameter."""

    src: int  # parameter position of the source
    type_name: str
    nfields: int
    #: (field position, parameter position) pairs: the cell's field must
    #: equal the argument at that parameter position (when known).
    field_params: tuple[tuple[int, int], ...]
    #: Field positions that must hold ``nil``.
    field_nil: tuple[int, ...]
    #: (field position, constant) pairs the cell must match.
    field_ints: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class CaseScreen:
    """Parameter-level requirements of one case of an inductive predicate."""

    #: Pairs of parameter positions that must be equal.
    eq_pp: tuple[tuple[int, int], ...]
    #: Parameter positions that must equal ``nil``.
    eq_nil: tuple[int, ...]
    #: (parameter position, constant) equalities.
    eq_int: tuple[tuple[int, int], ...]
    #: Pairs of parameter positions that must differ.
    ne_pp: tuple[tuple[int, int], ...]
    #: Parameter positions that must not equal ``nil``.
    ne_nil: tuple[int, ...]
    #: Points-to atoms anchored at parameters.
    pts: tuple[PtScreen, ...]
    #: Recursive calls: (predicate name, argument map).  Each map entry is
    #: ``("p", i)`` for parameter ``i``, ``("nil",)``, ``("int", k)`` or
    #: ``None`` for case-local existentials / compound arguments.
    calls: tuple[tuple[str, tuple[object, ...]], ...] = ()
    #: Total number of points-to atoms in the case body, including ones
    #: anchored at case-local existentials.  A case with ``pt_total > 0``
    #: consumes at least one cell whenever it is taken.
    pt_total: int = 0


def build_case_screens(params: Sequence[str], cases: Sequence[SymHeap]) -> tuple[CaseScreen, ...]:
    """Compile every case body of a predicate into a :class:`CaseScreen`."""
    index_of = {name: position for position, name in enumerate(params)}
    return tuple(_build_one(index_of, body) for body in cases)


def _build_one(index_of: Mapping[str, int], body: SymHeap) -> CaseScreen:
    bound = set(body.exists)

    def param(expr) -> int | None:
        if type(expr) is Var and expr.name not in bound:
            return index_of.get(expr.name)
        return None

    eq_pp: list[tuple[int, int]] = []
    eq_nil: list[int] = []
    eq_int: list[tuple[int, int]] = []
    ne_pp: list[tuple[int, int]] = []
    ne_nil: list[int] = []
    for conjunct in _conjuncts(body.pure):
        if isinstance(conjunct, (Eq, Ne)):
            left, right = param(conjunct.left), param(conjunct.right)
            pairs = eq_pp if isinstance(conjunct, Eq) else ne_pp
            nils = eq_nil if isinstance(conjunct, Eq) else ne_nil
            if left is not None and right is not None:
                pairs.append((left, right))
            elif left is not None:
                other = conjunct.right
                if isinstance(other, Nil):
                    nils.append(left)
                elif isinstance(other, IntConst) and isinstance(conjunct, Eq):
                    eq_int.append((left, other.value))
            elif right is not None:
                other = conjunct.left
                if isinstance(other, Nil):
                    nils.append(right)
                elif isinstance(other, IntConst) and isinstance(conjunct, Eq):
                    eq_int.append((right, other.value))

    pts: list[PtScreen] = []
    calls: list[tuple[str, tuple[object, ...]]] = []
    pt_total = 0
    for atom in body.spatial_atoms():
        if isinstance(atom, PointsTo):
            pt_total += 1
            src = param(atom.source)
            if src is None:
                continue
            field_params: list[tuple[int, int]] = []
            field_nil: list[int] = []
            field_ints: list[tuple[int, int]] = []
            for position, arg in enumerate(atom.args):
                arg_param = param(arg)
                if arg_param is not None:
                    field_params.append((position, arg_param))
                elif isinstance(arg, Nil):
                    field_nil.append(position)
                elif isinstance(arg, IntConst):
                    field_ints.append((position, arg.value))
            pts.append(
                PtScreen(
                    src=src,
                    type_name=atom.type_name,
                    nfields=len(atom.args),
                    field_params=tuple(field_params),
                    field_nil=tuple(field_nil),
                    field_ints=tuple(field_ints),
                )
            )
        elif isinstance(atom, PredApp):
            argmap: list[object] = []
            for arg in atom.args:
                arg_param = param(arg)
                if arg_param is not None:
                    argmap.append(("p", arg_param))
                elif isinstance(arg, Nil):
                    argmap.append(("nil",))
                elif isinstance(arg, IntConst):
                    argmap.append(("int", arg.value))
                else:
                    argmap.append(None)
            calls.append((atom.name, tuple(argmap)))

    return CaseScreen(
        eq_pp=tuple(eq_pp),
        eq_nil=tuple(eq_nil),
        eq_int=tuple(eq_int),
        ne_pp=tuple(ne_pp),
        ne_nil=tuple(ne_nil),
        pts=tuple(pts),
        calls=tuple(calls),
        pt_total=pt_total,
    )


def _conjuncts(pure: PureFormula) -> list[PureFormula]:
    """Top-level conjuncts of a pure formula (``Or``/``Not`` are opaque)."""
    if isinstance(pure, TrueF):
        return []
    if isinstance(pure, And):
        result: list[PureFormula] = []
        for part in pure.parts:
            result.extend(_conjuncts(part))
        return result
    return [pure]


# ---------------------------------------------------------------------------
# Feasibility
# ---------------------------------------------------------------------------


def case_feasible(
    screen: CaseScreen,
    values: Sequence[int | None],
    heap_get,
    available,
    registry=None,
    depth: int = 0,
) -> bool:
    """Can this case possibly reduce, given the known argument values?

    ``values`` holds one concrete value per parameter, ``None`` when the
    argument is an unconstrained existential.  ``heap_get`` maps an address
    to its cell (or ``None``); ``available`` is the set of consumable
    addresses.  With ``depth > 0`` and a predicate ``registry``, recursive
    calls are screened one level deep as well (unknown values propagate as
    ``None``, which keeps the check conservative).

    Returns ``False`` only when the backtracking search is guaranteed to
    refute every unfolding of the case.
    """
    for left, right in screen.eq_pp:
        left_value, right_value = values[left], values[right]
        if left_value is not None and right_value is not None and left_value != right_value:
            return False
    for position in screen.eq_nil:
        value = values[position]
        if value is not None and value != 0:
            return False
    for position, constant in screen.eq_int:
        value = values[position]
        if value is not None and value != constant:
            return False
    for left, right in screen.ne_pp:
        left_value, right_value = values[left], values[right]
        if left_value is not None and right_value is not None and left_value == right_value:
            return False
    for position in screen.ne_nil:
        if values[position] == 0:
            return False

    first_consumed: int | None = None
    consumed: set[int] | None = None
    for pt in screen.pts:
        value = values[pt.src]
        if value is None:
            continue
        if value not in available:
            return False
        # Separation: two screened points-to atoms cannot share an address.
        if first_consumed is None:
            first_consumed = value
        elif consumed is None:
            if value == first_consumed:
                return False
            consumed = {first_consumed, value}
        elif value in consumed:
            return False
        else:
            consumed.add(value)
        cell = heap_get(value)
        if cell is None or cell.type_name != pt.type_name:
            return False
        cell_values = cell.values
        if len(cell_values) != pt.nfields:
            return False
        for position, parameter in pt.field_params:
            known = values[parameter]
            if known is not None and cell_values[position] != known:
                return False
        for position in pt.field_nil:
            if cell_values[position] != 0:
                return False
        for position, constant in pt.field_ints:
            if cell_values[position] != constant:
                return False

    if depth > 0 and registry is not None:
        for name, argmap in screen.calls:
            try:
                callee = registry.get(name)
            except UnknownPredicateError:
                return False
            if len(argmap) != callee.arity:
                return False
            callee_values = _mapped_values(values, argmap)
            callee_screens = callee.case_screens()
            if not any(
                case_feasible(sub, callee_values, heap_get, available, registry, depth - 1)
                for sub in callee_screens
            ):
                return False
    return True


# ---------------------------------------------------------------------------
# Per-model facts
# ---------------------------------------------------------------------------


class ModelFacts:
    """Cheap semantic facts about one sub-model, computed once per split.

    The pre-filter itself reads only ``stack``, ``dom`` and ``heap_get``;
    the richer facts (value footprint, type histogram, root-reachable set)
    are derived lazily on first access, so constructing facts for a split
    costs one ``domain()`` call and nothing else.
    """

    __slots__ = (
        "model",
        "stack",
        "dom",
        "heap_get",
        "_root",
        "_footprint",
        "_type_histogram",
        "_root_reachable",
    )

    def __init__(self, model: StackHeapModel, root: str | None = None):
        heap = model.heap
        self.model = model
        self.stack = model.stack_map
        self.dom = heap.domain()
        self.heap_get = heap.get
        self._root = root
        self._footprint: frozenset[int] | None = None
        self._type_histogram: dict[str, int] | None = None
        self._root_reachable: frozenset[int] | None = None

    @property
    def footprint(self) -> frozenset[int]:
        """Addresses, field values and ``nil`` observable in the sub-heap."""
        if self._footprint is None:
            values: set[int] = {0}
            values.update(self.dom)
            for _, cell in self.model.heap.items():
                values.update(cell.values)
            self._footprint = frozenset(values)
        return self._footprint

    @property
    def type_histogram(self) -> dict[str, int]:
        """Cell counts per structure type."""
        if self._type_histogram is None:
            histogram: dict[str, int] = {}
            for _, cell in self.model.heap.items():
                histogram[cell.type_name] = histogram.get(cell.type_name, 0) + 1
            self._type_histogram = histogram
        return self._type_histogram

    @property
    def root_reachable(self) -> frozenset[int]:
        """Addresses reachable from the split's root variable."""
        if self._root_reachable is None:
            root = self._root
            if root is not None and root in self.stack:
                self._root_reachable = self.model.heap.reachable_from([self.stack[root]])
            else:
                self._root_reachable = self.dom
        return self._root_reachable

    def argument_values(
        self, names: Sequence[str], fresh: frozenset[str] | set[str]
    ) -> tuple[int | None, ...] | None:
        """Concrete values of a candidate's arguments in this model.

        Fresh existentials map to ``None`` (unconstrained); ``nil`` maps to
        ``0``.  Returns ``None`` when a non-fresh argument is not bound by
        the stack at all -- the checker rejects such candidates outright
        (their free variables are uninterpretable), so the caller can refute
        without a search.
        """
        values: list[int | None] = []
        stack = self.stack
        for name in names:
            if name in fresh:
                values.append(None)
            elif name == "nil":
                values.append(0)
            else:
                value = stack.get(name)
                if value is None:
                    return None
                values.append(value)
        return tuple(values)


def case_may_consume(
    screen: CaseScreen,
    values: Sequence[int | None],
    heap_get,
    available,
    registry,
    depth: int = 0,
) -> bool:
    """Can this case's reduction consume at least one heap cell?

    Conservative in the safe direction: ``False`` only when every reduction
    through the case is provably empty (or impossible).  A case containing
    any points-to atom consumes whenever it is taken; otherwise consumption
    can only come from a recursive call, screened ``depth`` levels deep.
    """
    if not case_feasible(screen, values, heap_get, available, registry, depth):
        return False
    if screen.pt_total > 0:
        return True
    for name, argmap in screen.calls:
        try:
            callee = registry.get(name)
        except UnknownPredicateError:
            continue
        if len(argmap) != callee.arity:
            continue
        if depth <= 0:
            # Out of screening budget: assume the callee can consume unless
            # its definition provably never allocates anything.
            if any(
                sub.pt_total > 0 or sub.calls for sub in callee.case_screens()
            ):
                return True
            continue
        callee_values = _mapped_values(values, argmap)
        if any(
            case_may_consume(sub, callee_values, heap_get, available, registry, depth - 1)
            for sub in callee.case_screens()
        ):
            return True
    return False


def _mapped_values(
    values: Sequence[int | None], argmap: Sequence[object]
) -> tuple[int | None, ...]:
    """Translate caller argument values through a call's argument map."""
    return tuple(
        values[entry[1]]
        if entry is not None and entry[0] == "p"
        else 0
        if entry is not None and entry[0] == "nil"
        else entry[1]
        if entry is not None and entry[0] == "int"
        else None
        for entry in argmap
    )


def candidate_refuted(
    predicate,
    arg_names: Sequence[str],
    fresh: frozenset[str] | set[str],
    facts_list: Sequence[ModelFacts],
    registry,
    depth: int = 1,
    drop_vacuous: bool = True,
) -> bool:
    """The semantic pre-filter of Algorithm 2's candidate loop.

    A candidate ``p(arg_names)`` is skipped without any checker call when
    one of two sound conditions holds:

    * some model rules out *every* case of ``p`` -- ``check_all`` would
      refute the candidate there;
    * (with ``drop_vacuous``) *no* model admits a case that can consume a
      cell -- then every possible outcome of ``check_all`` is either a
      refutation or an all-vacuous reduction, and the candidate loop drops
      both.

    Never refutes a candidate that would have produced a kept result.
    """
    screens = predicate.case_screens()
    may_consume_somewhere = False
    for facts in facts_list:
        values = facts.argument_values(arg_names, fresh)
        if values is None:
            return True
        heap_get = facts.heap_get
        dom = facts.dom
        feasible = False
        for screen in screens:
            if case_feasible(screen, values, heap_get, dom, registry, depth):
                feasible = True
                break
        if not feasible:
            return True
        if drop_vacuous and not may_consume_somewhere:
            may_consume_somewhere = any(
                case_may_consume(screen, values, heap_get, dom, registry, depth)
                for screen in screens
            )
    if drop_vacuous and not may_consume_somewhere:
        return True
    return False


def screen_candidates(
    predicate,
    candidates,
    facts_list: Sequence[ModelFacts],
    registry,
    drop_vacuous: bool = True,
    stats: ScreeningStats | None = None,
):
    """Screen one predicate's enumerated candidates in bulk.

    ``candidates`` are ``(permutation, fresh name set)`` records in
    enumeration order; the survivors are returned in the same order, ready
    to be grouped by spatial skeleton and batch-checked.  The per-candidate
    decision is exactly :func:`candidate_refuted` (the pre-filter stays a
    pure optimisation); hoisting the loop here lets the per-model facts,
    case screens and registry lookups live in one place for a whole group
    instead of being re-threaded per candidate.
    """
    survivors = []
    screened = 0
    for candidate in candidates:
        if candidate_refuted(
            predicate,
            candidate.permutation,
            candidate.fresh,
            facts_list,
            registry,
            drop_vacuous=drop_vacuous,
        ):
            screened += 1
            continue
        survivors.append(candidate)
    if stats is not None:
        stats.candidates_prefiltered += screened
    return survivors


def formula_shape(formula: SymHeap) -> tuple:
    """Coarse shape of a formula: atom kinds, names/types and arities.

    Used to index the learned-refuter table: candidates with the same shape
    (e.g. every ``dll`` application with four arguments) tend to be refuted
    by the same model, so ``check_all`` tries that model first.
    """
    shape = []
    for atom in formula.spatial_atoms():
        if isinstance(atom, PredApp):
            shape.append(("app", atom.name, len(atom.args)))
        elif isinstance(atom, PointsTo):
            shape.append(("pt", atom.type_name, len(atom.args)))
        else:
            shape.append(("other", type(atom).__name__, 0))
    return tuple(shape)
