r"""Spatial formulae and symbolic heaps of the symbolic-heap SL fragment.

This module implements the ``Sigma`` (spatial formulae) and ``F`` (SL
formulae) productions of Figure 4.  The canonical formula shape used
throughout the reproduction is :class:`SymHeap`::

    F  =  exists u1 ... um .  Sigma  /\  Pi

with ``Sigma`` a ``*``-separated list of spatial atoms (``emp``, points-to
predicates and inductive-predicate applications) and ``Pi`` a conjunction of
pure formulae.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.sl.exprs import Expr, PureFormula, TrueF, Var, conjoin

_FRESH_COUNTER = itertools.count(1)

#: Shared empty renaming for structural keys of closed formulae.
_EMPTY_REN: dict[str, str] = {}


def fresh_var(prefix: str = "_v") -> str:
    """Return a globally fresh variable name with the given prefix."""
    return f"{prefix}{next(_FRESH_COUNTER)}"


def fresh_vars(count: int, prefix: str = "_v") -> list[str]:
    """Return ``count`` globally fresh variable names."""
    return [fresh_var(prefix) for _ in range(count)]


# ---------------------------------------------------------------------------
# Spatial atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Spatial:
    """Base class of spatial formulae."""

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, subst: Mapping[str, Expr]) -> "Spatial":
        raise NotImplementedError

    def skey(self, ren: Mapping[str, str]) -> object:
        """Structural key of the formula (see :meth:`repro.sl.exprs.Expr.skey`)."""
        raise NotImplementedError

    def atoms(self) -> tuple["Spatial", ...]:
        """Flatten the formula into its list of ``*``-separated atoms."""
        return (self,)


@dataclass(frozen=True)
class Emp(Spatial):
    """The empty-heap predicate ``emp``."""

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, subst: Mapping[str, Expr]) -> Spatial:
        return self

    def skey(self, ren: Mapping[str, str]) -> object:
        return _EMP_KEY

    def atoms(self) -> tuple[Spatial, ...]:
        return ()


_EMP_KEY = ("emp",)


@dataclass(frozen=True)
class PointsTo(Spatial):
    """Singleton heap predicate ``x ->_tau t1, ..., tn``.

    ``source`` is the address expression, ``type_name`` the name of the
    ``n``-field structure type ``tau`` and ``args`` the field values in
    declaration order.
    """

    source: Expr
    type_name: str
    args: tuple[Expr, ...]

    def __init__(self, source: Expr, type_name: str, args: Iterable[Expr]):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "type_name", type_name)
        object.__setattr__(self, "args", tuple(args))

    def free_vars(self) -> frozenset[str]:
        result = self.source.free_vars()
        for arg in self.args:
            result |= arg.free_vars()
        return result

    def substitute(self, subst: Mapping[str, Expr]) -> Spatial:
        return PointsTo(
            self.source.substitute(subst),
            self.type_name,
            tuple(arg.substitute(subst) for arg in self.args),
        )

    def skey(self, ren: Mapping[str, str]) -> object:
        return (
            "pt",
            self.source.skey(ren),
            self.type_name,
            *[arg.skey(ren) for arg in self.args],
        )


@dataclass(frozen=True)
class PredApp(Spatial):
    """Inductive heap predicate application ``p(t1, ..., tn)``."""

    name: str
    args: tuple[Expr, ...]

    def __init__(self, name: str, args: Iterable[Expr]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))

    def free_vars(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for arg in self.args:
            result |= arg.free_vars()
        return result

    def substitute(self, subst: Mapping[str, Expr]) -> Spatial:
        return PredApp(self.name, tuple(arg.substitute(subst) for arg in self.args))

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("app", self.name, *[arg.skey(ren) for arg in self.args])


@dataclass(frozen=True)
class SepConj(Spatial):
    """Separating conjunction ``Sigma1 * Sigma2 * ...``."""

    parts: tuple[Spatial, ...]

    def __init__(self, parts: Iterable[Spatial]):
        flat: list[Spatial] = []
        for part in parts:
            if isinstance(part, SepConj):
                flat.extend(part.parts)
            elif isinstance(part, Emp):
                continue
            else:
                flat.append(part)
        object.__setattr__(self, "parts", tuple(flat))

    def free_vars(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.free_vars()
        return result

    def substitute(self, subst: Mapping[str, Expr]) -> Spatial:
        return SepConj(part.substitute(subst) for part in self.parts)

    def skey(self, ren: Mapping[str, str]) -> object:
        return ("sep", *[part.skey(ren) for part in self.parts])

    def atoms(self) -> tuple[Spatial, ...]:
        result: list[Spatial] = []
        for part in self.parts:
            result.extend(part.atoms())
        return tuple(result)


def star(*parts: Spatial) -> Spatial:
    """Combine spatial formulae with the separating conjunction.

    ``emp`` units are removed; a single remaining atom is returned as-is and
    an empty combination yields ``emp``.
    """
    conj = SepConj(parts)
    if not conj.parts:
        return Emp()
    if len(conj.parts) == 1:
        return conj.parts[0]
    return conj


# ---------------------------------------------------------------------------
# Symbolic heaps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymHeap:
    """A symbolic heap ``exists xs . Sigma /\\ Pi``."""

    exists: tuple[str, ...] = ()
    spatial: Spatial = field(default_factory=Emp)
    pure: PureFormula = field(default_factory=TrueF)

    def __init__(
        self,
        exists: Iterable[str] = (),
        spatial: Spatial | None = None,
        pure: PureFormula | Iterable[PureFormula] | None = None,
    ):
        object.__setattr__(self, "exists", tuple(exists))
        object.__setattr__(self, "spatial", spatial if spatial is not None else Emp())
        if pure is None:
            pure_formula: PureFormula = TrueF()
        elif isinstance(pure, PureFormula):
            pure_formula = pure
        else:
            pure_formula = conjoin(pure)
        object.__setattr__(self, "pure", pure_formula)

    # -- queries ------------------------------------------------------------

    def free_vars(self) -> frozenset[str]:
        """Free variables: all variables minus the existentially bound ones."""
        return (self.spatial.free_vars() | self.pure.free_vars()) - set(self.exists)

    def all_vars(self) -> frozenset[str]:
        """All variables occurring in the formula, bound or free."""
        return self.spatial.free_vars() | self.pure.free_vars() | frozenset(self.exists)

    def spatial_atoms(self) -> tuple[Spatial, ...]:
        """The ``*``-separated spatial atoms of the formula."""
        return self.spatial.atoms()

    def structural_key(self) -> tuple:
        """Alpha-normalized structural identity of the formula.

        Bound variables are renamed positionally to ``?e0, ?e1, ...`` (the
        ``?`` prefix cannot appear in parsed names), so alpha-variants --
        candidates that differ only in machine-generated existential names --
        share one key.  The existential *count* is part of the key: two
        formulae with identical bodies but different numbers of unused bound
        variables must not collide, because cached checker instantiations
        are rebound by position.  Building this tuple touches no strings
        beyond the ones already interned in the AST, which is what makes it
        cheap enough for the checker's memo table (no ``pretty()`` call).
        """
        if not self.exists:
            return (0, self.spatial.skey(_EMPTY_REN), self.pure.skey(_EMPTY_REN))
        ren = {name: f"?e{position}" for position, name in enumerate(self.exists)}
        return (len(self.exists), self.spatial.skey(ren), self.pure.skey(ren))

    def is_emp(self) -> bool:
        """True when the spatial part is (equivalent to) ``emp``."""
        return len(self.spatial_atoms()) == 0

    # -- construction helpers -------------------------------------------------

    def substitute(self, subst: Mapping[str, Expr]) -> "SymHeap":
        """Substitute free variables (bound variables are protected)."""
        filtered = {name: expr for name, expr in subst.items() if name not in self.exists}
        return SymHeap(
            self.exists,
            self.spatial.substitute(filtered),
            self.pure.substitute(filtered),
        )

    def with_pure(self, extra: Iterable[PureFormula]) -> "SymHeap":
        """Return a copy with additional pure conjuncts."""
        return SymHeap(self.exists, self.spatial, conjoin([self.pure, *extra]))

    def rename_exists_fresh(self, prefix: str = "_v") -> "SymHeap":
        """Alpha-rename bound variables to globally fresh names."""
        if not self.exists:
            return self
        renaming = {name: Var(fresh_var(prefix)) for name in self.exists}
        new_names = tuple(renaming[name].name for name in self.exists)
        return SymHeap(
            new_names,
            self.spatial.substitute(renaming),
            self.pure.substitute(renaming),
        )

    def star_with(self, other: "SymHeap") -> "SymHeap":
        """Separating conjunction of two symbolic heaps.

        Bound variables of both operands are freshened to avoid capture.
        """
        left = self.rename_exists_fresh()
        right = other.rename_exists_fresh()
        return SymHeap(
            left.exists + right.exists,
            star(left.spatial, right.spatial),
            conjoin([left.pure, right.pure]),
        )


def sym_heap(
    spatial: Spatial | Sequence[Spatial] | None = None,
    pure: PureFormula | Sequence[PureFormula] | None = None,
    exists: Iterable[str] = (),
) -> SymHeap:
    """Convenience constructor accepting lists of atoms/conjuncts."""
    if spatial is None:
        spatial_formula: Spatial = Emp()
    elif isinstance(spatial, Spatial):
        spatial_formula = spatial
    else:
        spatial_formula = star(*spatial)
    return SymHeap(exists=exists, spatial=spatial_formula, pure=pure)
