"""The ``repro`` command-line interface.

Installed as the ``repro`` console script and runnable as ``python -m
repro``.  Subcommands:

``infer``
    Run full specification inference on named benchmarks (or whole
    categories) through the batch engine and print the invariants.  With
    ``--connect SOCKET`` the request is served by a running ``repro
    serve`` daemon instead (NDJSON record stream on stdout), falling back
    to an in-process run emitting the identical stream when no daemon
    answers.
``serve``
    Run the long-lived inference daemon: NDJSON requests over a Unix
    socket, bounded admission, per-request deadlines, graceful drain on
    SIGTERM and crash-safe resume (see ``docs/serving.md``).
``table1`` / ``table2``
    Regenerate the paper's evaluation tables, optionally in parallel
    (``--jobs N``) and as JSON (``--json``).
``bench``
    Measure sequential-vs-parallel wall time and cache hit rates of the
    engine over the Table 1 suite and emit a JSON report.  With
    ``--warm-start`` it instead runs the suite twice against one persistent
    cache file and reports the cold/warm ratio and disk hit rate.
``cache``
    Inspect and manage persistent cache files: ``stats``, ``export``,
    ``import``, ``clear`` and ``fingerprint`` (the registry fingerprint
    used as the CI cache key).
``trace``
    Analyse NDJSON span traces written by ``--trace-out``: ``summary``
    (per-phase table, hottest locations/predicates), ``export --format
    chrome`` (Perfetto / ``about://tracing``) and ``diff`` (see
    ``docs/observability.md``).
``chaos``
    Run named fault-injection scenarios (worker kills, hangs, cache
    corruption, disk-full, poison jobs) against the Table 1 smoke workload
    and verify the self-healing contract (see ``docs/resilience.md``).
``docs``
    Regenerate ``docs/predicates.md`` from the predicate standard library.

Every subcommand that analyses programs goes through
:class:`repro.core.engine.InferenceEngine`, so ``--jobs``/``--timeout``
behave identically everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.engine import EngineError, EngineJob, InferenceEngine, benchmark_engine
from repro.evaluation.table1 import add_table1_arguments, table1_command
from repro.evaluation.table2 import add_table2_arguments, table2_command
from repro.sl.stdpreds import STRUCT_FIELDS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLING reproduction: dynamic inference of separation-logic invariants.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    infer = subparsers.add_parser(
        "infer", help="infer specifications for benchmarks from the registry"
    )
    infer.add_argument(
        "--benchmark",
        action="append",
        help="benchmark name, e.g. sll/insertFront (repeatable)",
    )
    infer.add_argument(
        "--category", action="append", help="run every benchmark of a category (repeatable)"
    )
    infer.add_argument("--list", action="store_true", help="list benchmark names and exit")
    infer.add_argument("--seed", type=int, default=0, help="random seed for test inputs")
    infer.add_argument("--jobs", type=int, default=1, help="engine worker processes")
    infer.add_argument(
        "--timeout", type=float, default=None, help="per-benchmark timeout in seconds"
    )
    infer.add_argument("--json", action="store_true", help="emit JSON instead of text")
    infer.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write an NDJSON span trace of the run (see docs/observability.md)",
    )
    infer.add_argument(
        "--connect",
        default=None,
        metavar="SOCKET",
        help=(
            "submit to a running 'repro serve' daemon on this Unix socket "
            "and stream its NDJSON records to stdout; falls back to an "
            "in-process run emitting the identical stream when no daemon "
            "answers"
        ),
    )
    infer.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --connect: request deadline, seconds from admission",
    )
    infer.add_argument(
        "--request-id",
        default="infer",
        metavar="ID",
        help="with --connect: the request id stamped into every record",
    )
    infer.set_defaults(handler=_cmd_infer)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived inference daemon (see docs/serving.md)"
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH", help="Unix socket to listen on"
    )
    serve.add_argument("--jobs", type=int, default=1, help="engine worker processes")
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="admission queue capacity; overflowing submissions are rejected",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="request journal for crash-safe resume (default: SOCKET.journal)",
    )
    serve.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="persistent cache file, flushed incrementally per function",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job timeout applied to every request (deadlines tighten it)",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write an NDJSON span trace (request/queue_wait/drain spans)",
    )
    serve.set_defaults(handler=_cmd_serve)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 (invariant inference)")
    add_table1_arguments(table1)
    table1.set_defaults(handler=table1_command)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2 (SLING vs S2)")
    add_table2_arguments(table2)
    table2.set_defaults(handler=table2_command)

    bench = subparsers.add_parser(
        "bench", help="benchmark the engine: sequential vs parallel, cache hit rates"
    )
    bench.add_argument("--category", action="append", help="restrict to a category (repeatable)")
    bench.add_argument(
        "--limit", type=int, default=None, help="cap programs per category (smoke runs)"
    )
    bench.add_argument("--jobs", type=int, default=4, help="parallel sweep worker count")
    bench.add_argument("--seed", type=int, default=0, help="random seed for test inputs")
    bench.add_argument("--out", default=None, help="write the JSON report to this file")
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BENCH_prev.json",
        help=(
            "load a previous bench report and fail (exit 1) when the "
            "sequential wall time regressed by more than 20%% "
            "(see --compare-threshold)"
        ),
    )
    bench.add_argument(
        "--compare-threshold",
        type=float,
        default=BENCH_REGRESSION_THRESHOLD,
        metavar="FRACTION",
        help=(
            "relative sequential wall-time increase tolerated by --compare "
            "(default 0.20; raise it on shared/noisy machines where the "
            "committed baseline was measured idle)"
        ),
    )
    bench.add_argument(
        "--assert-accel",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) when this run's speedup.cache -- the same-run, "
            "load-immune accelerated-vs-unaccelerated sequential ratio -- "
            "falls below RATIO"
        ),
    )
    bench.add_argument(
        "--warm-start",
        action="store_true",
        help=(
            "persistent-cache mode: run the suite twice against one cache "
            "file (cold write, warm read) and report the cold/warm ratio "
            "and disk hit rate instead of the parallel sweeps"
        ),
    )
    bench.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help=(
            "cache file for --warm-start (default: a temporary file, "
            "deleted afterwards; pass a path to keep the warmed cache)"
        ),
    )
    bench.add_argument(
        "--assert-warm-hit",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "with --warm-start, fail (exit 1) when the warm sweep's disk "
            "hit rate falls below RATE (e.g. 0.9)"
        ),
    )
    bench.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace the accelerated sweeps and add a per-phase 'phases' "
            "summary to the report (additive keys only); the NDJSON trace "
            "goes to --trace-out, default trace.ndjson"
        ),
    )
    bench.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="NDJSON trace file for --trace (implies --trace when given)",
    )
    bench.add_argument("--quiet", action="store_true", help="suppress progress messages")
    bench.set_defaults(handler=_cmd_bench)

    cache = subparsers.add_parser(
        "cache", help="inspect and manage persistent cache files"
    )
    cache.add_argument(
        "action",
        choices=("stats", "export", "import", "clear", "fingerprint"),
        help=(
            "stats: summarize a cache file; export: dump it portably; "
            "import: merge a dump into a cache file; clear: drop all "
            "entries; fingerprint: print the standard predicate registry's "
            "fingerprint (the cache key)"
        ),
    )
    cache.add_argument(
        "--file", default=None, metavar="PATH", help="the cache file to operate on"
    )
    cache.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="dump file written by export / read by import (default: stdout/stdin)",
    )
    cache.set_defaults(handler=_cmd_cache)

    trace = subparsers.add_parser(
        "trace", help="analyse NDJSON span traces written by --trace-out"
    )
    trace.add_argument(
        "action",
        choices=("summary", "export", "diff"),
        help=(
            "summary: per-phase self/total table and hottest spans; "
            "export: convert to another format (--format); "
            "diff: per-phase deltas between two traces (old new)"
        ),
    )
    trace.add_argument(
        "files", nargs="+", metavar="FILE", help="trace file(s); diff takes exactly two"
    )
    trace.add_argument(
        "--format",
        choices=("chrome",),
        default="chrome",
        help="export format (chrome: trace-event JSON for Perfetto/about://tracing)",
    )
    trace.add_argument(
        "--out", default=None, metavar="FILE", help="write export output here (default: stdout)"
    )
    trace.add_argument(
        "--top", type=int, default=10, help="hottest spans listed per kind (summary)"
    )
    trace.add_argument("--json", action="store_true", help="emit JSON instead of text")
    trace.set_defaults(handler=_cmd_trace)

    chaos = subparsers.add_parser(
        "chaos", help="run fault-injection scenarios against the smoke workload"
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        help="scenario name (repeatable; default: all scenarios)",
    )
    chaos.add_argument("--list", action="store_true", help="list scenario names and exit")
    chaos.add_argument(
        "--category", action="append", help="restrict the workload to a category (repeatable)"
    )
    chaos.add_argument(
        "--limit", type=int, default=None, help="cap programs per category (default 2)"
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="override the scenario's worker-pool size",
    )
    chaos.add_argument("--seed", type=int, default=0, help="fault-plan and workload seed")
    chaos.add_argument("--json", action="store_true", help="emit JSON verdicts instead of text")
    chaos.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write an NDJSON span trace of the chaos sweeps (retry/pool_heal spans)",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    docs = subparsers.add_parser("docs", help="regenerate docs/predicates.md")
    docs.add_argument(
        "--out",
        default="docs/predicates.md",
        help="output path (default: docs/predicates.md)",
    )
    docs.add_argument("--stdout", action="store_true", help="print to stdout instead")
    docs.set_defaults(handler=_cmd_docs)

    return parser


# ---------------------------------------------------------------------------
# Subcommand handlers
# ---------------------------------------------------------------------------


def _cmd_infer(arguments: argparse.Namespace) -> None:
    from repro.benchsuite.registry import all_benchmarks

    if arguments.list:
        for benchmark in all_benchmarks():
            print(f"{benchmark.name:32s} [{benchmark.category}]")
        return

    names: list[str] = list(arguments.benchmark or [])
    if arguments.category:
        wanted = set(arguments.category)
        names.extend(
            benchmark.name
            for benchmark in all_benchmarks()
            if benchmark.category in wanted and benchmark.name not in names
        )
    if not names:
        raise SystemExit("infer: pass --benchmark NAME and/or --category NAME (or --list)")

    if arguments.connect:
        _infer_served(arguments, names)
        return

    config = None
    telemetry = None
    if arguments.trace_out:
        from repro.core.sling import SlingConfig
        from repro.telemetry import Telemetry

        telemetry = Telemetry(arguments.trace_out)
        config = SlingConfig(discard_crashed_runs=True, telemetry=telemetry)
    engine = InferenceEngine(jobs=arguments.jobs, job_timeout=arguments.timeout)
    reports = engine.run(
        [
            EngineJob(kind="spec", benchmark=name, seed=arguments.seed, config=config)
            for name in names
        ]
    )
    if telemetry is not None:
        telemetry.merge_segments()
        telemetry.close()

    if arguments.json:
        print(json.dumps([_spec_report_dict(report) for report in reports], indent=2))
        failed = sum(1 for report in reports if not report.ok)
        if failed:
            raise SystemExit(f"infer: {failed} benchmark(s) failed")
        return

    failures = 0
    for report in reports:
        if not report.ok:
            failures += 1
            print(f"== {report.job.benchmark}: FAILED ({report.error})")
            continue
        payload = report.payload
        spec = payload.specification
        print(f"== {payload.benchmark} ({payload.function}), {report.seconds:.2f}s ==")
        for invariant in spec.preconditions:
            print(f"  [pre     ] {invariant.pretty(STRUCT_FIELDS)}")
        for location, invariants in spec.postconditions.items():
            for invariant in invariants:
                flag = " (spurious)" if invariant.spurious else ""
                print(f"  [{location:8s}] {invariant.pretty(STRUCT_FIELDS)}{flag}")
        for location, invariants in spec.loop_invariants.items():
            for invariant in invariants:
                print(f"  [{location:8s}] {invariant.pretty(STRUCT_FIELDS)}")
        print(f"  validated: {spec.validated}")
    if failures:
        raise SystemExit(f"infer: {failures} benchmark(s) failed")


def _infer_served(arguments: argparse.Namespace, names: list[str]) -> None:
    """``infer --connect``: daemon-served, with an in-process fallback."""
    from repro.serve.client import ServeUnavailable, run_local, submit
    from repro.serve.protocol import ServeRequest

    request = ServeRequest(
        id=arguments.request_id,
        benchmarks=tuple(names),
        seed=arguments.seed,
        deadline=arguments.deadline,
    )
    try:
        terminal = submit(arguments.connect, request, sys.stdout)
    except ServeUnavailable as reason:
        print(f"# {reason}; running in-process", file=sys.stderr)
        terminal = run_local(request, sys.stdout, jobs=arguments.jobs)
    if terminal["type"] == "rejected":
        raise SystemExit(f"infer: request rejected: {terminal['reason']}")
    if terminal["status"] != "complete":
        raise SystemExit(f"infer: request ended {terminal['status']}")


def _cmd_serve(arguments: argparse.Namespace) -> None:
    from repro.serve.daemon import DEFAULT_QUEUE_LIMIT, ServeDaemon

    telemetry = None
    if arguments.trace_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(arguments.trace_out)
    daemon = ServeDaemon(
        arguments.socket,
        jobs=arguments.jobs,
        queue_limit=arguments.queue_limit or DEFAULT_QUEUE_LIMIT,
        journal_path=arguments.journal,
        cache_file=arguments.cache_file,
        request_timeout=arguments.request_timeout,
        telemetry=telemetry,
    )
    sys.exit(daemon.serve())


def _spec_report_dict(report) -> dict:
    data = {
        "benchmark": report.job.benchmark,
        "ok": report.ok,
        "seconds": round(report.seconds, 4),
        "cache": report.cache.as_dict(),
    }
    if not report.ok:
        data["error"] = report.error
        return data
    spec = report.payload.specification
    data["function"] = report.payload.function
    data["validated"] = spec.validated
    data["invariants"] = [
        {
            "location": invariant.location,
            "formula": invariant.pretty(),
            "spurious": invariant.spurious,
        }
        for invariant in spec.all_invariants()
    ]
    return data


#: Relative wall-time increase over the previous report that fails a
#: ``bench --compare`` run.
BENCH_REGRESSION_THRESHOLD = 0.20


def _cmd_bench(arguments: argparse.Namespace) -> None:
    progress = None if arguments.quiet else lambda message: print(f"# {message}", file=sys.stderr)
    if arguments.warm_start:
        _cmd_bench_warm_start(arguments, progress)
        return
    # Read the baseline up front: --out may legitimately point at the same
    # file (the accumulating BENCH_engine.json trajectory), and comparing
    # after the write would pit the new report against itself.
    previous = None
    if arguments.compare:
        with open(arguments.compare, encoding="utf-8") as handle:
            previous = json.load(handle)
    trace_out = arguments.trace_out
    if arguments.trace and trace_out is None:
        trace_out = "trace.ndjson"
    report = benchmark_engine(
        categories=arguments.category,
        limit=arguments.limit,
        jobs=arguments.jobs,
        seed=arguments.seed,
        progress=progress,
        trace_out=trace_out,
    )
    text = json.dumps(report, indent=2)
    # The regression gates run BEFORE the report is written: when --out and
    # --compare point at the same trajectory file, a failing run must not
    # replace the very baseline it failed against.
    failure = None
    if previous is not None:
        failure = _compare_bench_reports(previous, report, arguments.compare_threshold)
    if failure is None and arguments.assert_accel is not None:
        accel = report["speedup"]["cache"]
        if accel is None or accel < arguments.assert_accel:
            failure = (
                f"bench: acceleration speedup {accel} fell below the required "
                f"{arguments.assert_accel} (sequential vs sequential_nocache, "
                "measured in this same run)"
            )
    if arguments.out and failure is None:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    if failure is not None:
        raise SystemExit(failure)


def _cmd_bench_warm_start(arguments: argparse.Namespace, progress) -> None:
    """``bench --warm-start``: Table 1 twice against one persistent cache file."""
    import os
    import tempfile

    from repro.core.engine import benchmark_warm_start

    cache_file = arguments.cache_file
    temp_dir = None
    if cache_file is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-warm-")
        cache_file = os.path.join(temp_dir.name, "warm.sqlite")
    try:
        report = benchmark_warm_start(
            categories=arguments.category,
            limit=arguments.limit,
            seed=arguments.seed,
            cache_file=cache_file,
            jobs=arguments.jobs,
            progress=progress,
        )
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()
    text = json.dumps(report, indent=2)
    failure = None
    if arguments.assert_warm_hit is not None:
        hit_rate = report["disk"]["warm"]["hit_rate"]
        if hit_rate < arguments.assert_warm_hit:
            failure = (
                f"bench: warm-start disk hit rate {hit_rate} fell below the "
                f"required {arguments.assert_warm_hit}"
            )
    if arguments.out and failure is None:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    if failure is not None:
        raise SystemExit(failure)


def _cmd_cache(arguments: argparse.Namespace) -> None:
    """``repro cache``: inspect and manage persistent cache files."""
    import pickle

    from repro.cache import CacheStore, registry_fingerprint
    from repro.sl.stdpreds import standard_predicates

    if arguments.action == "fingerprint":
        # The registry fingerprint doubles as the CI cache key: predicate
        # edits change it, so stale warmed caches are never restored.
        print(registry_fingerprint(standard_predicates()))
        return

    if arguments.file is None:
        raise SystemExit(f"cache {arguments.action}: pass --file PATH")
    store = CacheStore(arguments.file)
    try:
        if arguments.action == "stats":
            print(json.dumps(store.stats(), indent=2))
        elif arguments.action == "clear":
            dropped = store.clear()
            print(f"cleared {dropped} entries from {arguments.file}", file=sys.stderr)
        elif arguments.action == "export":
            dump = store.export_rows()
            if arguments.dump:
                with open(arguments.dump, "wb") as handle:
                    pickle.dump(dump, handle, protocol=pickle.HIGHEST_PROTOCOL)
                print(
                    f"exported {len(dump['rows'])} entries to {arguments.dump}",
                    file=sys.stderr,
                )
            else:
                sys.stdout.buffer.write(pickle.dumps(dump, protocol=pickle.HIGHEST_PROTOCOL))
        elif arguments.action == "import":
            if arguments.dump:
                with open(arguments.dump, "rb") as handle:
                    dump = pickle.load(handle)
            else:
                dump = pickle.loads(sys.stdin.buffer.read())
            merged = store.import_rows(dump)
            if merged == 0 and store.load_errors:
                raise SystemExit(
                    f"cache import: dump rejected (schema mismatch or "
                    f"unreadable store {arguments.file})"
                )
            print(f"imported {merged} entries into {arguments.file}", file=sys.stderr)
    finally:
        store.close()


def _cmd_trace(arguments: argparse.Namespace) -> None:
    """``repro trace``: summarize, export or diff NDJSON span traces."""
    from repro.telemetry import (
        TraceError,
        diff_summaries,
        hottest,
        phase_summary,
        read_trace,
        to_chrome,
    )

    try:
        if arguments.action == "diff":
            if len(arguments.files) != 2:
                raise SystemExit("trace diff: pass exactly two trace files (old new)")
            diff = diff_summaries(
                read_trace(arguments.files[0]), read_trace(arguments.files[1])
            )
            if arguments.json:
                print(json.dumps(diff, indent=2))
            else:
                print(_format_trace_diff(diff))
            return
        if len(arguments.files) != 1:
            raise SystemExit(f"trace {arguments.action}: pass exactly one trace file")
        records = read_trace(arguments.files[0])
    except TraceError as error:
        raise SystemExit(f"trace: {error}")

    if arguments.action == "export":
        payload = json.dumps(to_chrome(records), indent=2)
        if arguments.out:
            with open(arguments.out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {arguments.out}", file=sys.stderr)
        else:
            print(payload)
        return

    summary = phase_summary(records)
    hot = {
        label: hottest(records, kind, top=arguments.top)
        for label, kind in (
            ("locations", "location"),
            ("predicates", "candidate_group"),
        )
    }
    if arguments.json:
        print(json.dumps({"phases": summary, "hottest": hot}, indent=2))
        return
    print(_format_trace_summary(summary, hot))


def _format_trace_summary(summary: dict, hot: dict) -> str:
    from repro.telemetry import SPAN_KINDS

    header = f"{'phase':20s} {'count':>8s} {'total(s)':>10s} {'self(s)':>10s}"
    lines = [header, "-" * len(header)]
    ordered = [kind for kind in SPAN_KINDS if kind in summary]
    ordered += [kind for kind in summary if kind not in SPAN_KINDS]
    for kind in ordered:
        entry = summary[kind]
        self_column = (
            f"{entry['self_seconds']:10.3f}" if "self_seconds" in entry else f"{'(aux)':>10s}"
        )
        lines.append(
            f"{kind:20s} {entry['count']:8d} {entry['total_seconds']:10.3f} {self_column}"
        )
    for label, ranked in hot.items():
        if not ranked:
            continue
        lines.append("")
        lines.append(f"hottest {label}:")
        for entry in ranked:
            lines.append(
                f"  {entry['name']:40s} {entry['count']:6d}x {entry['total_seconds']:10.3f}s"
            )
    return "\n".join(lines)


def _format_trace_diff(diff: dict) -> str:
    header = (
        f"{'phase':20s} {'count':>13s} {'total(s)':>21s} {'delta':>10s}"
    )
    lines = [header, "-" * len(header)]
    for kind, entry in diff.items():
        lines.append(
            f"{kind:20s} {entry['count_old']:6d}>{entry['count_new']:<6d} "
            f"{entry['total_seconds_old']:10.3f}>{entry['total_seconds_new']:<10.3f} "
            f"{entry['total_delta']:+10.3f}"
        )
    return "\n".join(lines)


def _compare_bench_reports(
    previous: dict, report: dict, threshold: float = BENCH_REGRESSION_THRESHOLD
) -> str | None:
    """Check the sequential wall time against the threshold.

    The sequential sweep is the comparison metric: it is the engine's
    reference execution mode and is unaffected by worker-count or
    fork-overhead differences between machines.  Returns the failure
    message on a regression beyond the threshold, ``None`` otherwise.
    """
    previous_seconds = previous["wall_seconds"]["sequential"]
    current_seconds = report["wall_seconds"]["sequential"]
    ratio = current_seconds / previous_seconds if previous_seconds else float("inf")
    print(
        f"# sequential wall time: {previous_seconds:.3f}s -> {current_seconds:.3f}s "
        f"({ratio:.2f}x of previous)",
        file=sys.stderr,
    )
    if current_seconds > previous_seconds * (1.0 + threshold):
        return (
            f"bench: sequential wall time regressed by more than "
            f"{threshold:.0%} "
            f"({previous_seconds:.3f}s -> {current_seconds:.3f}s)"
        )
    return None


def _cmd_chaos(arguments: argparse.Namespace) -> None:
    from repro.faults.chaos import run_scenarios, scenario_catalog

    catalog = scenario_catalog()
    if arguments.list:
        for name in sorted(catalog):
            print(f"{name:16s} {catalog[name]}")
        return

    names = arguments.scenario or sorted(catalog)
    unknown = [name for name in names if name not in catalog]
    if unknown:
        raise SystemExit(f"unknown chaos scenario(s): {', '.join(unknown)}")

    telemetry = None
    if arguments.trace_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(arguments.trace_out)
    try:
        reports = run_scenarios(
            names,
            categories=arguments.category,
            limit=arguments.limit,
            jobs=arguments.jobs,
            seed=arguments.seed,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()

    if arguments.json:
        print(json.dumps([report.as_dict() for report in reports], indent=2))
    else:
        print("\n\n".join(report.summary() for report in reports))
    if any(not report.passed for report in reports):
        sys.exit(1)


def _cmd_docs(arguments: argparse.Namespace) -> None:
    from repro.docsgen import render_predicate_reference

    text = render_predicate_reference()
    if arguments.stdout:
        print(text, end="")
        return
    import os

    directory = os.path.dirname(arguments.out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(arguments.out, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {arguments.out}", file=sys.stderr)


def main(argv: list[str] | None = None) -> None:
    """Entry point of the ``repro`` console script and ``python -m repro``."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    try:
        arguments.handler(arguments)
        sys.stdout.flush()
    except BrokenPipeError:
        # The reader went away (e.g. ``repro infer ... | head -1``): exit
        # cleanly.  Pointing stdout at /dev/null first keeps the
        # interpreter's shutdown flush from tracebacking on the same pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(0)
    except EngineError as error:
        raise SystemExit(f"{arguments.command}: {error}")


if __name__ == "__main__":
    main()
