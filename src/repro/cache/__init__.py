"""Persistent cross-run cache for the checker's canonical-keyed memos.

PR 4 made every hot memo key address-independent (canonical heap forms),
which makes the checker's expensive state valid across processes and runs.
This package persists it: a sqlite-backed :class:`CacheStore` under a
:class:`PersistentCache` tier that warm-starts ``EnvStream`` memos, learned
refuters and predicate unfolding templates.  Entirely inert unless
``SlingConfig.persistent_cache`` is set.  See ``docs/performance.md``.
"""

from repro.cache.fingerprint import registry_fingerprint
from repro.cache.store import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_MAX_ENTRIES,
    CacheStore,
    preload_cache_file,
)
from repro.cache.tier import PersistentCache, PersistentCacheError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_ENTRIES",
    "CacheStore",
    "PersistentCache",
    "PersistentCacheError",
    "preload_cache_file",
    "registry_fingerprint",
]
