"""The persistent cache tier: glue between checker caches and the store.

A :class:`PersistentCache` sits *beneath* the three canonical-keyed
in-memory caches of one :class:`~repro.sl.checker.ModelChecker`:

* the ``EnvStream`` skeleton memo -- served lazily, one stream per miss
  (:meth:`PersistentCache.load_stream`, called from ``_get_stream`` after
  an in-memory miss);
* the learned-refuter table -- bulk-loaded at :meth:`attach` time (only
  canonical-form refuters persist; integer refuters are batch-relative);
* the predicate unfolding caches -- template *keys* are persisted and the
  closures recompiled at attach time (they cannot be pickled).

Only checkers whose stream keys are canonical may attach: concrete keys
embed process-local heap addresses and hashes, so persisting them would be
silently wrong across processes.  :meth:`attach` refuses with
:class:`PersistentCacheError` instead of downgrading (the PR 4 gotcha:
``ModelChecker`` built without ``structs=`` keeps concrete keys without
any visible signal).

The tier is write-behind: loads happen during the run, everything new is
persisted in one :meth:`flush` at the end of an inference (failures inside
the store never propagate -- see :mod:`repro.cache.store`).
"""

from __future__ import annotations

import logging

from repro.cache.fingerprint import registry_fingerprint
from repro.cache.serialize import (
    decode_refuter,
    decode_stream,
    decode_unfold_key,
    encode_refuter,
    encode_stream,
    encode_unfold_key,
    stable_key_bytes,
)
from repro.cache.store import DEFAULT_MAX_ENTRIES, CacheStore
from repro.sl.model import CanonicalForm

log = logging.getLogger("repro.cache")

KIND_STREAM = "stream"
KIND_REFUTER = "refuter"
KIND_UNFOLD = "unfold"


class PersistentCacheError(RuntimeError):
    """The persistent tier cannot be soundly attached to this checker."""


class PersistentCache:
    """Disk tier for one checker/registry pair (see the module docstring).

    ``disk_hits``/``disk_misses`` count *stream* lookups served from or
    missed by the disk tier (the per-lookup signal the warm-start hit rate
    is computed from); bulk refuter/unfold loads are one-shot and appear in
    the store stats instead.
    """

    def __init__(
        self, path, registry, max_entries: int = DEFAULT_MAX_ENTRIES, fault_plan=None
    ):
        self.registry = registry
        self.fingerprint = registry_fingerprint(registry)
        self.store = CacheStore(path, max_entries=max_entries, fault_plan=fault_plan)
        #: Tier-level kill switch: any exception escaping a mid-run cache
        #: operation (the store absorbs sqlite errors itself, but decode
        #: and filesystem surprises -- or an injected fault -- can escape)
        #: disables the tier for the rest of the run instead of raising
        #: out of a checker call.  Warned once, counted in
        #: :attr:`disk_load_errors`.
        self._disabled = False
        self._tier_errors = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_evictions = 0
        self.cache_file_bytes = 0
        self._decode_errors = 0
        self._stream_max_entries = 4096
        #: Keys already present on disk (loaded or flushed), per kind --
        #: avoids rewriting rows, which would reset their hit metadata.
        self._known: dict[str, set[bytes]] = {
            KIND_STREAM: set(),
            KIND_REFUTER: set(),
            KIND_UNFOLD: set(),
        }
        #: Stream keys served from disk since the last flush (recency bump).
        self._touched: set[bytes] = set()
        #: Optional span tracer (set by the owning :class:`Sling`; ``None``
        #: keeps loads and flushes on the untraced fast path).
        self.tracer = None

    # ------------------------------------------------------------- attach --

    def attach(self, checker) -> None:
        """Hook this tier into a checker and warm its bulk-loadable caches.

        Refuses (:class:`PersistentCacheError`) when the checker's stream
        keys are not canonical -- concrete keys embed per-process addresses
        and salted hashes, so persisting them would corrupt the cache.
        """
        if not getattr(checker, "canonical_stream_keys", False):
            raise PersistentCacheError(
                "persistent cache requires canonical stream keys "
                "(the checker was built with canonical_stream_keys=False)"
            )
        if getattr(checker, "structs", None) is None:
            raise PersistentCacheError(
                "persistent cache requires canonical stream keys, but this "
                "checker was built without structs= -- its stream keys "
                "silently stay concrete (per-process addresses), which is "
                "exactly what must never reach disk"
            )
        self._stream_max_entries = checker.stream_max_entries
        checker.persistent = self
        self._warm_refuters(checker)
        self._warm_unfold_templates()
        self.cache_file_bytes = self.store.file_bytes()

    def _warm_refuters(self, checker) -> None:
        """Replay persisted refuters into the checker's LRU table.

        Rows arrive least recently used first, so replaying in order leaves
        the most recently useful refuters freshest in the LRU.  Only the
        last ``refuters_limit`` rows are replayed (the table would evict the
        rest immediately anyway).  Refuters only steer which model a batch
        tries first -- a wrong or stale one costs a few extra checks, never
        a wrong verdict -- so this preload cannot affect results.
        """
        rows = self.store.iter_kind(self.fingerprint, KIND_REFUTER)
        limit = getattr(checker, "refuters_limit", None)
        if limit is not None and len(rows) > limit:
            rows = rows[-limit:]
        for key_bytes, payload in rows:
            try:
                shape, form = decode_refuter(payload)
            except Exception as exc:
                self._note_decode_error(KIND_REFUTER, exc)
                continue
            checker._learn_refuter(shape, form)
            self._known[KIND_REFUTER].add(bytes(key_bytes))

    def _warm_unfold_templates(self) -> None:
        """Recompile persisted unfolding-template keys into the registry.

        Payloads carry only ``(predicate, case index, argument shape)`` --
        the compiled closures are rebuilt locally, with the predicate's
        hit/miss counters snapshotted around the compile so warming is
        invisible to ``unfold_stats()``.
        """
        for key_bytes, payload in self.store.iter_kind(self.fingerprint, KIND_UNFOLD):
            try:
                pred_name, case_index, key = decode_unfold_key(payload)
            except Exception as exc:
                self._note_decode_error(KIND_UNFOLD, exc)
                continue
            if pred_name not in self.registry:
                continue
            predicate = self.registry.get(pred_name)
            if predicate.warm_unfold_template(case_index, key):
                self._known[KIND_UNFOLD].add(bytes(key_bytes))

    # -------------------------------------------------------------- loads --

    def load_stream(self, key):
        """The persisted stream under a canonical key, or ``None`` (a miss).

        Total: any failure escaping the load (the store absorbs sqlite
        errors itself; this catches everything else, e.g. the cache file
        deleted or made unreadable mid-sweep) disables the tier for the
        rest of the run and reports a miss -- a broken cache degrades to a
        cold run, never to a failed checker call.
        """
        if self._disabled:
            return None
        try:
            if self.tracer is None:
                return self._load_stream(key)
            with self.tracer.span("disk_io", name="load_stream") as span:
                stream = self._load_stream(key)
                span.set(hit=stream is not None)
            return stream
        except Exception as exc:  # noqa: BLE001 -- absorbed, tier disabled
            self._disable("load_stream", exc)
            return None

    def _load_stream(self, key):
        key_bytes = stable_key_bytes(key)
        payload = self.store.get(self.fingerprint, KIND_STREAM, key_bytes)
        if payload is None:
            self.disk_misses += 1
            return None
        try:
            stream = decode_stream(payload, self._stream_max_entries)
        except Exception as exc:
            self._note_decode_error(KIND_STREAM, exc)
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        self._known[KIND_STREAM].add(key_bytes)
        self._touched.add(key_bytes)
        return stream

    def _note_decode_error(self, kind: str, exc: BaseException) -> None:
        if self._decode_errors == 0:
            log.warning(
                "persistent cache %s: undecodable %s row (%s: %s); treating as a miss",
                self.store.path,
                kind,
                type(exc).__name__,
                exc,
            )
        self._decode_errors += 1

    # ------------------------------------------------------------- flush --

    def flush(self, checker, final: bool = True) -> dict[str, int]:
        """Write everything learned since the last flush; returns row counts.

        Persists complete canonical-keyed streams, canonical-form refuters
        and unfolding-template keys; bumps hit metadata for streams served
        from disk; evicts over the size cap; refreshes ``cache_file_bytes``.
        The ``_known`` bookkeeping makes repeated flushes naturally
        incremental -- only rows learned since the previous call are
        written -- so callers (the serve daemon, per-location incremental
        mode) may flush as often as they like.  Intermediate flushes pass
        ``final=False`` to skip eviction and the file-size refresh: those
        are end-of-run accounting, and running eviction mid-inference could
        drop rows a concurrent sharer just wrote.

        Total, like :meth:`load_stream`: a failed flush (disk full, file
        made read-only mid-run) disables the tier and writes nothing --
        the in-memory results of the run are unaffected.
        """
        empty = {KIND_STREAM: 0, KIND_REFUTER: 0, KIND_UNFOLD: 0}
        if self._disabled:
            return empty
        try:
            if self.tracer is None:
                return self._flush(checker, final)
            with self.tracer.span("disk_io", name="flush") as span:
                written = self._flush(checker, final)
                span.set(written=sum(written.values()), final=final)
            return written
        except Exception as exc:  # noqa: BLE001 -- absorbed, tier disabled
            self._disable("flush", exc)
            return empty

    def _flush(self, checker, final: bool = True) -> dict[str, int]:
        written = {KIND_STREAM: 0, KIND_REFUTER: 0, KIND_UNFOLD: 0}

        stream_rows = []
        known_streams = self._known[KIND_STREAM]
        for key, stream in checker._streams.items():
            if not stream.complete or not isinstance(key[-1], CanonicalForm):
                continue
            key_bytes = stable_key_bytes(key)
            if key_bytes in known_streams:
                continue
            stream_rows.append((key_bytes, encode_stream(stream)))
            known_streams.add(key_bytes)
        written[KIND_STREAM] = self.store.put_many(
            self.fingerprint, KIND_STREAM, stream_rows
        )

        refuter_rows = []
        known_refuters = self._known[KIND_REFUTER]
        for shape, value in checker._refuters.items():
            if not isinstance(value, CanonicalForm):
                continue
            key_bytes, payload = encode_refuter(shape, value)
            if key_bytes in known_refuters:
                continue
            refuter_rows.append((key_bytes, payload))
            known_refuters.add(key_bytes)
        written[KIND_REFUTER] = self.store.put_many(
            self.fingerprint, KIND_REFUTER, refuter_rows
        )

        unfold_rows = []
        known_unfolds = self._known[KIND_UNFOLD]
        for predicate in self.registry:
            for case_index, key in predicate.unfold_cache_keys():
                key_bytes, payload = encode_unfold_key(predicate.name, case_index, key)
                if key_bytes in known_unfolds:
                    continue
                unfold_rows.append((key_bytes, payload))
                known_unfolds.add(key_bytes)
        written[KIND_UNFOLD] = self.store.put_many(
            self.fingerprint, KIND_UNFOLD, unfold_rows
        )

        if self._touched:
            self.store.touch_many(
                self.fingerprint, KIND_STREAM, sorted(self._touched)
            )
            self._touched.clear()

        if final:
            self.disk_evictions += self.store.evict_over_cap()
            self.cache_file_bytes = self.store.file_bytes()
        return written

    # ----------------------------------------------------------- counters --

    def _disable(self, operation: str, exc: BaseException) -> None:
        """Per-operation degradation: warn once, count, go inert."""
        if not self._disabled:
            log.warning(
                "persistent cache %s: %s failed (%s: %s); disabling the disk "
                "tier for the rest of the run",
                self.store.path,
                operation,
                type(exc).__name__,
                exc,
            )
        self._disabled = True
        self._tier_errors += 1

    @property
    def disk_load_errors(self) -> int:
        """Failures absorbed so far (store failures, undecodable rows, and
        tier-level operations that had to disable the tier mid-run)."""
        return self.store.load_errors + self._decode_errors + self._tier_errors

    def counters(self) -> dict[str, int]:
        """The tier's contribution to ``cache_stats()``."""
        return {
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_evictions": self.disk_evictions,
            "cache_file_bytes": self.cache_file_bytes,
            "disk_load_errors": self.disk_load_errors,
        }

    def close(self) -> None:
        """Close the underlying store connection."""
        self.store.close()
