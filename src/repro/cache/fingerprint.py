"""Stable fingerprint of a predicate registry's definitions.

Persistent cache rows are only valid for the exact predicate definitions
they were computed under: a changed case body changes which environments a
skeleton search may produce, and a changed definition *order* changes the
candidate-enumeration tie-breaking.  The fingerprint therefore digests, in
definition order, each predicate's name, formal parameters, parameter types
and the *structural key* of every case body (``SymHeap.structural_key()``
renames existentials positionally, so the fingerprint is independent of
parse-time fresh-name counters while still pinning the AST shape).

Rows written under one fingerprint are invisible under another -- predicate
edits invalidate without wiping unrelated registries' entries.
"""

from __future__ import annotations

import hashlib

from repro.sl.predicates import PredicateRegistry


def registry_fingerprint(registry: PredicateRegistry) -> str:
    """A 16-hex-digit digest of the registry's definitions (see module doc)."""
    parts = []
    for predicate in registry:
        parts.append(
            (
                predicate.name,
                predicate.params,
                predicate.param_types,
                tuple(repr(case.body.structural_key()) for case in predicate.cases),
            )
        )
    blob = repr(tuple(parts)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]
