"""Serialization between the checker's in-memory caches and cache rows.

Two invariants shape everything here:

* **Keys must be byte-stable across processes.**  The in-memory cache keys
  contain :class:`~repro.sl.model.CanonicalForm` objects whose hashes are
  salted per process (``PYTHONHASHSEED``), and pickle output depends on
  memoization order -- neither may ever be used as a database key.  Keys
  are therefore rendered through :func:`stable_key_bytes`: canonical forms
  are unwrapped to their raw key tuples (plain ``str``/``int`` nests whose
  ``repr`` is deterministic) and the whole key is ``repr``-encoded.
* **Payloads must not smuggle process-local state.**  Stream entries are
  stored in canonical space already (tags ``('a', cid)``, dense ids) and
  are name-self-contained, so they pickle as plain data.  Canonical forms
  inside refuter payloads are reduced to their raw key tuples and
  re-interned with :func:`~repro.sl.model.intern_form` on load, restoring
  the identity-based fast path.  Unfolding templates contain compiled
  closures and are *never* pickled -- only their keys are persisted and the
  templates are recompiled on load (:meth:`InductivePredicate.warm_unfold_template`).
"""

from __future__ import annotations

import pickle

from repro.sl.checker import EnvStream, _StreamEntry
from repro.sl.model import CanonicalForm, intern_form


def _strip_forms(value):
    """Replace every CanonicalForm in a key nest by a stable marker tuple."""
    if isinstance(value, CanonicalForm):
        return ("__cf__", value.key)
    if isinstance(value, tuple):
        return tuple(_strip_forms(item) for item in value)
    return value


def stable_key_bytes(key) -> bytes:
    """Byte-stable rendering of a cache key (see the module docstring)."""
    return repr(_strip_forms(key)).encode("utf-8")


# ------------------------------------------------------------------ streams --


def encode_stream(stream: EnvStream) -> bytes:
    """Pickle a *complete* canonical-space stream as plain data."""
    if not stream.complete:
        raise ValueError("only complete streams may be persisted")
    entries = [
        (
            entry.values,
            entry.avail,
            entry.nconsumed,
            entry.env,
            entry.unknowns,
            entry.deferred,
        )
        for entry in stream.entries
    ]
    payload = {
        "slot_names": stream.slot_names,
        "entries": entries,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_stream(payload: bytes, max_entries: int) -> EnvStream:
    """Rebuild an :class:`EnvStream` from :func:`encode_stream` output.

    The result has no generator source and ``complete=True`` -- exactly the
    state an exhausted in-memory stream would be in.  ``source_root`` and
    ``source_heap_hash`` stay ``None``: the generating heap lived in another
    process, so every in-memory hit on a disk-loaded stream is, correctly, a
    canonical-keying win.
    """
    data = pickle.loads(payload)
    stream = EnvStream(None, tuple(data["slot_names"]), 0, max_entries)
    for values, avail, nconsumed, env, unknowns, deferred in data["entries"]:
        entry = _StreamEntry()
        entry.values = tuple(values)
        entry.avail = frozenset(avail)
        entry.nconsumed = nconsumed
        entry.env = dict(env) if env is not None else None
        entry.unknowns = frozenset(unknowns) if unknowns is not None else None
        entry.deferred = tuple(deferred) if deferred is not None else None
        stream.entries.append(entry)
    stream.complete = True
    return stream


# ----------------------------------------------------------------- refuters --


def encode_refuter(shape, form: CanonicalForm) -> tuple[bytes, bytes]:
    """``(key, payload)`` row for one learned refuter.

    Only canonical-form refuter values are persistable (integer values are
    batch-relative model indexes, meaningless across runs); callers filter.
    """
    payload = pickle.dumps(
        (tuple(shape), form.key), protocol=pickle.HIGHEST_PROTOCOL
    )
    return stable_key_bytes(shape), payload


def decode_refuter(payload: bytes):
    """``(shape, interned CanonicalForm)`` from :func:`encode_refuter` output."""
    shape, form_key = pickle.loads(payload)
    return tuple(shape), intern_form(form_key)


# --------------------------------------------------------------- unfoldings --


def encode_unfold_key(pred_name: str, case_index: int, key) -> tuple[bytes, bytes]:
    """``(key, payload)`` row for one unfolding-template cache key."""
    record = (pred_name, case_index, tuple(key))
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return stable_key_bytes(record), payload


def decode_unfold_key(payload: bytes):
    """``(predicate name, case index, argument-shape key)`` from a row payload."""
    pred_name, case_index, key = pickle.loads(payload)
    return pred_name, case_index, tuple(key)
