"""SQLite-backed storage for the persistent checker cache.

One cache file holds the serialized state of the three canonical-keyed
in-memory caches (see :mod:`repro.cache.tier`): skeleton ``EnvStream``
snapshots, learned refuters and predicate-unfolding template keys.  The
store itself is deliberately dumb -- rows of ``(fingerprint, kind, key,
payload)`` blobs with hit-count/recency metadata -- and deliberately
*defensive*: any sqlite or filesystem failure (corrupted file, truncated
write, permission error) disables the store for the rest of the process,
logs one warning, bumps :attr:`CacheStore.load_errors` and makes every
operation a no-op.  A broken cache file must never be able to crash or
slow down an inference run beyond running it cold.

Invalidation is two-layered:

* ``CACHE_SCHEMA_VERSION`` (stored in the ``meta`` table) covers the
  *serialization format*: opening a file written under a different version
  wipes its entries and starts cold.
* the per-row ``fingerprint`` column covers the *predicate definitions*
  (see :mod:`repro.cache.fingerprint`): rows written under a different
  registry are simply never matched, so a predicate change invalidates
  without destroying other registries' entries.

``sqlite3`` is part of the CPython standard library; no new dependency is
introduced.  WAL journaling plus a generous busy timeout make concurrent
flushes from several writers safe, and :meth:`CacheStore.put_many` merges
on conflict (payload replaced only by a newer write, hit counts kept,
recency maxed) so one cache file shared between a serve daemon and
one-shot CLI runs never loses warmth to whichever flush happened last.
"""

from __future__ import annotations

import logging
import os
import sqlite3
import time

log = logging.getLogger("repro.cache")

#: Version of the serialized entry formats.  Bump on ANY change to the
#: stream/refuter/unfold encodings in :mod:`repro.cache.serialize` or to
#: the table layout below: a mismatch wipes the file's entries (cold
#: start), never a crash and never a misread.
CACHE_SCHEMA_VERSION = 1

#: Default cap on stored entries per cache file; beyond it the rows with
#: the oldest ``last_used`` (ties: lowest ``hit_count``, then insertion
#: order) are evicted at flush time.
DEFAULT_MAX_ENTRIES = 100_000

#: Process-global preloaded row tables, keyed by absolute cache-file path.
#: Populated by :func:`preload_cache_file` in the engine parent *before*
#: the worker pool forks, so every worker inherits the table copy-on-write
#: (the same trick the canonical-form intern table uses) and stream
#: lookups need no sqlite round-trip.  Lookups missing here still fall
#: back to the database, so a stale preload is merely slower, never wrong.
_PRELOADED: dict[str, dict[tuple[str, str, bytes], bytes]] = {}


def preload_cache_file(path) -> int:
    """Read every row of a cache file into process memory (fork-after-load).

    Returns the number of rows preloaded; any failure logs, counts inside
    the temporary store and preloads nothing (0).  Safe to call for a file
    that does not exist yet.
    """
    abspath = os.path.abspath(os.fspath(path))
    store = CacheStore(path)
    rows: dict[tuple[str, str, bytes], bytes] = {}
    try:
        for fingerprint, kind, key, payload in store.iter_rows():
            rows[(fingerprint, kind, bytes(key))] = payload
    finally:
        store.close()
    _PRELOADED[abspath] = rows
    return len(rows)


def preloaded_rows(path) -> dict[tuple[str, str, bytes], bytes] | None:
    """The preloaded row table for ``path`` (``None`` when not preloaded)."""
    return _PRELOADED.get(os.path.abspath(os.fspath(path)))


class CacheStore:
    """One persistent cache file (see the module docstring).

    Every public method is total: after any underlying failure the store
    flips into a disabled state where reads miss and writes vanish, with
    ``load_errors`` counting how often something had to be ignored.
    """

    def __init__(self, path, max_entries: int = DEFAULT_MAX_ENTRIES, fault_plan=None):
        self.path = os.fspath(path)
        self.max_entries = max_entries
        #: Failures swallowed so far (corruption, version skew, IO errors).
        self.load_errors = 0
        #: Optional fault-injection plan (see :mod:`repro.faults`): the
        #: ``cache_open``/``cache_read``/``cache_write`` sites sit *inside*
        #: the defensive try blocks below, so an injected sqlite failure
        #: exercises exactly the absorb-and-disable path a real one would.
        self.fault_plan = fault_plan
        self._conn: sqlite3.Connection | None = None
        self._failed = False

    # ------------------------------------------------------------ plumbing --

    def _inject(self, op: str) -> None:
        if self.fault_plan is not None:
            from repro.faults import maybe_inject

            maybe_inject(self.fault_plan, op, qualifier=self.path)

    def _fail(self, exc: BaseException) -> None:
        """Disable the store after a failure (logged once, counted)."""
        if not self._failed:
            log.warning(
                "persistent cache %s unusable (%s: %s); continuing with a cold run",
                self.path,
                type(exc).__name__,
                exc,
            )
        self._failed = True
        self.load_errors += 1
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def _connect(self) -> sqlite3.Connection | None:
        """The lazily opened connection; ``None`` once the store is disabled."""
        if self._failed:
            return None
        if self._conn is not None:
            return self._conn
        try:
            self._inject("cache_open")
            directory = os.path.dirname(os.path.abspath(self.path))
            if directory:
                os.makedirs(directory, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            # Belt and braces with the connect() timeout: the busy handler
            # also covers statements issued after lock acquisition, which is
            # what a daemon flush racing a CLI flush actually hits.
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " fingerprint TEXT NOT NULL,"
                " kind TEXT NOT NULL,"
                " key BLOB NOT NULL,"
                " payload BLOB NOT NULL,"
                " hit_count INTEGER NOT NULL DEFAULT 0,"
                " last_used REAL NOT NULL,"
                " created REAL NOT NULL,"
                " PRIMARY KEY (fingerprint, kind, key))"
            )
            version = str(_schema_version())
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                    (version,),
                )
                conn.commit()
            elif row[0] != version:
                # Version skew: the file was written by an incompatible
                # serialization format.  Wipe and start cold -- reading the
                # old payloads would be unsound, keeping them useless.
                log.warning(
                    "persistent cache %s has schema version %s (expected %s); "
                    "discarding its entries and starting cold",
                    self.path,
                    row[0],
                    version,
                )
                conn.execute("DELETE FROM entries")
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                    (version,),
                )
                conn.commit()
            self._conn = conn
            return conn
        except (sqlite3.Error, OSError, ValueError) as exc:
            self._fail(exc)
            return None

    def close(self) -> None:
        """Close the underlying connection (the store may be reopened)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    # ------------------------------------------------------------- reads --

    def get(self, fingerprint: str, kind: str, key: bytes) -> bytes | None:
        """The payload stored under ``(fingerprint, kind, key)``, if any.

        Consults the process-global preloaded table first (fork-after-load),
        then the database.
        """
        preloaded = preloaded_rows(self.path)
        if preloaded is not None:
            payload = preloaded.get((fingerprint, kind, key))
            if payload is not None:
                return payload
        conn = self._connect()
        if conn is None:
            return None
        try:
            self._inject("cache_read")
            row = conn.execute(
                "SELECT payload FROM entries WHERE fingerprint = ? AND kind = ? AND key = ?",
                (fingerprint, kind, key),
            ).fetchone()
        except sqlite3.Error as exc:
            self._fail(exc)
            return None
        return row[0] if row is not None else None

    def iter_kind(self, fingerprint: str, kind: str) -> list[tuple[bytes, bytes]]:
        """All ``(key, payload)`` rows of one kind, least recently used first.

        The LRU-friendly order lets callers replay rows into an in-memory
        LRU structure so the most recently used entries end up freshest.
        """
        conn = self._connect()
        if conn is None:
            return []
        try:
            self._inject("cache_read")
            return conn.execute(
                "SELECT key, payload FROM entries"
                " WHERE fingerprint = ? AND kind = ?"
                " ORDER BY last_used ASC, rowid ASC",
                (fingerprint, kind),
            ).fetchall()
        except sqlite3.Error as exc:
            self._fail(exc)
            return []

    def iter_rows(self) -> list[tuple[str, str, bytes, bytes]]:
        """Every row of the store (used by preload and export)."""
        conn = self._connect()
        if conn is None:
            return []
        try:
            self._inject("cache_read")
            return conn.execute(
                "SELECT fingerprint, kind, key, payload FROM entries"
                " ORDER BY last_used ASC, rowid ASC"
            ).fetchall()
        except sqlite3.Error as exc:
            self._fail(exc)
            return []

    # ------------------------------------------------------------- writes --

    def put_many(
        self,
        fingerprint: str,
        kind: str,
        items: list[tuple[bytes, bytes]],
        now: float | None = None,
    ) -> int:
        """Upsert ``(key, payload)`` rows; returns rows written.

        Concurrent writers sharing one cache file (a serve daemon flushing
        next to a one-shot CLI run) merge instead of clobbering: an existing
        row keeps its hit count, its payload is only replaced when the
        incoming write is *newer* than the row's recency, and recency/
        creation stamps take the ``max``.  Entries are content-addressed by
        canonical keys, so either payload is correct -- upsert-if-newer just
        stops an older flush from un-warming a row a fresher run wrote.
        """
        if not items:
            return 0
        conn = self._connect()
        if conn is None:
            return 0
        stamp = time.time() if now is None else now
        try:
            self._inject("cache_write")
            conn.executemany(
                "INSERT INTO entries"
                " (fingerprint, kind, key, payload, hit_count, last_used, created)"
                " VALUES (?, ?, ?, ?, 0, ?, ?)"
                " ON CONFLICT (fingerprint, kind, key) DO UPDATE SET"
                "  payload = CASE WHEN excluded.last_used > last_used"
                "   THEN excluded.payload ELSE payload END,"
                "  last_used = max(last_used, excluded.last_used),"
                "  created = min(created, excluded.created)",
                [(fingerprint, kind, key, payload, stamp, stamp) for key, payload in items],
            )
            conn.commit()
        except sqlite3.Error as exc:
            self._fail(exc)
            return 0
        return len(items)

    def touch_many(
        self,
        fingerprint: str,
        kind: str,
        keys: list[bytes],
        now: float | None = None,
    ) -> None:
        """Record reuse: bump hit counts and recency of the given keys."""
        if not keys:
            return
        conn = self._connect()
        if conn is None:
            return
        stamp = time.time() if now is None else now
        try:
            self._inject("cache_write")
            conn.executemany(
                "UPDATE entries SET hit_count = hit_count + 1, last_used = ?"
                " WHERE fingerprint = ? AND kind = ? AND key = ?",
                [(stamp, fingerprint, kind, key) for key in keys],
            )
            conn.commit()
        except sqlite3.Error as exc:
            self._fail(exc)

    def evict_over_cap(self) -> int:
        """Drop the stalest rows beyond ``max_entries``; returns rows evicted.

        Eviction order is least recently used first, ties broken by lowest
        hit count and then insertion order -- so a warmed, frequently hit
        entry outlives a one-shot one of the same age.
        """
        conn = self._connect()
        if conn is None:
            return 0
        try:
            (count,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            excess = count - self.max_entries
            if excess <= 0:
                return 0
            conn.execute(
                "DELETE FROM entries WHERE rowid IN ("
                " SELECT rowid FROM entries"
                " ORDER BY last_used ASC, hit_count ASC, rowid ASC LIMIT ?)",
                (excess,),
            )
            conn.commit()
        except sqlite3.Error as exc:
            self._fail(exc)
            return 0
        return excess

    def clear(self) -> int:
        """Delete every entry (the schema/meta rows stay); returns rows dropped."""
        conn = self._connect()
        if conn is None:
            return 0
        try:
            (count,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            conn.execute("DELETE FROM entries")
            conn.commit()
        except sqlite3.Error as exc:
            self._fail(exc)
            return 0
        return count

    # ------------------------------------------------------------ metadata --

    def file_bytes(self) -> int:
        """On-disk size of the cache (main database plus WAL, if present)."""
        total = 0
        for suffix in ("", "-wal"):
            try:
                total += os.path.getsize(self.path + suffix)
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        """A JSON-serializable summary of the store's contents."""
        info: dict = {
            "path": os.path.abspath(self.path),
            "schema_version": _schema_version(),
            "file_bytes": self.file_bytes(),
            "max_entries": self.max_entries,
            "entries": 0,
            "kinds": {},
            "fingerprints": {},
            "load_errors": self.load_errors,
        }
        conn = self._connect()
        if conn is None:
            info["load_errors"] = self.load_errors
            return info
        try:
            for kind, count, hits in conn.execute(
                "SELECT kind, COUNT(*), COALESCE(SUM(hit_count), 0)"
                " FROM entries GROUP BY kind ORDER BY kind"
            ):
                info["kinds"][kind] = {"entries": count, "hits": hits}
                info["entries"] += count
            for fingerprint, count in conn.execute(
                "SELECT fingerprint, COUNT(*) FROM entries"
                " GROUP BY fingerprint ORDER BY fingerprint"
            ):
                info["fingerprints"][fingerprint] = count
        except sqlite3.Error as exc:
            self._fail(exc)
        info["load_errors"] = self.load_errors
        return info

    # -------------------------------------------------------- export/import --

    def export_rows(self) -> dict:
        """A portable dump of the store (see ``repro cache export``)."""
        conn = self._connect()
        rows: list = []
        if conn is not None:
            try:
                rows = conn.execute(
                    "SELECT fingerprint, kind, key, payload, hit_count, last_used, created"
                    " FROM entries ORDER BY last_used ASC, rowid ASC"
                ).fetchall()
            except sqlite3.Error as exc:
                self._fail(exc)
        return {"schema_version": _schema_version(), "rows": rows}

    def import_rows(self, dump: dict) -> int:
        """Merge a dump produced by :meth:`export_rows` into this store.

        Rows whose key already exists keep the *larger* hit count and the
        *newer* recency (``max`` merge), so importing a fleet member's cache
        never makes existing entries look colder.  A dump with a different
        schema version is refused (0 rows, counted as a load error).
        """
        if dump.get("schema_version") != _schema_version():
            log.warning(
                "cache import into %s refused: dump schema version %r != %r",
                self.path,
                dump.get("schema_version"),
                _schema_version(),
            )
            self.load_errors += 1
            return 0
        rows = dump.get("rows", [])
        if not rows:
            return 0
        conn = self._connect()
        if conn is None:
            return 0
        try:
            conn.executemany(
                "INSERT INTO entries"
                " (fingerprint, kind, key, payload, hit_count, last_used, created)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT (fingerprint, kind, key) DO UPDATE SET"
                "  hit_count = max(hit_count, excluded.hit_count),"
                "  last_used = max(last_used, excluded.last_used)",
                rows,
            )
            conn.commit()
        except sqlite3.Error as exc:
            self._fail(exc)
            return 0
        return len(rows)


def _schema_version() -> int:
    """The current schema version (indirect so tests can monkeypatch it)."""
    import repro.cache.store as _self

    return _self.CACHE_SCHEMA_VERSION
