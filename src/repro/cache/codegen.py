"""Process-wide cache of code-generated variant matchers.

The columnar group kernel (:mod:`repro.sl.kernels`) decides candidate
variants with *generated* matchers: for each ``(predicate, arity, root
position)`` skeleton and pinned-position signature it emits a small Python
source fragment that unrolls the slot comparisons and the deferred-endgame
dispatch into straight-line code, ``exec``-compiles it once and reuses the
functions for the life of the process -- the same discipline as the AST
intern tables, but for executable code.

Like every persistent artifact derived from predicate definitions (see
:mod:`repro.cache.tier`), entries are namespaced by the registry
fingerprint (:func:`repro.cache.fingerprint.registry_fingerprint`): a
checker built over a different predicate registry can never be served a
matcher generated for another one, and a definition change simply starts a
fresh namespace.  The generated source only mentions slot positions and
names, so this is defence in depth rather than a correctness requirement
today -- the key shape is what guarantees it stays true as matchers grow.

Matchers come in pairs:

``match(entry, values, concrete, view, discharge)``
    The full scan matcher, a drop-in for the closures of
    ``repro.sl.checker._compile_matcher``: pinned slots must agree with the
    entry's stored values (an unbound ``None`` slot is compatible with
    anything), then entries carrying deferred pure goals re-run the
    endgame.  Returns ``(matched, final_env)``.

``endgame(entry, concrete, view, discharge)``
    The deferred-goal endgame alone: decode the entry's environment, bind
    the pinned slot names that the leaf left unbound to the variant's
    concrete values, and re-run ``_discharge_deferred``.  Returns the
    witness environment or ``None``.  The kernel calls this directly for
    entries found through the posting-list indexes -- their slot
    compatibility is already guaranteed by construction.
"""

from __future__ import annotations

#: (fingerprint, predicate, arity, root position, positions, names) ->
#: (match, endgame).  Process-wide and unbounded: signatures are a function
#: of the predicate library, not of the workload, so the population is small
#: (tens of entries across the full Table 1 suite).
_MATCHERS: dict[tuple, tuple] = {}


def matcher_for(
    space: str,
    predicate: str,
    arity: int,
    root_position: int,
    positions: tuple[int, ...],
    names: tuple[str, ...],
) -> tuple:
    """The ``(match, endgame)`` pair for one pinned-position signature.

    ``space`` is the owning registry's fingerprint; ``positions`` the slot
    positions the variants of the bucket pin, ``names`` the corresponding
    slot variable names (``?wN`` by construction -- the root slot is never
    pinned).  Generated and compiled on first request, then served from the
    process-wide cache.
    """
    key = (space, predicate, arity, root_position, positions, names)
    cached = _MATCHERS.get(key)
    if cached is None:
        source = matcher_source(positions, names)
        namespace: dict = {}
        filename = f"<repro-matcher {predicate}/{arity}@{root_position} pins={positions}>"
        exec(compile(source, filename, "exec"), namespace)
        cached = (namespace["match"], namespace["endgame"])
        _MATCHERS[key] = cached
    return cached


def matcher_source(positions: tuple[int, ...], names: tuple[str, ...]) -> str:
    """The generated source for one signature (also used by tests/docs).

    ``endgame`` is defined first so ``match`` can call it through the shared
    exec namespace; both unroll their loops -- one comparison / one binding
    statement per pinned slot, no iteration, no tuple zipping.
    """
    lines = ["def endgame(entry, concrete, view, discharge):"]
    lines.append("    env = view.decode_env(entry.env)")
    for index, name in enumerate(names):
        lines.append(f"    if env.get({name!r}) is None:")
        lines.append(f"        env[{name!r}] = concrete[{index}]")
    lines.append("    return discharge(list(entry.deferred), env, entry.unknowns)")
    lines.append("")
    lines.append("")
    lines.append("def match(entry, values, concrete, view, discharge):")
    if positions:
        lines.append("    entry_values = entry.values")
        for index, position in enumerate(positions):
            lines.append(f"    slot = entry_values[{position}]")
            lines.append(f"    if slot is not None and slot != values[{index}]:")
            lines.append("        return False, None")
    lines.append("    if entry.deferred is None:")
    lines.append("        return True, None")
    lines.append("    final_env = endgame(entry, concrete, view, discharge)")
    lines.append("    return final_env is not None, final_env")
    lines.append("")
    return "\n".join(lines)


def codegen_cache_info() -> dict[str, int]:
    """Size of the process-wide matcher cache (observability/tests)."""
    return {"entries": len(_MATCHERS)}


def clear_codegen_cache() -> None:
    """Drop every generated matcher (tests only; the cache self-heals)."""
    _MATCHERS.clear()
