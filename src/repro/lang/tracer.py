"""Trace collection: breakpoints, snapshots and the ``CollectModels`` phase.

The paper drives the program under LLDB, sets breakpoints at the locations of
interest and snapshots the stack and the reachable heap whenever a breakpoint
is hit.  :class:`Tracer` plays that role for heaplang: it observes the
interpreter, converts the current frame and heap into a
:class:`~repro.sl.model.StackHeapModel` and groups the snapshots by location.

A snapshot contains

* the values of all in-scope variables (parameters and assigned locals),
* the ghost variable ``res`` at return locations,
* every heap cell reachable from a pointer-valued stack variable -- including
  cells that have already been ``free``d (the debugger still sees their
  contents; the model records them in ``freed_addresses`` so the evaluation
  can classify downstream invariants as spurious, as Table 1 does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.lang.ast import Function, Program
from repro.lang.errors import HeapLangError
from repro.lang.heap import RuntimeHeap
from repro.lang.interp import Frame, Interpreter, InterpreterConfig
from repro.lang.types import is_pointer_type
from repro.sl.model import Heap, HeapCell, StackHeapModel

#: A test case builds its input data structures inside a fresh runtime heap
#: and returns the argument values for the function under analysis.
TestCase = Callable[[RuntimeHeap], Sequence[int]]


@dataclass(frozen=True)
class Location:
    """A program location: a function name plus a location name within it."""

    function: str
    name: str

    def __str__(self) -> str:
        return f"{self.function}:{self.name}"

    @staticmethod
    def parse(text: str) -> "Location":
        """Parse ``"function:location"`` back into a :class:`Location`."""
        function, _, name = text.partition(":")
        return Location(function, name)


@dataclass(frozen=True)
class TraceEvent:
    """One breakpoint hit: the location and the captured stack-heap model."""

    location: Location
    model: StackHeapModel


@dataclass
class RunOutcome:
    """What happened when one test case was executed."""

    crashed: bool = False
    timed_out: bool = False
    error: str | None = None
    result: int | None = None


class Tracer:
    """Observes the interpreter and captures stack-heap models at breakpoints."""

    def __init__(
        self,
        structs,
        breakpoints: Iterable[Location] | None = None,
        max_events: int = 10_000,
    ):
        self.structs = structs
        self.breakpoints = set(breakpoints) if breakpoints is not None else None
        self.max_events = max_events
        self.events: list[TraceEvent] = []

    # -- observer interface -----------------------------------------------------

    def on_location(
        self,
        function: Function,
        location: str,
        frame: Frame,
        heap: RuntimeHeap,
        result: int | None = None,
    ) -> None:
        """Interpreter callback: snapshot the state if a breakpoint matches."""
        where = Location(function.name, location)
        if self.breakpoints is not None and where not in self.breakpoints:
            return
        if len(self.events) >= self.max_events:
            return
        self.events.append(TraceEvent(where, self.snapshot(frame, heap, result)))

    # -- snapshotting --------------------------------------------------------------

    def snapshot(
        self, frame: Frame, heap: RuntimeHeap, result: int | None = None
    ) -> StackHeapModel:
        """Convert the current frame and heap into a stack-heap model."""
        stack: dict[str, int] = dict(frame.values)
        var_types: dict[str, str] = dict(frame.types)
        if result is not None:
            stack["res"] = result
            # The result type is unknown here; leave it untyped so the model
            # treats it as a pointer when it holds an address.
        roots = [
            value
            for name, value in stack.items()
            if value != 0
            and (
                name == "res"
                or var_types.get(name) is None
                or is_pointer_type(var_types.get(name, ""))
            )
        ]
        reachable = heap.reachable(roots, include_freed=True)
        cells: dict[int, HeapCell] = {}
        freed: set[int] = set()
        for address in reachable:
            struct = self.structs.get(heap.type_of(address))
            values = heap.cell(address)
            ordered = [(name, values[name]) for name in struct.field_names]
            cells[address] = HeapCell(struct.name, ordered)
            if heap.is_freed(address):
                freed.add(address)
        return StackHeapModel(stack, Heap(cells), var_types, freed)

    # -- grouping -------------------------------------------------------------------

    def models_at(self, location: Location) -> list[StackHeapModel]:
        """All captured models at the given location, in capture order."""
        return [event.model for event in self.events if event.location == location]

    def locations_seen(self) -> list[Location]:
        """Locations that were actually reached, in first-hit order."""
        seen: list[Location] = []
        for event in self.events:
            if event.location not in seen:
                seen.append(event.location)
        return seen


@dataclass
class TraceCollection:
    """The result of running a test suite under the tracer."""

    events: list[TraceEvent] = field(default_factory=list)
    outcomes: list[RunOutcome] = field(default_factory=list)
    #: Events grouped per test-case run (parallel to ``outcomes``).
    runs: list[list[TraceEvent]] = field(default_factory=list)

    def models_at(self, location: Location) -> list[StackHeapModel]:
        """All models captured at ``location`` across every run."""
        return [event.model for event in self.events if event.location == location]

    def locations(self) -> list[Location]:
        """All locations reached by at least one run, in first-hit order."""
        seen: list[Location] = []
        for event in self.events:
            if event.location not in seen:
                seen.append(event.location)
        return seen

    def total_models(self) -> int:
        """Total number of captured stack-heap models."""
        return len(self.events)

    def crashed_runs(self) -> int:
        """Number of test cases that ended in a runtime error."""
        return sum(1 for outcome in self.outcomes if outcome.crashed)

    def without_crashed_runs(self) -> "TraceCollection":
        """A copy of the collection with the events of crashed runs dropped.

        The paper's LLDB-batch workflow obtained no usable traces from
        crashing programs; this models that by emptying the event list of
        every crashed run (the run slot itself is kept so ``runs`` stays
        parallel to ``outcomes``).  The receiver is left untouched -- the
        result shares the (immutable) events and outcomes but owns its own
        lists.
        """
        kept_runs: list[list[TraceEvent]] = []
        kept_events: list[TraceEvent] = []
        for run, outcome in zip(self.runs, self.outcomes):
            if outcome.crashed:
                kept_runs.append([])
            else:
                kept_runs.append(list(run))
                kept_events.extend(run)
        return TraceCollection(
            events=kept_events, outcomes=list(self.outcomes), runs=kept_runs
        )

    def has_freed_cell_models(self, location: Location) -> bool:
        """True when any model at ``location`` observed freed cells."""
        return any(model.has_freed_cells() for model in self.models_at(location))


def collect_models(
    program: Program,
    function_name: str,
    test_cases: Sequence[TestCase],
    breakpoints: Iterable[Location] | None = None,
    config: InterpreterConfig | None = None,
) -> TraceCollection:
    """Run every test case under the tracer and collect stack-heap models.

    This is the ``CollectModels`` step of Algorithm 1.  Each test case gets a
    fresh heap; crashes and timeouts are recorded (the events captured before
    the crash are kept, mirroring what a debugger session would have seen).
    """
    collection = TraceCollection()
    for test_case in test_cases:
        tracer = Tracer(program.structs, breakpoints)
        interpreter = Interpreter(program, observer=tracer, config=config)
        heap = RuntimeHeap(program.structs)
        outcome = RunOutcome()
        try:
            args = list(test_case(heap))
            outcome.result = interpreter.run(function_name, args, heap)
        except HeapLangError as error:
            outcome.crashed = True
            outcome.timed_out = "steps" in str(error) or "depth" in str(error)
            outcome.error = f"{type(error).__name__}: {error}"
        collection.events.extend(tracer.events)
        collection.runs.append(list(tracer.events))
        collection.outcomes.append(outcome)
    return collection
