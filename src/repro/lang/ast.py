"""Abstract syntax of heaplang.

heaplang is deliberately close to the C subset used by the paper's
benchmarks: structs with pointer and integer fields, heap allocation and
deallocation, field loads/stores, conditionals, while loops, (recursive)
function calls and returns.  Programs are built directly as Python objects,
usually through the helpers in :mod:`repro.lang.builder`.

Locations of interest (where SLING collects stack-heap models) are:

* ``entry`` -- function entry, after parameter binding;
* ``loop#<i>`` -- the head of the ``i``-th ``while`` loop of the function,
  captured on every iteration (and once when the loop is first reached);
* ``ret#<i>`` -- the ``i``-th ``return`` statement, where the ghost variable
  ``res`` holds the returned value;
* explicit :class:`Label` statements (e.g. ``L1`` in the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Sequence


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of heaplang expressions."""


@dataclass(frozen=True)
class V(Expr):
    """A variable reference."""

    name: str


@dataclass(frozen=True)
class I(Expr):
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class Null(Expr):
    """The null pointer (``NULL``)."""


@dataclass(frozen=True)
class FieldAccess(Expr):
    """A field load ``obj->field``."""

    obj: Expr
    field: str


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; ``op`` is one of ``+ - * == != < <= > >= && ||``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation; ``op`` is ``!`` or ``-``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A (possibly recursive) function call."""

    func: str
    args: tuple[Expr, ...]

    def __init__(self, func: str, args: Iterable[Expr] = ()):
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(args))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of heaplang statements."""


@dataclass
class Assign(Stmt):
    """``var = expr;`` -- declares the variable on first assignment."""

    var: str
    expr: Expr
    #: Optional declared type of the variable (e.g. ``"DllNode*"``); when
    #: omitted the interpreter infers it from the assigned value.
    var_type: str | None = None


@dataclass
class Store(Stmt):
    """``obj->field = expr;``"""

    obj: Expr
    field: str
    expr: Expr


@dataclass
class Alloc(Stmt):
    """``var = malloc(sizeof(Type));`` with optional field initialisers."""

    var: str
    type_name: str
    inits: dict[str, Expr] = dataclass_field(default_factory=dict)


@dataclass
class Free(Stmt):
    """``free(expr);`` -- the cell contents remain observable (see the paper, Section 5.3)."""

    expr: Expr


@dataclass
class If(Stmt):
    """``if (cond) { then } else { els }``"""

    cond: Expr
    then: list[Stmt]
    els: list[Stmt] = dataclass_field(default_factory=list)


@dataclass
class While(Stmt):
    """``while (cond) { body }`` -- its head is a trace location (``loop#<i>``)."""

    cond: Expr
    body: list[Stmt]
    #: Location name of the loop head, assigned by :meth:`Function.finalize`.
    label: str | None = None


@dataclass
class Return(Stmt):
    """``return expr;`` -- a trace location (``ret#<i>``) with ghost variable ``res``."""

    expr: Expr | None = None
    #: Location name of this return, assigned by :meth:`Function.finalize`.
    label: str | None = None


@dataclass
class Label(Stmt):
    """A named program location (like ``[L1]`` in the paper's Figure 1)."""

    name: str


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (e.g. a bare call)."""

    expr: Expr


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A heaplang function definition."""

    name: str
    params: list[tuple[str, str]]
    ret_type: str | None
    body: list[Stmt]

    def __post_init__(self) -> None:
        self.finalize()

    def finalize(self) -> None:
        """Assign stable location names to loops and return statements."""
        loop_counter = 0
        return_counter = 0

        def visit(stmts: Sequence[Stmt]) -> None:
            nonlocal loop_counter, return_counter
            for stmt in stmts:
                if isinstance(stmt, While):
                    if stmt.label is None:
                        stmt.label = f"loop#{loop_counter}"
                    loop_counter += 1
                    visit(stmt.body)
                elif isinstance(stmt, Return):
                    if stmt.label is None:
                        stmt.label = f"ret#{return_counter}"
                    return_counter += 1
                elif isinstance(stmt, If):
                    visit(stmt.then)
                    visit(stmt.els)

        visit(self.body)

    # -- location helpers ---------------------------------------------------------

    def locations(self) -> list[str]:
        """All trace locations of the function (entry, labels, loops, returns)."""
        found: list[str] = ["entry"]

        def visit(stmts: Sequence[Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, Label):
                    found.append(stmt.name)
                elif isinstance(stmt, While):
                    if stmt.label is not None:
                        found.append(stmt.label)
                    visit(stmt.body)
                elif isinstance(stmt, Return):
                    if stmt.label is not None:
                        found.append(stmt.label)
                elif isinstance(stmt, If):
                    visit(stmt.then)
                    visit(stmt.els)

        visit(self.body)
        return found

    def return_locations(self) -> list[str]:
        """The locations of all return statements."""
        return [loc for loc in self.locations() if loc.startswith("ret#")]

    def loop_locations(self) -> list[str]:
        """The locations of all loop heads."""
        return [loc for loc in self.locations() if loc.startswith("loop#")]

    def statement_count(self) -> int:
        """Number of statements (a lines-of-code proxy for Table 1)."""

        def count(stmts: Sequence[Stmt]) -> int:
            total = 0
            for stmt in stmts:
                total += 1
                if isinstance(stmt, If):
                    total += count(stmt.then) + count(stmt.els)
                elif isinstance(stmt, While):
                    total += count(stmt.body)
            return total

        return count(self.body)

    def pointer_params(self) -> list[str]:
        """Names of the pointer-typed parameters, in declaration order."""
        return [name for name, type_name in self.params if type_name.endswith("*")]


@dataclass
class Program:
    """A heaplang program: structure types plus function definitions."""

    structs: "StructRegistry"
    functions: dict[str, Function]

    def __init__(self, structs: "StructRegistry", functions: Iterable[Function]):
        self.structs = structs
        self.functions = {func.name: func for func in functions}

    def get_function(self, name: str) -> Function:
        """Look up a function definition by name."""
        from repro.lang.errors import UndefinedFunction

        try:
            return self.functions[name]
        except KeyError:
            raise UndefinedFunction(f"unknown function {name!r}") from None

    def statement_count(self) -> int:
        """Total statements across all functions (a lines-of-code proxy)."""
        return sum(func.statement_count() for func in self.functions.values())


# Imported late to avoid a module cycle in type annotations.
from repro.lang.types import StructRegistry  # noqa: E402  (re-export for typing)
