"""heaplang: a small C-like heap-manipulating language with a tracing debugger.

The paper evaluates SLING on C programs executed under the LLDB debugger.
This package provides the equivalent substrate for the reproduction:

* :mod:`repro.lang.types` -- structure (record) type definitions,
* :mod:`repro.lang.ast` -- the abstract syntax of heaplang programs,
* :mod:`repro.lang.builder` -- concise constructors used by the benchmarks,
* :mod:`repro.lang.heap` -- the runtime heap / allocator,
* :mod:`repro.lang.interp` -- a big-step interpreter,
* :mod:`repro.lang.tracer` -- breakpoints and stack-heap snapshot collection
  (the ``CollectModels`` phase of Algorithm 1).
"""

from repro.lang.types import StructDef, StructRegistry, standard_structs
from repro.lang.ast import (
    Expr,
    V,
    I,
    Null,
    FieldAccess,
    BinOp,
    UnOp,
    Call,
    Stmt,
    Assign,
    Store,
    Alloc,
    Free,
    If,
    While,
    Return,
    Label,
    ExprStmt,
    Function,
    Program,
)
from repro.lang.heap import RuntimeHeap
from repro.lang.interp import Interpreter, InterpreterConfig
from repro.lang.tracer import Tracer, TraceEvent, Location, collect_models
from repro.lang.errors import (
    HeapLangError,
    NullDereference,
    SegmentationFault,
    DoubleFree,
    InterpreterTimeout,
    UndefinedVariable,
    UndefinedFunction,
)

__all__ = [
    "StructDef",
    "StructRegistry",
    "standard_structs",
    "Expr",
    "V",
    "I",
    "Null",
    "FieldAccess",
    "BinOp",
    "UnOp",
    "Call",
    "Stmt",
    "Assign",
    "Store",
    "Alloc",
    "Free",
    "If",
    "While",
    "Return",
    "Label",
    "ExprStmt",
    "Function",
    "Program",
    "RuntimeHeap",
    "Interpreter",
    "InterpreterConfig",
    "Tracer",
    "TraceEvent",
    "Location",
    "collect_models",
    "HeapLangError",
    "NullDereference",
    "SegmentationFault",
    "DoubleFree",
    "InterpreterTimeout",
    "UndefinedVariable",
    "UndefinedFunction",
]
