"""Structure (record) types of heaplang.

A :class:`StructDef` declares the fields of a heap-allocated record together
with their types.  Field types are either ``"int"`` or a pointer type written
``"<StructName>*"``; the distinction is what the tracer uses to decide which
field values to follow when computing the reachable heap of a snapshot.

:func:`standard_structs` returns the registry of every structure used by the
benchmark suite; its field names and order deliberately match
:data:`repro.sl.stdpreds.STRUCT_FIELDS` so that points-to atoms inferred from
traces line up with the predicate definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lang.errors import TypeMismatch


def is_pointer_type(type_name: str) -> bool:
    """True for pointer types (written with a trailing ``*``)."""
    return type_name.endswith("*")


def pointee(type_name: str) -> str:
    """The structure name a pointer type points to."""
    if not is_pointer_type(type_name):
        raise TypeMismatch(f"{type_name!r} is not a pointer type")
    return type_name[:-1]


@dataclass(frozen=True)
class StructDef:
    """A structure type: an ordered list of ``(field name, field type)`` pairs."""

    name: str
    fields: tuple[tuple[str, str], ...]

    def __init__(self, name: str, fields: Iterable[tuple[str, str]]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", tuple(fields))

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(name for name, _ in self.fields)

    def field_type(self, field_name: str) -> str:
        """Type of a field; raises :class:`TypeMismatch` for unknown fields."""
        for name, type_name in self.fields:
            if name == field_name:
                return type_name
        raise TypeMismatch(f"struct {self.name} has no field {field_name!r}")

    def has_field(self, field_name: str) -> bool:
        """True when the struct declares the given field."""
        return any(name == field_name for name, _ in self.fields)

    def pointer_fields(self) -> tuple[str, ...]:
        """Names of the pointer-typed fields."""
        return tuple(name for name, type_name in self.fields if is_pointer_type(type_name))

    def default_values(self) -> dict[str, int]:
        """Zero-initialised field values (``nil`` / ``0``), as ``malloc``+memset would give."""
        return {name: 0 for name, _ in self.fields}


class StructRegistry:
    """A collection of structure definitions, looked up by name."""

    def __init__(self, structs: Iterable[StructDef] = ()):
        self._structs: dict[str, StructDef] = {}
        for struct in structs:
            self.add(struct)

    def add(self, struct: StructDef) -> None:
        """Register (or replace) a structure definition."""
        self._structs[struct.name] = struct

    def get(self, name: str) -> StructDef:
        """Look up a structure definition by name."""
        try:
            return self._structs[name]
        except KeyError:
            raise TypeMismatch(f"unknown struct type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._structs

    def __iter__(self) -> Iterator[StructDef]:
        return iter(self._structs.values())

    def __len__(self) -> int:
        return len(self._structs)

    def field_name_table(self) -> dict[str, tuple[str, ...]]:
        """Mapping of struct name to field names (for the SL pretty printer)."""
        return {struct.name: struct.field_names for struct in self}

    def merged_with(self, other: "StructRegistry") -> "StructRegistry":
        """Union of two registries (``other`` wins on name clashes)."""
        merged = StructRegistry(self)
        for struct in other:
            merged.add(struct)
        return merged


def standard_structs() -> StructRegistry:
    """The structure types used across the benchmark suite.

    Field names and order mirror :data:`repro.sl.stdpreds.STRUCT_FIELDS`.
    """
    return StructRegistry(
        [
            StructDef("SllNode", [("next", "SllNode*")]),
            StructDef("SNode", [("next", "SNode*"), ("data", "int")]),
            StructDef("DllNode", [("next", "DllNode*"), ("prev", "DllNode*")]),
            StructDef("CNode", [("next", "CNode*"), ("data", "int")]),
            StructDef("TNode", [("left", "TNode*"), ("right", "TNode*")]),
            StructDef("BstNode", [("left", "BstNode*"), ("right", "BstNode*"), ("data", "int")]),
            StructDef(
                "AvlNode",
                [
                    ("left", "AvlNode*"),
                    ("right", "AvlNode*"),
                    ("data", "int"),
                    ("height", "int"),
                ],
            ),
            StructDef(
                "RbNode",
                [
                    ("left", "RbNode*"),
                    ("right", "RbNode*"),
                    ("color", "int"),
                    ("data", "int"),
                ],
            ),
            StructDef("PNode", [("left", "PNode*"), ("right", "PNode*"), ("data", "int")]),
            StructDef("QNode", [("next", "QNode*")]),
            StructDef("Queue", [("head", "QNode*"), ("tail", "QNode*")]),
            StructDef("GSNode", [("next", "GSNode*"), ("data", "int")]),
            StructDef("GNode", [("next", "GNode*"), ("prev", "GNode*"), ("data", "int")]),
            StructDef("NlNode", [("next", "NlNode*"), ("child", "SllNode*")]),
            StructDef(
                "BinNode",
                [
                    ("child", "BinNode*"),
                    ("sibling", "BinNode*"),
                    ("degree", "int"),
                    ("data", "int"),
                ],
            ),
            StructDef("SwNode", [("left", "SwNode*"), ("right", "SwNode*"), ("mark", "int")]),
            StructDef(
                "MemChunk",
                [("next", "MemChunk*"), ("prev", "MemChunk*"), ("size", "int")],
            ),
            StructDef(
                "IterNode",
                [("next", "IterNode*"), ("current", "SllNode*"), ("list", "SllNode*")],
            ),
        ]
    )
