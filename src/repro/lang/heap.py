"""The heaplang runtime heap (allocator).

Addresses are positive integers; ``0`` is the null pointer.  ``free`` marks a
cell as deallocated but keeps its contents observable, mirroring the
behaviour the paper reports for LLDB on real C programs ("a ``free(x)``
statement does not immediately free the pointer ``x`` so LLDB still observes
(now invalid) heap values", Section 5.3).  The tracer uses
:meth:`RuntimeHeap.is_freed` to tag models built from such cells so the
evaluation can classify the resulting invariants as spurious, exactly as
Table 1 does.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.lang.errors import DoubleFree, NullDereference, SegmentationFault, TypeMismatch
from repro.lang.types import StructRegistry


class RuntimeHeap:
    """A growable heap of typed cells with C-like allocation semantics."""

    #: First address handed out by the allocator; spaced to look address-like.
    _BASE_ADDRESS = 0x1000
    _ADDRESS_STRIDE = 0x10

    def __init__(self, structs: StructRegistry):
        self.structs = structs
        self._cells: dict[int, dict[str, int]] = {}
        self._types: dict[int, str] = {}
        self._freed: set[int] = set()
        self._next = self._BASE_ADDRESS

    # -- allocation -------------------------------------------------------------

    def alloc(self, type_name: str, inits: Mapping[str, int] | None = None) -> int:
        """Allocate a new cell of the given struct type and return its address."""
        struct = self.structs.get(type_name)
        values = struct.default_values()
        if inits:
            for field_name, value in inits.items():
                if not struct.has_field(field_name):
                    raise TypeMismatch(
                        f"struct {type_name} has no field {field_name!r}"
                    )
                values[field_name] = value
        address = self._next
        self._next += self._ADDRESS_STRIDE
        self._cells[address] = values
        self._types[address] = type_name
        return address

    def free(self, address: int) -> None:
        """Deallocate a cell; contents stay readable (see module docstring)."""
        if address == 0:
            # free(NULL) is a no-op in C.
            return
        if address not in self._cells or address in self._freed:
            raise DoubleFree(f"free of unallocated address {address:#x}")
        self._freed.add(address)

    # -- access -----------------------------------------------------------------

    def _check_address(self, address: int, context: str) -> None:
        if address == 0:
            raise NullDereference(f"{context} through NULL pointer")
        if address not in self._cells:
            raise SegmentationFault(f"{context} at unallocated address {address:#x}")

    def read(self, address: int, field_name: str) -> int:
        """Read ``address->field``.  Reads of freed cells are permitted (UB in C)."""
        self._check_address(address, f"read of field {field_name!r}")
        cell = self._cells[address]
        if field_name not in cell:
            raise TypeMismatch(
                f"cell {address:#x} of type {self._types[address]} has no field {field_name!r}"
            )
        return cell[field_name]

    def write(self, address: int, field_name: str, value: int) -> None:
        """Write ``address->field = value``."""
        self._check_address(address, f"write of field {field_name!r}")
        cell = self._cells[address]
        if field_name not in cell:
            raise TypeMismatch(
                f"cell {address:#x} of type {self._types[address]} has no field {field_name!r}"
            )
        cell[field_name] = value

    # -- queries -----------------------------------------------------------------

    def is_allocated(self, address: int) -> bool:
        """True when the address holds a live (not freed) cell."""
        return address in self._cells and address not in self._freed

    def is_freed(self, address: int) -> bool:
        """True when the address was allocated and later freed."""
        return address in self._freed

    def exists(self, address: int) -> bool:
        """True when the address was ever allocated (live or freed)."""
        return address in self._cells

    def type_of(self, address: int) -> str:
        """The struct type of the cell at ``address``."""
        self._check_address(address, "type query")
        return self._types[address]

    def cell(self, address: int) -> dict[str, int]:
        """A copy of the field values of the cell at ``address``."""
        self._check_address(address, "cell query")
        return dict(self._cells[address])

    def addresses(self) -> frozenset[int]:
        """All addresses ever allocated (live and freed)."""
        return frozenset(self._cells)

    def live_addresses(self) -> frozenset[int]:
        """Addresses of live (not freed) cells."""
        return frozenset(addr for addr in self._cells if addr not in self._freed)

    def live_count(self) -> int:
        """Number of live cells (used by leak-detection assertions in tests)."""
        return len(self._cells) - len(self._freed)

    def reachable(self, roots: Iterable[int], include_freed: bool = True) -> frozenset[int]:
        """Cells reachable from ``roots`` by following pointer fields.

        ``include_freed`` keeps freed-but-referenced cells in the result,
        matching what a debugger would observe.
        """
        seen: set[int] = set()
        stack = [addr for addr in roots if addr in self._cells]
        while stack:
            address = stack.pop()
            if address in seen:
                continue
            if not include_freed and address in self._freed:
                continue
            seen.add(address)
            struct = self.structs.get(self._types[address])
            cell = self._cells[address]
            for field_name in struct.pointer_fields():
                value = cell.get(field_name, 0)
                if value != 0 and value in self._cells and value not in seen:
                    stack.append(value)
        return frozenset(seen)
