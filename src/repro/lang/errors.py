"""Runtime errors raised by the heaplang interpreter.

The benchmark suite contains intentionally buggy programs (the paper marks
them with ``*``); these surface as the exceptions below, which play the role
of segmentation faults and other runtime crashes of the original C programs.
"""


class HeapLangError(Exception):
    """Base class for all heaplang runtime and definition errors."""


class NullDereference(HeapLangError):
    """A field of the null pointer was read or written."""


class SegmentationFault(HeapLangError):
    """An unallocated (or out-of-range) address was dereferenced."""


class DoubleFree(HeapLangError):
    """``free`` was called on an address that is not currently allocated."""


class UseAfterFree(HeapLangError):
    """A freed cell was written through (reads are permitted, mirroring C/LLDB)."""


class InterpreterTimeout(HeapLangError):
    """The program exceeded its execution step budget (e.g. a cyclic-list loop)."""


class UndefinedVariable(HeapLangError):
    """A variable was read before being assigned."""


class UndefinedFunction(HeapLangError):
    """A call referred to a function that is not part of the program."""


class TypeMismatch(HeapLangError):
    """A structure/field access is inconsistent with the declared struct types."""
