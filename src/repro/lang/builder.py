"""Concise constructors for writing heaplang programs.

The benchmark suite defines well over a hundred functions; these helpers keep
those definitions close to the original C in shape and length.  Example (the
paper's Figure 1)::

    concat = Function(
        "concat", [("x", "DllNode*"), ("y", "DllNode*")], "DllNode*",
        [
            Label("L1"),
            If(eq(v("x"), null()), [
                Label("L2"),
                Return(v("y")),
            ], [
                Assign("tmp", call("concat", field(v("x"), "next"), v("y"))),
                Store(v("x"), "next", v("tmp")),
                If(ne(v("tmp"), null()), [Store(v("tmp"), "prev", v("x"))]),
                Label("L3"),
                Return(v("x")),
            ]),
        ],
    )
"""

from __future__ import annotations

from repro.lang.ast import (
    BinOp,
    Call,
    Expr,
    FieldAccess,
    I,
    Null,
    UnOp,
    V,
)

__all__ = [
    "v",
    "i",
    "null",
    "field",
    "call",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "add",
    "sub",
    "mul",
    "and_",
    "or_",
    "not_",
    "is_null",
    "not_null",
]


def v(name: str) -> V:
    """A variable reference."""
    return V(name)


def i(value: int) -> I:
    """An integer literal."""
    return I(value)


def null() -> Null:
    """The null pointer."""
    return Null()


def field(obj: Expr | str, name: str) -> FieldAccess:
    """``obj->name``; a string ``obj`` is treated as a variable."""
    return FieldAccess(v(obj) if isinstance(obj, str) else obj, name)


def call(func: str, *args: Expr) -> Call:
    """A function call expression."""
    return Call(func, args)


def eq(left: Expr, right: Expr) -> BinOp:
    """``left == right``"""
    return BinOp("==", left, right)


def ne(left: Expr, right: Expr) -> BinOp:
    """``left != right``"""
    return BinOp("!=", left, right)


def lt(left: Expr, right: Expr) -> BinOp:
    """``left < right``"""
    return BinOp("<", left, right)


def le(left: Expr, right: Expr) -> BinOp:
    """``left <= right``"""
    return BinOp("<=", left, right)


def gt(left: Expr, right: Expr) -> BinOp:
    """``left > right``"""
    return BinOp(">", left, right)


def ge(left: Expr, right: Expr) -> BinOp:
    """``left >= right``"""
    return BinOp(">=", left, right)


def add(left: Expr, right: Expr) -> BinOp:
    """``left + right``"""
    return BinOp("+", left, right)


def sub(left: Expr, right: Expr) -> BinOp:
    """``left - right``"""
    return BinOp("-", left, right)


def mul(left: Expr, right: Expr) -> BinOp:
    """``left * right``"""
    return BinOp("*", left, right)


def and_(left: Expr, right: Expr) -> BinOp:
    """``left && right``"""
    return BinOp("&&", left, right)


def or_(left: Expr, right: Expr) -> BinOp:
    """``left || right``"""
    return BinOp("||", left, right)


def not_(operand: Expr) -> UnOp:
    """``!operand``"""
    return UnOp("!", operand)


def is_null(expr: Expr | str) -> BinOp:
    """``expr == NULL``; a string is treated as a variable."""
    return eq(v(expr) if isinstance(expr, str) else expr, null())


def not_null(expr: Expr | str) -> BinOp:
    """``expr != NULL``; a string is treated as a variable."""
    return ne(v(expr) if isinstance(expr, str) else expr, null())
