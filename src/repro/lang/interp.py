"""A big-step interpreter for heaplang.

The interpreter executes a :class:`~repro.lang.ast.Program` over a
:class:`~repro.lang.heap.RuntimeHeap`.  It exposes *trace hooks*: an optional
observer (the :class:`~repro.lang.tracer.Tracer`) is notified whenever
execution reaches a location of interest -- function entries, explicit
labels, loop heads and return statements -- which is how SLING collects
stack-heap models (Algorithm 1, ``CollectModels``).

Values are plain integers: heap addresses, the null pointer ``0`` and
integer data share one value space, exactly as in the paper's stack-heap
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.lang.ast import (
    Alloc,
    Assign,
    BinOp,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    Free,
    Function,
    I,
    If,
    Label,
    Null,
    Program,
    Return,
    Stmt,
    Store,
    UnOp,
    V,
    While,
)
from repro.lang.errors import (
    HeapLangError,
    InterpreterTimeout,
    UndefinedVariable,
)
from repro.lang.heap import RuntimeHeap
from repro.lang.types import is_pointer_type


class TraceObserver(Protocol):
    """Interface the tracer implements to receive location notifications."""

    def on_location(
        self,
        function: Function,
        location: str,
        frame: "Frame",
        heap: RuntimeHeap,
        result: int | None = None,
    ) -> None:
        """Called whenever execution reaches a location of interest."""


@dataclass
class Frame:
    """One activation record: variable values and (inferred) variable types."""

    values: dict[str, int] = field(default_factory=dict)
    types: dict[str, str] = field(default_factory=dict)

    def bind(self, name: str, value: int, type_name: str | None = None) -> None:
        """Bind (or rebind) a variable, recording its type when known."""
        self.values[name] = value
        if type_name is not None:
            self.types[name] = type_name

    def lookup(self, name: str) -> int:
        """Read a variable; raises :class:`UndefinedVariable` when unbound."""
        try:
            return self.values[name]
        except KeyError:
            raise UndefinedVariable(f"variable {name!r} read before assignment") from None


class _ReturnSignal(Exception):
    """Internal control-flow signal carrying a function's return value."""

    def __init__(self, value: int | None):
        super().__init__(value)
        self.value = value


@dataclass
class InterpreterConfig:
    """Execution limits for the interpreter."""

    #: Maximum number of executed statements/expressions before aborting.
    #: Needed because some benchmark inputs (e.g. cyclic lists fed to
    #: ``concat``) make the original C programs diverge.
    max_steps: int = 200_000
    #: Maximum call depth (recursion guard).
    max_call_depth: int = 2_000


class Interpreter:
    """Executes heaplang programs with optional trace observation."""

    def __init__(
        self,
        program: Program,
        observer: TraceObserver | None = None,
        config: InterpreterConfig | None = None,
    ):
        self.program = program
        self.observer = observer
        self.config = config or InterpreterConfig()
        self._steps = 0
        self._depth = 0

    # ------------------------------------------------------------------- API --

    def run(self, function_name: str, args: Sequence[int], heap: RuntimeHeap) -> int | None:
        """Execute ``function_name(*args)`` on the given heap and return its result."""
        self._steps = 0
        self._depth = 0
        return self._call(self.program.get_function(function_name), list(args), heap)

    # -------------------------------------------------------------- execution --

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.config.max_steps:
            raise InterpreterTimeout(
                f"execution exceeded {self.config.max_steps} steps (likely a divergent loop)"
            )

    def _call(self, function: Function, args: list[int], heap: RuntimeHeap) -> int | None:
        if len(args) != len(function.params):
            raise HeapLangError(
                f"{function.name} expects {len(function.params)} arguments, got {len(args)}"
            )
        self._depth += 1
        if self._depth > self.config.max_call_depth:
            self._depth -= 1
            raise InterpreterTimeout(f"call depth exceeded {self.config.max_call_depth}")
        frame = Frame()
        for (name, type_name), value in zip(function.params, args):
            frame.bind(name, value, type_name)
        self._notify(function, "entry", frame, heap)
        try:
            self._exec_block(function.body, frame, heap, function)
            result: int | None = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self._depth -= 1
        return result

    def _exec_block(
        self, stmts: Sequence[Stmt], frame: Frame, heap: RuntimeHeap, function: Function
    ) -> None:
        for stmt in stmts:
            self._exec(stmt, frame, heap, function)

    def _exec(self, stmt: Stmt, frame: Frame, heap: RuntimeHeap, function: Function) -> None:
        self._tick()
        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr, frame, heap)
            type_name = stmt.var_type or self._infer_type(stmt.expr, frame, heap)
            frame.bind(stmt.var, value, type_name)
        elif isinstance(stmt, Store):
            address = self._eval(stmt.obj, frame, heap)
            value = self._eval(stmt.expr, frame, heap)
            heap.write(address, stmt.field, value)
        elif isinstance(stmt, Alloc):
            inits = {name: self._eval(expr, frame, heap) for name, expr in stmt.inits.items()}
            address = heap.alloc(stmt.type_name, inits)
            frame.bind(stmt.var, address, f"{stmt.type_name}*")
        elif isinstance(stmt, Free):
            heap.free(self._eval(stmt.expr, frame, heap))
        elif isinstance(stmt, If):
            if self._eval(stmt.cond, frame, heap) != 0:
                self._exec_block(stmt.then, frame, heap, function)
            else:
                self._exec_block(stmt.els, frame, heap, function)
        elif isinstance(stmt, While):
            while True:
                if stmt.label is not None:
                    self._notify(function, stmt.label, frame, heap)
                if self._eval(stmt.cond, frame, heap) == 0:
                    break
                self._exec_block(stmt.body, frame, heap, function)
                self._tick()
        elif isinstance(stmt, Return):
            value = None if stmt.expr is None else self._eval(stmt.expr, frame, heap)
            if stmt.label is not None:
                self._notify(function, stmt.label, frame, heap, result=value)
            raise _ReturnSignal(value)
        elif isinstance(stmt, Label):
            self._notify(function, stmt.name, frame, heap)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, frame, heap)
        else:  # pragma: no cover - defensive
            raise HeapLangError(f"unknown statement {stmt!r}")

    # -------------------------------------------------------------- expressions --

    def _eval(self, expr: Expr, frame: Frame, heap: RuntimeHeap) -> int:
        self._tick()
        if isinstance(expr, V):
            return frame.lookup(expr.name)
        if isinstance(expr, I):
            return expr.value
        if isinstance(expr, Null):
            return 0
        if isinstance(expr, FieldAccess):
            address = self._eval(expr.obj, frame, heap)
            return heap.read(address, expr.field)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, frame, heap)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, frame, heap)
            if expr.op == "!":
                return 0 if value != 0 else 1
            if expr.op == "-":
                return -value
            raise HeapLangError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Call):
            args = [self._eval(arg, frame, heap) for arg in expr.args]
            result = self._call(self.program.get_function(expr.func), args, heap)
            return 0 if result is None else result
        raise HeapLangError(f"unknown expression {expr!r}")

    def _eval_binop(self, expr: BinOp, frame: Frame, heap: RuntimeHeap) -> int:
        if expr.op == "&&":
            return 1 if self._eval(expr.left, frame, heap) != 0 and self._eval(expr.right, frame, heap) != 0 else 0
        if expr.op == "||":
            return 1 if self._eval(expr.left, frame, heap) != 0 or self._eval(expr.right, frame, heap) != 0 else 0
        left = self._eval(expr.left, frame, heap)
        right = self._eval(expr.right, frame, heap)
        operations: dict[str, Callable[[int, int], int]] = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "==": lambda a, b: 1 if a == b else 0,
            "!=": lambda a, b: 1 if a != b else 0,
            "<": lambda a, b: 1 if a < b else 0,
            "<=": lambda a, b: 1 if a <= b else 0,
            ">": lambda a, b: 1 if a > b else 0,
            ">=": lambda a, b: 1 if a >= b else 0,
        }
        try:
            return operations[expr.op](left, right)
        except KeyError:
            raise HeapLangError(f"unknown binary operator {expr.op!r}") from None

    # -------------------------------------------------------------- type inference --

    def _infer_type(self, expr: Expr, frame: Frame, heap: RuntimeHeap) -> str | None:
        """Best-effort static-ish type of an expression, used for snapshot typing."""
        if isinstance(expr, V):
            return frame.types.get(expr.name)
        if isinstance(expr, Null):
            return None
        if isinstance(expr, I):
            return "int"
        if isinstance(expr, FieldAccess):
            obj_type = self._infer_type(expr.obj, frame, heap)
            if obj_type and is_pointer_type(obj_type):
                struct_name = obj_type[:-1]
                if struct_name in self.program.structs:
                    struct = self.program.structs.get(struct_name)
                    if struct.has_field(expr.field):
                        return struct.field_type(expr.field)
            return None
        if isinstance(expr, Call):
            return self.program.get_function(expr.func).ret_type
        if isinstance(expr, (BinOp, UnOp)):
            return "int"
        return None

    # ------------------------------------------------------------------ tracing --

    def _notify(
        self,
        function: Function,
        location: str,
        frame: Frame,
        heap: RuntimeHeap,
        result: int | None = None,
    ) -> None:
        if self.observer is not None:
            self.observer.on_location(function, location, frame, heap, result)
