"""Evaluation harnesses regenerating the paper's Table 1 and Table 2."""

from repro.evaluation.table1 import CategoryRow, Table1Result, run_table1, format_table1
from repro.evaluation.table2 import Table2Row, Table2Result, run_table2, format_table2

__all__ = [
    "CategoryRow",
    "Table1Result",
    "run_table1",
    "format_table1",
    "Table2Row",
    "Table2Result",
    "run_table2",
    "format_table2",
]
