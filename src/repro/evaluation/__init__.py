"""Evaluation harnesses regenerating the paper's Table 1 and Table 2.

Both harnesses dispatch per-benchmark work through the batch-inference
engine (:mod:`repro.core.engine`); pass ``jobs=N`` to parallelize a sweep
without changing its results.
"""

from repro.evaluation.table1 import (
    CategoryRow,
    ProgramResult,
    Table1Result,
    evaluate_program,
    format_table1,
    run_table1,
)
from repro.evaluation.table2 import (
    BenchmarkComparison,
    PropertyOutcome,
    Table2Row,
    Table2Result,
    compare_benchmark,
    format_table2,
    run_table2,
)

__all__ = [
    "CategoryRow",
    "ProgramResult",
    "Table1Result",
    "evaluate_program",
    "run_table1",
    "format_table1",
    "BenchmarkComparison",
    "PropertyOutcome",
    "Table2Row",
    "Table2Result",
    "compare_benchmark",
    "run_table2",
    "format_table2",
]
