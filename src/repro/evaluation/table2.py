"""Table 2: SLING vs the S2-like static baseline on documented properties.

For every benchmark program, the documented properties (specifications and
loop invariants) are checked against

* SLING's inferred specification (dynamic analysis over the test inputs), and
* the simplified S2 baseline (:mod:`repro.baselines.s2`),

and each property is placed in one of the four buckets of the paper's
Table 2: found by Both, only by S2, only by SLING, or by Neither.

Per-benchmark comparisons are dispatched through the batch-inference engine
(:mod:`repro.core.engine`), so the sweep parallelizes with ``jobs=N``.

Run it from the command line with ``python -m repro.evaluation.table2``
(or ``python -m repro table2``).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.benchsuite.registry import BenchmarkProgram
from repro.core.engine import CacheStats, collect_cache_stats, run_category_batch
from repro.core.sling import Sling, SlingConfig


@dataclass(frozen=True)
class PropertyOutcome:
    """One documented property and which analyses recovered it."""

    kind: str  # "spec" or "loop"
    description: str
    sling_found: bool
    s2_found: bool


@dataclass
class BenchmarkComparison:
    """Per-benchmark payload of a ``"table2"`` engine job."""

    name: str
    category: str
    outcomes: list[PropertyOutcome] = field(default_factory=list)
    #: Algorithm 2 candidates the SLING run behind this comparison checked
    #: and the skeleton groups they collapsed into (feed the ``Cand``/``Grp``
    #: columns; the full counter set travels on the engine report's
    #: ``CacheStats``).
    candidates_checked: int = 0
    candidate_groups: int = 0


@dataclass
class Table2Row:
    """One aggregated row of Table 2 (a benchmark category)."""

    category: str
    total: int = 0
    both: int = 0
    s2_only: int = 0
    sling_only: int = 0
    neither: int = 0
    #: Algorithm 2 candidates the SLING runs of this row actually checked,
    #: and the skeleton groups ``check_batch`` decided them through.
    candidates_checked: int = 0
    candidate_groups: int = 0

    def add(self, sling_found: bool, s2_found: bool) -> None:
        self.total += 1
        if sling_found and s2_found:
            self.both += 1
        elif s2_found:
            self.s2_only += 1
        elif sling_found:
            self.sling_only += 1
        else:
            self.neither += 1

    def as_dict(self) -> dict[str, object]:
        # Schema note: new keys are only ever appended; existing consumers
        # of the Table 2 JSON keep working.
        return {
            "category": self.category,
            "total": self.total,
            "both": self.both,
            "s2_only": self.s2_only,
            "sling_only": self.sling_only,
            "neither": self.neither,
            "candidates_checked": self.candidates_checked,
            "candidate_groups": self.candidate_groups,
        }


@dataclass
class Table2Result:
    """All category rows plus the summary row."""

    rows: list[Table2Row] = field(default_factory=list)

    def summary(self) -> Table2Row:
        total = Table2Row(category="Total Sum")
        for row in self.rows:
            total.total += row.total
            total.both += row.both
            total.s2_only += row.s2_only
            total.sling_only += row.sling_only
            total.neither += row.neither
            total.candidates_checked += row.candidates_checked
            total.candidate_groups += row.candidate_groups
        return total

    def as_dict(self) -> dict[str, object]:
        return {
            "rows": [row.as_dict() for row in self.rows],
            "summary": self.summary().as_dict(),
        }


def compare_benchmark(
    benchmark: BenchmarkProgram,
    config: SlingConfig | None = None,
    seed: int = 0,
) -> tuple[BenchmarkComparison, CacheStats]:
    """Evaluate one benchmark's documented properties with SLING and S2."""
    from repro.baselines.s2 import S2Analyzer

    config = config or SlingConfig(discard_crashed_runs=True)
    comparison = BenchmarkComparison(name=benchmark.name, category=benchmark.category)
    if not benchmark.documented:
        return comparison, CacheStats()

    unfold_before = benchmark.predicates.unfold_stats()
    sling = Sling(benchmark.program, benchmark.predicates, config)
    specification = sling.infer_function(benchmark.function, benchmark.test_cases(seed))
    s2_result = S2Analyzer().analyze(benchmark)
    s2_found = set(id(prop) for prop in s2_result.found_properties)
    for documented in benchmark.documented:
        comparison.outcomes.append(
            PropertyOutcome(
                kind=documented.kind,
                description=documented.description,
                sling_found=documented.check(specification),
                s2_found=id(documented) in s2_found,
            )
        )
    cache = collect_cache_stats(sling, unfold_before)
    comparison.candidates_checked = cache.candidates_checked
    comparison.candidate_groups = cache.candidate_groups
    return comparison, cache


def run_table2(
    categories: Sequence[str] | None = None,
    config: SlingConfig | None = None,
    seed: int = 0,
    max_programs_per_category: int | None = None,
    jobs: int = 1,
    job_timeout: float | None = None,
) -> Table2Result:
    """Compare SLING and the S2 baseline over the documented properties."""
    result = Table2Result()
    by_category: dict[str, Table2Row] = {}
    for category, _, payload in run_category_batch(
        "table2",
        categories=categories,
        max_programs_per_category=max_programs_per_category,
        keep=lambda benchmark: bool(benchmark.documented),
        seed=seed,
        config=config,
        jobs=jobs,
        job_timeout=job_timeout,
    ):
        row = by_category.get(category)
        if row is None:
            row = Table2Row(category=category)
            by_category[category] = row
            result.rows.append(row)
        for outcome in payload.outcomes:
            row.add(outcome.sling_found, outcome.s2_found)
        row.candidates_checked += payload.candidates_checked
        row.candidate_groups += payload.candidate_groups
    return result


def format_table2(result: Table2Result) -> str:
    """Render Table 2 in the paper's column layout.

    ``Cand`` is the number of Algorithm 2 candidates that reached the model
    checker during the row's SLING runs and ``Grp`` the number of spatial
    skeleton groups they were decided through (see ``docs/performance.md``).
    """
    header = (
        f"{'Programs':34s} {'Total':>6s} {'Both':>6s} {'S2':>6s} {'SLING':>6s} "
        f"{'Neither':>8s} {'Cand':>6s} {'Grp':>6s}"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.category:34s} {row.total:6d} {row.both:6d} {row.s2_only:6d} "
            f"{row.sling_only:6d} {row.neither:8d} {row.candidates_checked:6d} "
            f"{row.candidate_groups:6d}"
        )
    summary = result.summary()
    lines.append("-" * len(header))
    lines.append(
        f"{summary.category:34s} {summary.total:6d} {summary.both:6d} {summary.s2_only:6d} "
        f"{summary.sling_only:6d} {summary.neither:8d} {summary.candidates_checked:6d} "
        f"{summary.candidate_groups:6d}"
    )
    return "\n".join(lines)


def add_table2_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the Table 2 flags (shared with ``python -m repro table2``)."""
    parser.add_argument("--category", action="append", help="restrict to a category (repeatable)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for test inputs")
    parser.add_argument(
        "--max-programs",
        "--limit",
        dest="max_programs",
        type=int,
        default=None,
        help="cap programs per category (smoke runs)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="engine worker processes")
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-benchmark timeout in seconds"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of the table")


def table2_command(arguments: argparse.Namespace) -> None:
    """Run Table 2 from parsed CLI arguments and print it."""
    result = run_table2(
        categories=arguments.category,
        seed=arguments.seed,
        max_programs_per_category=arguments.max_programs,
        jobs=arguments.jobs,
        job_timeout=arguments.timeout,
    )
    if arguments.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(format_table2(result))


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Regenerate Table 2 of the SLING paper.")
    add_table2_arguments(parser)
    table2_command(parser.parse_args())


if __name__ == "__main__":
    main()
