"""Table 2: SLING vs the S2-like static baseline on documented properties.

For every benchmark program, the documented properties (specifications and
loop invariants) are checked against

* SLING's inferred specification (dynamic analysis over the test inputs), and
* the simplified S2 baseline (:mod:`repro.baselines.s2`),

and each property is placed in one of the four buckets of the paper's
Table 2: found by Both, only by S2, only by SLING, or by Neither.

Run it from the command line with ``python -m repro.evaluation.table2``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.s2 import S2Analyzer
from repro.benchsuite.registry import benchmarks_by_category
from repro.core.sling import Sling, SlingConfig


@dataclass
class Table2Row:
    """One aggregated row of Table 2 (a benchmark category)."""

    category: str
    total: int = 0
    both: int = 0
    s2_only: int = 0
    sling_only: int = 0
    neither: int = 0

    def add(self, sling_found: bool, s2_found: bool) -> None:
        self.total += 1
        if sling_found and s2_found:
            self.both += 1
        elif s2_found:
            self.s2_only += 1
        elif sling_found:
            self.sling_only += 1
        else:
            self.neither += 1


@dataclass
class Table2Result:
    """All category rows plus the summary row."""

    rows: list[Table2Row] = field(default_factory=list)

    def summary(self) -> Table2Row:
        total = Table2Row(category="Total Sum")
        for row in self.rows:
            total.total += row.total
            total.both += row.both
            total.s2_only += row.s2_only
            total.sling_only += row.sling_only
            total.neither += row.neither
        return total


def run_table2(
    categories: Sequence[str] | None = None,
    config: SlingConfig | None = None,
    seed: int = 0,
    max_programs_per_category: int | None = None,
) -> Table2Result:
    """Compare SLING and the S2 baseline over the documented properties."""
    config = config or SlingConfig(discard_crashed_runs=True)
    analyzer = S2Analyzer()
    result = Table2Result()
    for category, benchmarks in benchmarks_by_category().items():
        if categories is not None and category not in categories:
            continue
        if max_programs_per_category is not None:
            benchmarks = benchmarks[:max_programs_per_category]
        row = Table2Row(category=category)
        for benchmark in benchmarks:
            if not benchmark.documented:
                continue
            sling = Sling(benchmark.program, benchmark.predicates, config)
            specification = sling.infer_function(benchmark.function, benchmark.test_cases(seed))
            s2_result = analyzer.analyze(benchmark)
            s2_found = set(id(prop) for prop in s2_result.found_properties)
            for documented in benchmark.documented:
                sling_found = documented.check(specification)
                row.add(sling_found, id(documented) in s2_found)
        result.rows.append(row)
    return result


def format_table2(result: Table2Result) -> str:
    """Render Table 2 in the paper's column layout."""
    header = f"{'Programs':34s} {'Total':>6s} {'Both':>6s} {'S2':>6s} {'SLING':>6s} {'Neither':>8s}"
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.category:34s} {row.total:6d} {row.both:6d} {row.s2_only:6d} "
            f"{row.sling_only:6d} {row.neither:8d}"
        )
    summary = result.summary()
    lines.append("-" * len(header))
    lines.append(
        f"{summary.category:34s} {summary.total:6d} {summary.both:6d} {summary.s2_only:6d} "
        f"{summary.sling_only:6d} {summary.neither:8d}"
    )
    return "\n".join(lines)


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Regenerate Table 2 of the SLING paper.")
    parser.add_argument("--category", action="append", help="restrict to a category (repeatable)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for test inputs")
    parser.add_argument(
        "--max-programs", type=int, default=None, help="cap programs per category (smoke runs)"
    )
    arguments = parser.parse_args()
    result = run_table2(
        categories=arguments.category,
        seed=arguments.seed,
        max_programs_per_category=arguments.max_programs,
    )
    print(format_table2(result))


if __name__ == "__main__":
    main()
