"""Table 1: per-category invariant-inference results.

For every benchmark program the harness collects traces at its locations of
interest (function entry, loop heads, return statements), runs SLING and
aggregates per category:

* the number of programs and their size,
* the number of target locations (``iLocs``), collected traces and inferred
  invariants (with the spurious count in parentheses),
* the A/S/X classification (all locations covered / some locations covered or
  spurious results / no traces at some locations),
* total analysis time, and
* the average number of singleton predicates, inductive predicates and pure
  equalities per invariant.

Run it from the command line with ``python -m repro.evaluation.table1``.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.benchsuite.registry import BenchmarkProgram, benchmarks_by_category
from repro.core.results import Specification
from repro.core.sling import Sling, SlingConfig


@dataclass
class ProgramResult:
    """Per-program measurements feeding one Table 1 row."""

    name: str
    loc: int
    locations: int
    traces: int
    invariants: int
    spurious: int
    classification: str  # "A", "S" or "X"
    seconds: float
    singleton_atoms: int
    inductive_atoms: int
    pure_atoms: int
    specification: Specification | None = None


@dataclass
class CategoryRow:
    """One aggregated row of Table 1."""

    category: str
    programs: list[ProgramResult] = field(default_factory=list)

    @property
    def program_count(self) -> int:
        return len(self.programs)

    @property
    def loc(self) -> int:
        return sum(result.loc for result in self.programs)

    @property
    def locations(self) -> int:
        return sum(result.locations for result in self.programs)

    @property
    def traces(self) -> int:
        return sum(result.traces for result in self.programs)

    @property
    def invariants(self) -> int:
        return sum(result.invariants for result in self.programs)

    @property
    def spurious(self) -> int:
        return sum(result.spurious for result in self.programs)

    @property
    def seconds(self) -> float:
        return sum(result.seconds for result in self.programs)

    @property
    def a_s_x(self) -> tuple[int, int, int]:
        counts = {"A": 0, "S": 0, "X": 0}
        for result in self.programs:
            counts[result.classification] += 1
        return counts["A"], counts["S"], counts["X"]

    def _per_invariant(self, attribute: str) -> float:
        total_invariants = self.invariants
        if total_invariants == 0:
            return 0.0
        return sum(getattr(result, attribute) for result in self.programs) / total_invariants

    @property
    def avg_singletons(self) -> float:
        return self._per_invariant("singleton_atoms")

    @property
    def avg_inductives(self) -> float:
        return self._per_invariant("inductive_atoms")

    @property
    def avg_pures(self) -> float:
        return self._per_invariant("pure_atoms")


@dataclass
class Table1Result:
    """All rows plus overall totals."""

    rows: list[CategoryRow]

    def totals(self) -> dict[str, float]:
        return {
            "programs": sum(row.program_count for row in self.rows),
            "loc": sum(row.loc for row in self.rows),
            "locations": sum(row.locations for row in self.rows),
            "traces": sum(row.traces for row in self.rows),
            "invariants": sum(row.invariants for row in self.rows),
            "spurious": sum(row.spurious for row in self.rows),
            "seconds": sum(row.seconds for row in self.rows),
        }


def evaluate_program(
    benchmark: BenchmarkProgram, config: SlingConfig | None = None, seed: int = 0
) -> ProgramResult:
    """Run SLING on one benchmark and compute its Table 1 measurements."""
    config = config or SlingConfig(discard_crashed_runs=True)
    sling = Sling(benchmark.program, benchmark.predicates, config)
    test_cases = benchmark.test_cases(seed=seed)
    function = benchmark.program.get_function(benchmark.function)

    start = time.perf_counter()
    traces = sling.collect(benchmark.function, test_cases)
    specification = sling.infer_function(benchmark.function, test_cases)
    seconds = time.perf_counter() - start

    invariants = specification.all_invariants()
    spurious = specification.spurious_count()
    # Count only entry / loops / returns as target locations (labels are
    # illustration aids), matching how the specification driver works.
    target_locations = 1 + len(function.loop_locations()) + len(function.return_locations())

    if not invariants and traces.total_models() == 0:
        classification = "X"
    elif specification.unreached_locations or spurious or not specification.validated:
        classification = "S"
    else:
        classification = "A"

    return ProgramResult(
        name=benchmark.name,
        loc=benchmark.loc(),
        locations=target_locations,
        traces=traces.total_models(),
        invariants=len(invariants),
        spurious=spurious,
        classification=classification,
        seconds=seconds,
        singleton_atoms=sum(invariant.singleton_count() for invariant in invariants),
        inductive_atoms=sum(invariant.predicate_count() for invariant in invariants),
        pure_atoms=sum(invariant.pure_count() for invariant in invariants),
        specification=specification,
    )


def run_table1(
    categories: Sequence[str] | None = None,
    config: SlingConfig | None = None,
    seed: int = 0,
    max_programs_per_category: int | None = None,
) -> Table1Result:
    """Evaluate the benchmark suite and build Table 1."""
    rows: list[CategoryRow] = []
    for category, benchmarks in benchmarks_by_category().items():
        if categories is not None and category not in categories:
            continue
        if max_programs_per_category is not None:
            benchmarks = benchmarks[:max_programs_per_category]
        row = CategoryRow(category=category)
        for benchmark in benchmarks:
            row.programs.append(evaluate_program(benchmark, config=config, seed=seed))
        rows.append(row)
    return Table1Result(rows=rows)


def format_table1(result: Table1Result) -> str:
    """Render Table 1 in the paper's column layout."""
    header = (
        f"{'Category':34s} {'Progs':>5s} {'LoC':>5s} {'iLocs':>5s} {'Traces':>7s} "
        f"{'Invs':>10s} {'A/S/X':>8s} {'Time(s)':>8s} {'Single':>7s} {'Pred':>6s} {'Pure':>6s}"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        a, s, x = row.a_s_x
        invariants = f"{row.invariants}({row.spurious})" if row.spurious else f"{row.invariants}"
        lines.append(
            f"{row.category:34s} {row.program_count:5d} {row.loc:5d} {row.locations:5d} "
            f"{row.traces:7d} {invariants:>10s} {f'{a}/{s}/{x}':>8s} {row.seconds:8.2f} "
            f"{row.avg_singletons:7.2f} {row.avg_inductives:6.2f} {row.avg_pures:6.2f}"
        )
    totals = result.totals()
    total_invariants = f"{int(totals['invariants'])}({int(totals['spurious'])})"
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':34s} {totals['programs']:5.0f} {totals['loc']:5.0f} {totals['locations']:5.0f} "
        f"{totals['traces']:7.0f} {total_invariants:>10s} {'':>8s} {totals['seconds']:8.2f}"
    )
    return "\n".join(lines)


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Regenerate Table 1 of the SLING paper.")
    parser.add_argument("--category", action="append", help="restrict to a category (repeatable)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for test inputs")
    parser.add_argument(
        "--max-programs", type=int, default=None, help="cap programs per category (smoke runs)"
    )
    arguments = parser.parse_args()
    result = run_table1(
        categories=arguments.category,
        seed=arguments.seed,
        max_programs_per_category=arguments.max_programs,
    )
    print(format_table1(result))


if __name__ == "__main__":
    main()
