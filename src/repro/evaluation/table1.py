"""Table 1: per-category invariant-inference results.

For every benchmark program the harness collects traces at its locations of
interest (function entry, loop heads, return statements), runs SLING and
aggregates per category:

* the number of programs and their size,
* the number of target locations (``iLocs``), collected traces and inferred
  invariants (with the spurious count in parentheses),
* the A/S/X classification (all locations covered / some locations covered or
  spurious results / no traces at some locations),
* total analysis time, and
* the average number of singleton predicates, inductive predicates and pure
  equalities per invariant.

Per-benchmark work is dispatched through the batch-inference engine
(:mod:`repro.core.engine`), so full-suite sweeps parallelize with
``jobs=N`` while producing the same rows as a sequential run.

Run it from the command line with ``python -m repro.evaluation.table1``
(or ``python -m repro table1``).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field, fields
from typing import Sequence

from repro.benchsuite.registry import BenchmarkProgram
from repro.core.engine import CacheStats, collect_cache_stats, run_category_batch
from repro.core.results import Specification
from repro.core.sling import Sling, SlingConfig
from repro.telemetry import monotime

#: :class:`ProgramResult` attributes that render :class:`CacheStats` fields
#: under a historical flat name (the ``--json`` schema predates the struct);
#: every other field maps by identity.
_RENAMED_CACHE_FIELDS = {
    "checker_hits": "checker_cache_hits",
    "checker_misses": "checker_cache_misses",
    "unfold_hits": "unfold_cache_hits",
    "unfold_misses": "unfold_cache_misses",
}

#: ``(ProgramResult attribute, CacheStats field)`` pairs -- generated from
#: the struct itself, so a counter added to :class:`CacheStats` flows into
#: per-program results, JSON output and ``cache_totals()`` by adding one
#: matching :class:`ProgramResult` field.
_CACHE_FIELD_PAIRS = [
    (_RENAMED_CACHE_FIELDS.get(spec.name, spec.name), spec.name)
    for spec in fields(CacheStats)
]


@dataclass
class ProgramResult:
    """Per-program measurements feeding one Table 1 row."""

    name: str
    loc: int
    locations: int
    traces: int
    invariants: int
    spurious: int
    classification: str  # "A", "S" or "X"
    seconds: float
    singleton_atoms: int
    inductive_atoms: int
    pure_atoms: int
    specification: Specification | None = None
    # Memoization counters of the run that produced this row (engine metric).
    checker_cache_hits: int = 0
    checker_cache_misses: int = 0
    unfold_cache_hits: int = 0
    unfold_cache_misses: int = 0
    # Per-inference (variable, models) memo sharing Algorithm 2 runs.
    atom_cache_hits: int = 0
    atom_cache_misses: int = 0
    # Candidate-screening counters (fail-fast pipeline of Algorithm 2).
    candidates_generated: int = 0
    candidates_prefiltered: int = 0
    candidates_checked: int = 0
    refuted_by_first_model: int = 0
    pruned_cases: int = 0
    max_trail_depth: int = 0
    # Skeleton-batching counters (see ``ModelChecker.check_batch``).
    candidate_groups: int = 0
    skeletons_solved: int = 0
    env_stream_reuses: int = 0
    pure_variant_evals: int = 0
    batch_exact_fallbacks: int = 0
    # Canonical-interning counters (isomorphism dedup + canonical streams).
    iso_classes: int = 0
    models_deduped: int = 0
    canonical_stream_hits: int = 0
    iso_exact_fallbacks: int = 0
    exact_selection_ambiguities: int = 0
    # Columnar-kernel counters (see ``repro.sl.kernels``; all zero when
    # ``SlingConfig.columnar_kernels`` is off).
    kernel_groups: int = 0
    stream_index_hits: int = 0
    kernel_scan_fallbacks: int = 0
    # Persistent-cache counters (all zero unless the run set
    # ``SlingConfig.persistent_cache``; see :mod:`repro.cache`).
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    cache_file_bytes: int = 0
    disk_load_errors: int = 0
    # Resilience counters (all zero for fault-free runs; the parent-side
    # healing counters are stamped onto this payload by the engine after
    # the fact -- a worker cannot know it died).  See docs/resilience.md.
    jobs_retried: int = 0
    workers_respawned: int = 0
    jobs_poisoned: int = 0
    pool_rebuilds: int = 0
    degraded_sequential: int = 0
    faults_injected: int = 0
    # Serving-layer counters (all zero outside ``repro serve`` request
    # handling; see docs/serving.md).
    serve_requests: int = 0
    serve_queue_high_water: int = 0
    serve_rejections: int = 0
    serve_deadline_expiries: int = 0
    serve_client_disconnects: int = 0
    serve_requests_resumed: int = 0

    def cache_stats(self) -> CacheStats:
        """This run's counters, repackaged as the engine's struct."""
        return CacheStats(
            **{
                stats_field: getattr(self, attribute)
                for attribute, stats_field in _CACHE_FIELD_PAIRS
            }
        )

    def as_dict(self, include_invariants: bool = False) -> dict:
        """JSON-serializable view (used by ``python -m repro table1 --json``)."""
        data = {
            "name": self.name,
            "loc": self.loc,
            "locations": self.locations,
            "traces": self.traces,
            "invariants": self.invariants,
            "spurious": self.spurious,
            "classification": self.classification,
            "seconds": round(self.seconds, 4),
            "singleton_atoms": self.singleton_atoms,
            "inductive_atoms": self.inductive_atoms,
            "pure_atoms": self.pure_atoms,
        }
        for attribute, _ in _CACHE_FIELD_PAIRS:
            data[attribute] = getattr(self, attribute)
        if include_invariants and self.specification is not None:
            data["inferred"] = [
                {"location": inv.location, "formula": inv.pretty(), "spurious": inv.spurious}
                for inv in self.specification.all_invariants()
            ]
        return data


@dataclass
class CategoryRow:
    """One aggregated row of Table 1."""

    category: str
    programs: list[ProgramResult] = field(default_factory=list)

    @property
    def program_count(self) -> int:
        return len(self.programs)

    @property
    def loc(self) -> int:
        return sum(result.loc for result in self.programs)

    @property
    def locations(self) -> int:
        return sum(result.locations for result in self.programs)

    @property
    def traces(self) -> int:
        return sum(result.traces for result in self.programs)

    @property
    def invariants(self) -> int:
        return sum(result.invariants for result in self.programs)

    @property
    def spurious(self) -> int:
        return sum(result.spurious for result in self.programs)

    @property
    def seconds(self) -> float:
        return sum(result.seconds for result in self.programs)

    @property
    def candidates_checked(self) -> int:
        return sum(result.candidates_checked for result in self.programs)

    @property
    def candidates_prefiltered(self) -> int:
        return sum(result.candidates_prefiltered for result in self.programs)

    @property
    def candidate_groups(self) -> int:
        return sum(result.candidate_groups for result in self.programs)

    @property
    def a_s_x(self) -> tuple[int, int, int]:
        counts = {"A": 0, "S": 0, "X": 0}
        for result in self.programs:
            counts[result.classification] += 1
        return counts["A"], counts["S"], counts["X"]

    def _per_invariant(self, attribute: str) -> float:
        total_invariants = self.invariants
        if total_invariants == 0:
            return 0.0
        return sum(getattr(result, attribute) for result in self.programs) / total_invariants

    @property
    def avg_singletons(self) -> float:
        return self._per_invariant("singleton_atoms")

    @property
    def avg_inductives(self) -> float:
        return self._per_invariant("inductive_atoms")

    @property
    def avg_pures(self) -> float:
        return self._per_invariant("pure_atoms")


@dataclass
class Table1Result:
    """All rows plus overall totals."""

    rows: list[CategoryRow]

    def totals(self) -> dict[str, float]:
        return {
            "programs": sum(row.program_count for row in self.rows),
            "loc": sum(row.loc for row in self.rows),
            "locations": sum(row.locations for row in self.rows),
            "traces": sum(row.traces for row in self.rows),
            "invariants": sum(row.invariants for row in self.rows),
            "spurious": sum(row.spurious for row in self.rows),
            "seconds": sum(row.seconds for row in self.rows),
        }

    def cache_totals(self) -> CacheStats:
        """Aggregated memoization counters across every evaluated program."""
        totals = CacheStats()
        for row in self.rows:
            for program in row.programs:
                totals.merge(program.cache_stats())
        return totals

    def as_dict(self, include_invariants: bool = False) -> dict:
        """JSON-serializable view of the whole table."""
        return {
            "rows": [
                {
                    "category": row.category,
                    "programs": [
                        program.as_dict(include_invariants) for program in row.programs
                    ],
                }
                for row in self.rows
            ],
            "totals": self.totals(),
            "cache": self.cache_totals().as_dict(),
        }


def evaluate_program(
    benchmark: BenchmarkProgram, config: SlingConfig | None = None, seed: int = 0
) -> ProgramResult:
    """Run SLING on one benchmark and compute its Table 1 measurements."""
    config = config or SlingConfig(discard_crashed_runs=True)
    unfold_before = benchmark.predicates.unfold_stats()
    sling = Sling(benchmark.program, benchmark.predicates, config)
    test_cases = benchmark.test_cases(seed=seed)
    function = benchmark.program.get_function(benchmark.function)

    start = monotime()
    # NOTE: the trace collection is intentionally NOT passed to
    # ``infer_function``.  The test-case closures share one seeded RNG, so
    # the first collection (measured here for the Traces column) and the
    # second one (collected inside ``infer_function``) see different random
    # heaps; inference has always run on the second draw and reusing the
    # first would change every downstream invariant.
    traces = sling.collect(benchmark.function, test_cases)
    specification = sling.infer_function(benchmark.function, test_cases)
    seconds = monotime() - start

    invariants = specification.all_invariants()
    spurious = specification.spurious_count()
    # Count only entry / loops / returns as target locations (labels are
    # illustration aids), matching how the specification driver works.
    target_locations = 1 + len(function.loop_locations()) + len(function.return_locations())

    if not invariants and traces.total_models() == 0:
        classification = "X"
    elif specification.unreached_locations or spurious or not specification.validated:
        classification = "S"
    else:
        classification = "A"

    cache = collect_cache_stats(sling, unfold_before)
    return ProgramResult(
        name=benchmark.name,
        loc=benchmark.loc(),
        locations=target_locations,
        traces=traces.total_models(),
        invariants=len(invariants),
        spurious=spurious,
        classification=classification,
        seconds=seconds,
        singleton_atoms=sum(invariant.singleton_count() for invariant in invariants),
        inductive_atoms=sum(invariant.predicate_count() for invariant in invariants),
        pure_atoms=sum(invariant.pure_count() for invariant in invariants),
        specification=specification,
        **{
            attribute: getattr(cache, stats_field)
            for attribute, stats_field in _CACHE_FIELD_PAIRS
        },
    )


def run_table1(
    categories: Sequence[str] | None = None,
    config: SlingConfig | None = None,
    seed: int = 0,
    max_programs_per_category: int | None = None,
    jobs: int = 1,
    job_timeout: float | None = None,
) -> Table1Result:
    """Evaluate the benchmark suite and build Table 1.

    ``jobs`` sets the engine's worker-pool size (1 = inline, the reference
    behaviour); the rows are identical either way.  A benchmark that fails
    or exceeds ``job_timeout`` raises :class:`~repro.core.engine.EngineError`
    naming the benchmark.
    """
    rows: list[CategoryRow] = []
    by_category: dict[str, CategoryRow] = {}
    for category, _, payload in run_category_batch(
        "table1",
        categories=categories,
        max_programs_per_category=max_programs_per_category,
        seed=seed,
        config=config,
        jobs=jobs,
        job_timeout=job_timeout,
    ):
        row = by_category.get(category)
        if row is None:
            row = CategoryRow(category=category)
            by_category[category] = row
            rows.append(row)
        row.programs.append(payload)
    return Table1Result(rows=rows)


def format_table1(result: Table1Result) -> str:
    """Render Table 1 in the paper's column layout.

    The ``Cand`` column is the number of Algorithm 2 candidates that reached
    the model checker (the pre-filter's survivors); ``Grp`` is the number of
    spatial-skeleton groups they collapsed into (``check_batch`` runs one
    shared search per group and model) -- the engine's search-space metrics.
    """
    header = (
        f"{'Category':34s} {'Progs':>5s} {'LoC':>5s} {'iLocs':>5s} {'Traces':>7s} "
        f"{'Invs':>10s} {'A/S/X':>8s} {'Time(s)':>8s} {'Single':>7s} {'Pred':>6s} {'Pure':>6s} "
        f"{'Cand':>6s} {'Grp':>6s}"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        a, s, x = row.a_s_x
        invariants = f"{row.invariants}({row.spurious})" if row.spurious else f"{row.invariants}"
        lines.append(
            f"{row.category:34s} {row.program_count:5d} {row.loc:5d} {row.locations:5d} "
            f"{row.traces:7d} {invariants:>10s} {f'{a}/{s}/{x}':>8s} {row.seconds:8.2f} "
            f"{row.avg_singletons:7.2f} {row.avg_inductives:6.2f} {row.avg_pures:6.2f} "
            f"{row.candidates_checked:6d} {row.candidate_groups:6d}"
        )
    totals = result.totals()
    cache = result.cache_totals()
    total_invariants = f"{int(totals['invariants'])}({int(totals['spurious'])})"
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':34s} {totals['programs']:5.0f} {totals['loc']:5.0f} {totals['locations']:5.0f} "
        f"{totals['traces']:7.0f} {total_invariants:>10s} {'':>8s} {totals['seconds']:8.2f} "
        f"{'':7s} {'':6s} {'':6s} {cache.candidates_checked:6d} {cache.candidate_groups:6d}"
    )
    return "\n".join(lines)


def add_table1_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the Table 1 flags (shared with ``python -m repro table1``)."""
    parser.add_argument("--category", action="append", help="restrict to a category (repeatable)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for test inputs")
    parser.add_argument(
        "--max-programs",
        "--limit",
        dest="max_programs",
        type=int,
        default=None,
        help="cap programs per category (smoke runs)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="engine worker processes")
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-benchmark timeout in seconds"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of the table")
    parser.add_argument(
        "--invariants", action="store_true", help="include inferred formulas in --json output"
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write an NDJSON span trace of the run (see docs/observability.md)",
    )


def table1_command(arguments: argparse.Namespace) -> None:
    """Run Table 1 from parsed CLI arguments and print it."""
    config = None
    telemetry = None
    if getattr(arguments, "trace_out", None):
        from repro.telemetry import Telemetry

        telemetry = Telemetry(arguments.trace_out)
        config = SlingConfig(discard_crashed_runs=True, telemetry=telemetry)
    result = run_table1(
        categories=arguments.category,
        config=config,
        seed=arguments.seed,
        max_programs_per_category=arguments.max_programs,
        jobs=arguments.jobs,
        job_timeout=arguments.timeout,
    )
    if telemetry is not None:
        telemetry.close()
    if arguments.json:
        print(json.dumps(result.as_dict(include_invariants=arguments.invariants), indent=2))
    else:
        print(format_table1(result))


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Regenerate Table 1 of the SLING paper.")
    add_table1_arguments(parser)
    table1_command(parser.parse_args())


if __name__ == "__main__":
    main()
