"""Reproduction of SLING (PLDI 2019): dynamic inference of separation-logic invariants.

The package is organised as follows:

* :mod:`repro.sl` -- separation-logic formulae, inductive predicates,
  stack-heap models and the symbolic-heap model checker.
* :mod:`repro.lang` -- *heaplang*, a small C-like heap-manipulating language
  with an interpreter and a tracing debugger.  It stands in for the C
  benchmark programs and the LLDB debugger used by the paper.
* :mod:`repro.datagen` -- random data-structure generators used to build
  test inputs inside the interpreter heap.
* :mod:`repro.core` -- the SLING inference algorithm itself (heap
  partitioning, atomic-predicate inference, pure inference, frame-rule
  validation).
* :mod:`repro.baselines` -- a simplified static bi-abduction analyser used
  as the S2 comparison point of Table 2.
* :mod:`repro.benchsuite` -- heaplang re-implementations of the paper's
  benchmark categories together with their documented invariants.
* :mod:`repro.evaluation` -- harnesses regenerating Table 1 and Table 2.
"""

from repro.core.sling import Sling, SlingConfig, infer_invariants, infer_specification

__all__ = [
    "Sling",
    "SlingConfig",
    "infer_invariants",
    "infer_specification",
]

__version__ = "0.1.0"
