"""Reproduction of SLING (PLDI 2019): dynamic inference of separation-logic invariants.

The package is organised as follows:

* :mod:`repro.sl` -- separation-logic formulae, inductive predicates,
  stack-heap models and the symbolic-heap model checker.
* :mod:`repro.lang` -- *heaplang*, a small C-like heap-manipulating language
  with an interpreter and a tracing debugger.  It stands in for the C
  benchmark programs and the LLDB debugger used by the paper.
* :mod:`repro.datagen` -- random data-structure generators used to build
  test inputs inside the interpreter heap.
* :mod:`repro.core` -- the SLING inference algorithm itself (heap
  partitioning, atomic-predicate inference, pure inference, frame-rule
  validation) and the parallel batch-inference engine
  (:mod:`repro.core.engine`) that fans inference jobs out over a worker
  pool with per-job timeouts and cache accounting.
* :mod:`repro.baselines` -- a simplified static bi-abduction analyser used
  as the S2 comparison point of Table 2.
* :mod:`repro.benchsuite` -- heaplang re-implementations of the paper's
  benchmark categories together with their documented invariants.
* :mod:`repro.evaluation` -- harnesses regenerating Table 1 and Table 2 on
  top of the engine (``jobs=N`` parallel sweeps).
* :mod:`repro.cli` -- the ``repro`` command line (``python -m repro
  infer|table1|table2|bench|docs``).

The hot path is memoized at two levels: the symbolic-heap model checker
caches reductions per (alpha-normalized formula, model) and the inductive
predicates cache their case unfoldings per argument shape; both expose
hit/miss counters that the engine reports per job.
"""

from repro.core.engine import EngineJob, EngineReport, InferenceEngine
from repro.core.sling import Sling, SlingConfig, infer_invariants, infer_specification

__all__ = [
    "Sling",
    "SlingConfig",
    "infer_invariants",
    "infer_specification",
    "EngineJob",
    "EngineReport",
    "InferenceEngine",
]

__version__ = "0.2.0"
