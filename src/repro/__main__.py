"""``python -m repro`` dispatches to the CLI (see :mod:`repro.cli`)."""

from repro.cli import main

main()
