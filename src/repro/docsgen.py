"""Generator for ``docs/predicates.md`` (the inductive-predicate reference).

Run it with ``python -m repro docs``.  Everything except the one-line
informal meanings is *derived*: signatures and definitions are rendered from
the parsed standard library (:mod:`repro.sl.stdpreds`), complexity metrics
are computed, and the example models are concrete stack-heap models built by
the :mod:`repro.datagen` generators and verified to satisfy the predicate by
the symbolic-heap model checker before they are printed.  Regenerating the
file therefore fails loudly if the documentation and the code drift apart.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.datagen import generators as datagen
from repro.lang.heap import RuntimeHeap
from repro.lang.types import standard_structs
from repro.sl.checker import ModelChecker
from repro.sl.exprs import Var
from repro.sl.model import Heap, HeapCell, StackHeapModel
from repro.sl.predicates import InductivePredicate, PredicateRegistry, predicate_complexity
from repro.sl.pretty import pretty, pretty_model
from repro.sl.spatial import PredApp, SymHeap
from repro.sl.stdpreds import STRUCT_FIELDS, standard_predicates

#: Curated one-line meanings; everything else in the generated file is derived.
_MEANINGS: dict[str, str] = {
    "sll": "nil-terminated singly-linked list rooted at `x`.",
    "lseg": "singly-linked list segment from `x` up to (excluding) `y`.",
    "slldata": "nil-terminated singly-linked list of data-carrying nodes.",
    "slsegdata": "data-carrying list segment from `x` up to (excluding) `y`.",
    "sls": "sorted (ascending) singly-linked list with all data >= `mi`.",
    "slseg": "sorted list segment from `x` to `y` with all data >= `mi`.",
    "dll": "doubly-linked list segment from `hd` (previous cell `pr`) to `tl` (next cell `nx`).",
    "cll": "circular singly-linked list rooted at `x` (the last node points back to `x`).",
    "clseg": "circular-list segment from `x` up to (excluding) `y`.",
    "tree": "binary tree rooted at `x` with nil leaves.",
    "treeseg": "binary tree with one subtree replaced by the hole `y` (a tree context).",
    "bst": "binary search tree with all data in the interval [`mi`, `ma`].",
    "avl": "height-balanced (AVL) tree of height `h` with per-node height fields.",
    "pheap": "max-heap-ordered binary tree with all data <= `ub`.",
    "rbt": "red-black tree with root color `c` (1 = red) and black height `bh`.",
    "qlseg": "queue-node segment from `x` up to (excluding) `y`.",
    "qlist": "queue body: a node chain from head `h` to tail `t`, `t` pointing to nil.",
    "queue": "OpenBSD-style queue: a header cell `q` plus its node chain.",
    "gsll": "glib GSList: nil-terminated singly-linked list with data.",
    "gslseg": "glib GSList segment from `x` up to (excluding) `y`.",
    "gdll": "glib GList: doubly-linked, data-carrying list segment (like `dll`).",
    "nll": "nested list: each node owns a child singly-linked list.",
    "binheap": "binomial-heap forest over child/sibling pointers.",
    "swtree": "Schorr-Waite binary tree with per-node mark bits.",
    "memdll": "doubly-linked list of sized memory chunks (like `dll`).",
    "iter": "iterator cursor `it` over the list `lst`: the traversed prefix is a segment, the rest a list.",
}


def _runtime_model(
    build: Callable[[RuntimeHeap, random.Random], int], root: str = "x"
) -> StackHeapModel:
    """Build a structure with a datagen generator and snapshot it as a model."""
    heap = RuntimeHeap(standard_structs())
    rng = random.Random(42)
    value = build(heap, rng)
    cells = {
        address: HeapCell(heap.type_of(address), heap.cell(address))
        for address in heap.live_addresses()
    }
    root_type = f"{heap.type_of(value)}*" if value in cells else None
    var_types = {root: root_type} if root_type else {}
    return StackHeapModel({root: value}, Heap(cells), var_types)


def _iterator_model() -> StackHeapModel:
    """A hand-rolled iterator model (no datagen generator exists for it)."""
    heap = RuntimeHeap(standard_structs())
    second = heap.alloc("SllNode", {"next": 0})
    first = heap.alloc("SllNode", {"next": second})
    cursor = heap.alloc("IterNode", {"next": 0, "current": second, "list": first})
    cells = {
        address: HeapCell(heap.type_of(address), heap.cell(address))
        for address in heap.live_addresses()
    }
    model = StackHeapModel(
        {"x": cursor, "lst": first},
        Heap(cells),
        {"x": "IterNode*", "lst": "SllNode*"},
    )
    return model


def _candidate_models() -> list[StackHeapModel]:
    """Small concrete structures, one per family, used as example candidates."""
    builders: list[Callable[[RuntimeHeap, random.Random], int]] = [
        lambda heap, rng: datagen.make_sll(heap, rng, 2),
        lambda heap, rng: datagen.make_sorted_sll(heap, rng, 2),
        lambda heap, rng: datagen.make_sll_data(heap, rng, 2),
        lambda heap, rng: datagen.make_dll(heap, rng, 2),
        lambda heap, rng: datagen.make_circular_list(heap, rng, 2),
        lambda heap, rng: datagen.make_tree(heap, rng, 3),
        lambda heap, rng: datagen.make_bst(heap, rng, 3),
        lambda heap, rng: datagen.make_avl(heap, rng, 3),
        lambda heap, rng: datagen.make_max_heap_tree(heap, rng, 3),
        lambda heap, rng: datagen.make_red_black_tree(heap, rng, 3),
        lambda heap, rng: datagen.make_queue(heap, rng, 2),
        lambda heap, rng: datagen.make_glib_sll(heap, rng, 2),
        lambda heap, rng: datagen.make_glib_dll(heap, rng, 2),
        lambda heap, rng: datagen.make_nested_list(heap, rng, 2),
        lambda heap, rng: datagen.make_binomial_heap(heap, rng, 2),
        lambda heap, rng: datagen.make_sw_tree(heap, rng, 3),
        lambda heap, rng: datagen.make_mem_chunk_list(heap, rng, 2),
    ]
    models = [_runtime_model(build) for build in builders]
    # qlist/qlseg root at a QNode, not the Queue header: re-root the queue model.
    queue_model = next(
        (m for m in models if any(c.type_name == "Queue" for _, c in m.heap.items())), None
    )
    if queue_model is not None:
        header = queue_model.value_of("x")
        head = queue_model.heap[header].get("head")
        models.append(
            StackHeapModel(
                {"x": head},
                queue_model.heap.remove([header]),
                {"x": "QNode*"},
            )
        )
    models.append(_iterator_model())
    return models


def find_example_model(
    predicate: InductivePredicate,
    checker: ModelChecker,
    candidates: Iterable[StackHeapModel],
) -> StackHeapModel | None:
    """The first candidate model that *fully* satisfies the predicate.

    The predicate is rooted at the model's ``x`` variable; the remaining
    parameters are existentially quantified (for ``iter``, the second
    parameter is the model's ``lst`` variable).  Full coverage is required,
    so the printed model is exactly the heap the predicate describes.
    """
    for model in candidates:
        args = [Var("x")]
        exists = []
        for position, param in enumerate(predicate.params[1:], start=1):
            if model.has_var(param):
                args.append(Var(param))
            else:
                name = f"p{position}"
                exists.append(name)
                args.append(Var(name))
        formula = SymHeap(exists=exists, spatial=PredApp(predicate.name, args))
        if model.heap.is_empty():
            continue
        if checker.satisfies(model, formula):
            return model
    return None


def render_predicate_reference(registry: PredicateRegistry | None = None) -> str:
    """Render the full markdown reference for the predicate library."""
    registry = registry or standard_predicates()
    checker = ModelChecker(registry)
    candidates = _candidate_models()

    lines = [
        "# Inductive predicate reference",
        "",
        "<!-- GENERATED FILE - do not edit by hand. -->",
        "<!-- Regenerate with: python -m repro docs -->",
        "",
        "The standard library of inductive heap predicates handed to SLING,",
        "as defined in `src/repro/sl/stdpreds.py`. Signatures, definitions and",
        "metrics are rendered from the parsed definitions; each example model",
        "is checked against its predicate by the symbolic-heap model checker",
        "before being printed, so this file cannot silently drift from the",
        "code.",
        "",
    ]

    for predicate in registry:
        params = ", ".join(
            f"{name}: {ptype}" if ptype else name
            for name, ptype in zip(predicate.params, predicate.param_types)
        )
        metrics = predicate_complexity(predicate)
        lines.append(f"## `{predicate.name}({params})`")
        lines.append("")
        meaning = _MEANINGS.get(predicate.name)
        if meaning:
            lines.append(meaning)
            lines.append("")
        lines.append(
            f"*{metrics['params']} parameters, {len(predicate.cases)} cases, "
            f"{metrics['singletons']} points-to atoms, "
            f"{metrics['inductives']} recursive occurrences.*"
        )
        lines.append("")
        lines.append("Definition:")
        lines.append("")
        lines.append("```")
        case_texts = [pretty(case.body, STRUCT_FIELDS) for case in predicate.cases]
        head = f"{predicate.name}({', '.join(predicate.params)}) :="
        for index, text in enumerate(case_texts):
            prefix = head if index == 0 else " " * (len(head) - 2) + "|"
            lines.append(f"{prefix} {text}")
        lines.append("```")
        lines.append("")
        example = find_example_model(predicate, checker, candidates)
        if example is not None:
            lines.append(
                f"Example model (satisfies `{predicate.name}` rooted at `x`, "
                "verified by the checker):"
            )
            lines.append("")
            lines.append("```")
            lines.append(pretty_model(example))
            lines.append("```")
        else:
            lines.append("Example model: (no generated structure satisfies this predicate)")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
