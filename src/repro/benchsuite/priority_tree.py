"""Priority Tree category: max-heap-ordered binary trees."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    register,
    spec_with_pred,
)
from repro.datagen import make_max_heap_tree
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, standard_structs
from repro.lang.builder import call, eq, field, ge, is_null, lt, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("pheap")
_CATEGORY = "Priority Tree"


def _register(name, functions, main, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"priority/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- insert(t, k): push a value down the left spine, keeping the heap order ----------------------

insert = Function(
    "insert",
    [("t", "PNode*"), ("k", "int")],
    "PNode*",
    [
        If(is_null("t"), [Alloc("node", "PNode", {"data": v("k")}), Return(v("node"))]),
        If(
            ge(v("k"), field("t", "data")),
            [
                Alloc("node", "PNode", {"data": v("k"), "left": v("t")}),
                Return(v("node")),
            ],
        ),
        Store(v("t"), "left", call("insert", field("t", "left"), v("k"))),
        Return(v("t")),
    ],
)
_register(
    "insert",
    [insert],
    "insert",
    structure_and_value_cases(make_max_heap_tree, values=(3, 500, 2000)),
    [spec_with_pred("pheap", pre_root="t", post_root="res")],
)


# -- find(t, k): search a max-heap, pruning subtrees whose root is smaller than k -------------------

find = Function(
    "find",
    [("t", "PNode*"), ("k", "int")],
    "PNode*",
    [
        If(is_null("t"), [Return(null())]),
        If(lt(field("t", "data"), v("k")), [Return(null())]),
        If(eq(field("t", "data"), v("k")), [Return(v("t"))]),
        Assign("l", call("find", field("t", "left"), v("k"))),
        If(is_null("l"), [Return(call("find", field("t", "right"), v("k")))]),
        Return(v("l")),
    ],
)
_register(
    "find",
    [find],
    "find",
    structure_and_value_cases(make_max_heap_tree, values=(3, 500, 2000)),
    [spec_with_pred("pheap", pre_root="t")],
)


# -- del(t): delete the maximum (the root), promoting the larger child ---------------------------------

delete_max = Function(
    "del",
    [("t", "PNode*")],
    "PNode*",
    [
        If(is_null("t"), [Return(null())]),
        Assign("l", field("t", "left")),
        Assign("r", field("t", "right")),
        Free(v("t")),
        If(is_null("l"), [Return(v("r"))]),
        If(is_null("r"), [Return(v("l"))]),
        If(
            ge(field("l", "data"), field("r", "data")),
            [Store(v("l"), "right", call("meldHeaps", field("l", "right"), v("r"))), Return(v("l"))],
        ),
        Store(v("r"), "left", call("meldHeaps", v("l"), field("r", "left"))),
        Return(v("r")),
    ],
)

meld_heaps = Function(
    "meldHeaps",
    [("a", "PNode*"), ("b", "PNode*")],
    "PNode*",
    [
        If(is_null("a"), [Return(v("b"))]),
        If(is_null("b"), [Return(v("a"))]),
        If(
            ge(field("a", "data"), field("b", "data")),
            [Store(v("a"), "right", call("meldHeaps", field("a", "right"), v("b"))), Return(v("a"))],
        ),
        Store(v("b"), "left", call("meldHeaps", v("a"), field("b", "left"))),
        Return(v("b")),
    ],
)
_register(
    "del",
    [delete_max, meld_heaps],
    "del",
    single_structure_cases(make_max_heap_tree),
    [spec_with_pred("pheap", pre_root="t")],
    uses_free=True,
)


# -- rmRoot(t): remove the root without freeing it, returning the melded children -----------------------

rm_root = Function(
    "rmRoot",
    [("t", "PNode*")],
    "PNode*",
    [
        If(is_null("t"), [Return(null())]),
        Assign("l", field("t", "left")),
        Assign("r", field("t", "right")),
        Store(v("t"), "left", null()),
        Store(v("t"), "right", null()),
        Return(call("meldHeaps", v("l"), v("r"))),
    ],
)
_register(
    "rmRoot",
    [rm_root, meld_heaps],
    "rmRoot",
    single_structure_cases(make_max_heap_tree),
    [spec_with_pred("pheap", pre_root="t")],
)
