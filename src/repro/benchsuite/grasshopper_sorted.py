"""GRASShopper_SortedList category: sorted-list programs from the GRASShopper suite."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sorted_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, and_, call, eq, field, ge, i, is_null, le, lt, mul, ne, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("sls", "slseg", "slldata", "slsegdata")
_CATEGORY = "GRASShopper_SortedList"


def _register(name, functions, main, make_tests, documented, **kwargs):
    if not isinstance(functions, list):
        functions = [functions]
    register(
        BenchmarkProgram(
            name=f"gh_sorted/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


_SPEC = [spec_with_pred(("sls", "slldata"), pre_root="x")]
_SPEC_LOOP = [spec_with_pred(("sls", "slldata"), pre_root="x"), loop_with_pred(("sls", "slseg", "slldata", "slsegdata"))]


concat = Function(
    "concat",
    [("x", "SNode*"), ("y", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("y")),
        Return(v("x")),
    ],
)
_register("concat", concat, "concat", two_structure_cases(make_sorted_sll), _SPEC_LOOP)


copy = Function(
    "copy",
    [("x", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        Alloc("node", "SNode", {"data": field("x", "data"), "next": call("copy", field("x", "next"))}),
        Return(v("node")),
    ],
)
_register(
    "copy",
    copy,
    "copy",
    single_structure_cases(make_sorted_sll),
    [spec_with_pred("sls", pre_root="x", post_root="res")],
)


dispose = Function(
    "dispose",
    [("x", "SNode*")],
    "SNode*",
    [
        While(
            not_null("x"),
            [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "dispose",
    dispose,
    "dispose",
    single_structure_cases(make_sorted_sll),
    [pre_only_pred("sls", pre_root="x"), loop_with_pred(("sls", "slldata"), root="x")],
    uses_free=True,
)


# filter(x): drop (and free) every element smaller than 50, preserving sortedness.
filter_list = Function(
    "filter",
    [("x", "SNode*")],
    "SNode*",
    [
        While(
            and_(not_null("x"), lt(field("x", "data"), i(50))),
            [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))],
        ),
        If(is_null("x"), [Return(null())]),
        Assign("cur", v("x")),
        While(
            not_null(field("cur", "next")),
            [
                If(
                    lt(field(field("cur", "next"), "data"), i(50)),
                    [
                        Assign("victim", field("cur", "next")),
                        Store(v("cur"), "next", field("victim", "next")),
                        Free(v("victim")),
                    ],
                    [Assign("cur", field("cur", "next"))],
                ),
            ],
        ),
        Return(v("x")),
    ],
)
_register(
    "filter",
    filter_list,
    "filter",
    single_structure_cases(make_sorted_sll),
    [spec_with_pred("sls", pre_root="x"), loop_with_pred(("sls", "slseg", "slsegdata"))],
    uses_free=True,
)


insert = Function(
    "insert",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(is_null("x"), [Alloc("node", "SNode", {"data": v("k")}), Return(v("node"))]),
        If(
            ge(field("x", "data"), v("k")),
            [Alloc("node", "SNode", {"data": v("k"), "next": v("x")}), Return(v("node"))],
        ),
        Store(v("x"), "next", call("insert", field("x", "next"), v("k"))),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    "insert",
    structure_and_value_cases(make_sorted_sll, values=(5, 55, 200)),
    [spec_with_pred("sls", pre_root="x", post_root="res")],
)


reverse = Function(
    "reverse",
    [("x", "SNode*")],
    "SNode*",
    [
        Assign("prev", null()),
        While(
            not_null("x"),
            [
                Assign("next", field("x", "next")),
                Store(v("x"), "next", v("prev")),
                Assign("prev", v("x")),
                Assign("x", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    "reverse",
    single_structure_cases(make_sorted_sll),
    [spec_with_pred(("sls", "slldata"), pre_root="x", post_root="res"), loop_with_pred(("sls", "slldata", "slsegdata"))],
)


remove = Function(
    "rm",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(
            eq(field("x", "data"), v("k")),
            [Assign("rest", field("x", "next")), Free(v("x")), Return(v("rest"))],
        ),
        Store(v("x"), "next", call("rm", field("x", "next"), v("k"))),
        Return(v("x")),
    ],
)
_register(
    "rm",
    remove,
    "rm",
    structure_and_value_cases(make_sorted_sll, values=(5, 55, 200)),
    [spec_with_pred("sls", pre_root="x", post_root="res")],
    uses_free=True,
)


split = Function(
    "split",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(ge(field("x", "data"), v("k")), [Return(v("x"))]),
        Return(call("split", field("x", "next"), v("k"))),
    ],
)
_register(
    "split",
    split,
    "split",
    structure_and_value_cases(make_sorted_sll, values=(5, 55, 200)),
    [spec_with_pred("sls", pre_root="x")],
)


traverse = Function(
    "traverse",
    [("x", "SNode*")],
    "int",
    [
        Assign("n", i(0)),
        Assign("cur", v("x")),
        While(not_null("cur"), [Assign("cur", field("cur", "next")), Assign("n", add(v("n"), i(1)))]),
        Return(v("n")),
    ],
)
_register("traverse", traverse, "traverse", single_structure_cases(make_sorted_sll), _SPEC_LOOP)


merge = Function(
    "merge",
    [("x", "SNode*"), ("y", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        If(is_null("y"), [Return(v("x"))]),
        If(
            le(field("x", "data"), field("y", "data")),
            [Store(v("x"), "next", call("merge", field("x", "next"), v("y"))), Return(v("x"))],
        ),
        Store(v("y"), "next", call("merge", v("x"), field("y", "next"))),
        Return(v("y")),
    ],
)
_register(
    "merge",
    merge,
    "merge",
    two_structure_cases(make_sorted_sll),
    [spec_with_pred("sls", pre_root="x"), spec_with_pred("sls", pre_root="y"), post_only_pred("sls")],
)


double_all = Function(
    "doubleAll",
    [("x", "SNode*")],
    "SNode*",
    [
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Store(v("cur"), "data", mul(i(2), field("cur", "data"))),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("x")),
    ],
)
_register(
    "doubleAll",
    double_all,
    "doubleAll",
    single_structure_cases(make_sorted_sll),
    [spec_with_pred(("sls", "slldata"), pre_root="x", post_root="res"), loop_with_pred(("sls", "slseg", "slsegdata"))],
)


pairwise_sum = Function(
    "pairwiseSum",
    [("x", "SNode*"), ("y", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(is_null("y"), [Return(null())]),
        Alloc(
            "node",
            "SNode",
            {
                "data": add(field("x", "data"), field("y", "data")),
                "next": call("pairwiseSum", field("x", "next"), field("y", "next")),
            },
        ),
        Return(v("node")),
    ],
)
_register(
    "pairwiseSum",
    pairwise_sum,
    "pairwiseSum",
    two_structure_cases(make_sorted_sll, size_pairs=((0, 2), (3, 3), (10, 10))),
    [spec_with_pred("sls", pre_root="x"), post_only_pred(("sls", "slldata"))],
)


insertion_sort = Function(
    "insertionSort",
    [("x", "SNode*")],
    "SNode*",
    [
        Assign("out", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", null()),
                Assign("out", call("insert_node", v("out"), v("cur"))),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("out")),
    ],
)

insert_node = Function(
    "insert_node",
    [("lst", "SNode*"), ("node", "SNode*")],
    "SNode*",
    [
        If(is_null("lst"), [Return(v("node"))]),
        If(
            ge(field("lst", "data"), field("node", "data")),
            [Store(v("node"), "next", v("lst")), Return(v("node"))],
        ),
        Store(v("lst"), "next", call("insert_node", field("lst", "next"), v("node"))),
        Return(v("lst")),
    ],
)
_register(
    "insertionSort",
    [insertion_sort, insert_node],
    "insertionSort",
    single_structure_cases(make_sorted_sll),
    [spec_with_pred(("sls", "slldata"), pre_root="x"), post_only_pred("sls"), loop_with_pred(("sls", "slldata", "slsegdata"))],
)
