"""Circular List category: operations over circular singly-linked lists."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_circular_list
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import eq, field, i, is_null, ne, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("cll", "clseg")
_CATEGORY = "Circular List"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"circular/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- insertFront(x, k): insert a node right after the head (the head stays the entry point) --

insert_front = Function(
    "insertFront",
    [("x", "CNode*"), ("k", "int")],
    "CNode*",
    [
        If(
            is_null("x"),
            [
                Alloc("node", "CNode", {"data": v("k")}),
                Store(v("node"), "next", v("node")),
                Return(v("node")),
            ],
        ),
        Alloc("node", "CNode", {"data": v("k"), "next": field("x", "next")}),
        Store(v("x"), "next", v("node")),
        Return(v("x")),
    ],
)
_register(
    "insertFront",
    insert_front,
    structure_and_value_cases(make_circular_list),
    [spec_with_pred(("cll", "clseg"), pre_root="x", post_root="res")],
)


# -- insertBack(x, k): insert before the head by walking the full cycle ------------------------

insert_back = Function(
    "insertBack",
    [("x", "CNode*"), ("k", "int")],
    "CNode*",
    [
        If(
            is_null("x"),
            [
                Alloc("node", "CNode", {"data": v("k")}),
                Store(v("node"), "next", v("node")),
                Return(v("node")),
            ],
        ),
        Assign("cur", v("x")),
        While(ne(field("cur", "next"), v("x")), [Assign("cur", field("cur", "next"))]),
        Alloc("node", "CNode", {"data": v("k"), "next": v("x")}),
        Store(v("cur"), "next", v("node")),
        Return(v("x")),
    ],
)
_register(
    "insertBack",
    insert_back,
    structure_and_value_cases(make_circular_list),
    [
        spec_with_pred(("cll", "clseg"), pre_root="x", post_root="res"),
        loop_with_pred("clseg", root="cur"),
    ],
)


# -- delFront(x): remove the node right after the head -------------------------------------------

del_front = Function(
    "delFront",
    [("x", "CNode*")],
    "CNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("victim", field("x", "next")),
        If(eq(v("victim"), v("x")), [Free(v("x")), Return(null())]),
        Store(v("x"), "next", field("victim", "next")),
        Free(v("victim")),
        Return(v("x")),
    ],
)
_register(
    "delFront",
    del_front,
    single_structure_cases(make_circular_list),
    [spec_with_pred(("cll", "clseg"), pre_root="x", post_root="res")],
    uses_free=True,
)


# -- delBack(x): remove the node just before the head ----------------------------------------------

del_back = Function(
    "delBack",
    [("x", "CNode*")],
    "CNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(eq(field("x", "next"), v("x")), [Free(v("x")), Return(null())]),
        Assign("cur", v("x")),
        While(
            ne(field(field("cur", "next"), "next"), v("x")),
            [Assign("cur", field("cur", "next"))],
        ),
        Assign("victim", field("cur", "next")),
        Store(v("cur"), "next", v("x")),
        Free(v("victim")),
        Return(v("x")),
    ],
)
_register(
    "delBack",
    del_back,
    single_structure_cases(make_circular_list),
    [
        spec_with_pred(("cll", "clseg"), pre_root="x", post_root="res"),
        loop_with_pred("clseg", root="cur"),
    ],
)
