"""SV-COMP (Heap Programs) category: master/slave nested-list programs.

The SV-COMP heap benchmarks manipulate a "master" list whose elements own
"slave" sub-lists; we model them with ``NlNode`` cells (``next`` along the
master list, ``child`` pointing to an ``SllNode`` slave list) and the nested
predicate ``nll``.
"""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases, value_only_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_nested_list, make_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, call, field, gt, i, is_null, not_null, null, sub, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("nll", "sll", "lseg")
_CATEGORY = "SV-COMP"


def _register(name, functions, main, make_tests, documented, **kwargs):
    if not isinstance(functions, list):
        functions = [functions]
    register(
        BenchmarkProgram(
            name=f"svcomp/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- allocSlave(n): build a slave list of length n ----------------------------------------------

alloc_slave = Function(
    "allocSlave",
    [("n", "int")],
    "SllNode*",
    [
        Assign("head", null()),
        While(
            gt(v("n"), i(0)),
            [
                Alloc("node", "SllNode", {"next": v("head")}),
                Assign("head", v("node")),
                Assign("n", sub(v("n"), i(1))),
            ],
        ),
        Return(v("head")),
    ],
)
_register(
    "allocSlave",
    alloc_slave,
    "allocSlave",
    value_only_cases(),
    [post_only_pred(("sll", "lseg"), post_root="res"), loop_with_pred(("sll", "lseg"), root="head")],
)


# -- insertSlave(master, n): give the head master element a fresh slave list --------------------------

insert_slave = Function(
    "insertSlave",
    [("master", "NlNode*"), ("n", "int")],
    "NlNode*",
    [
        If(is_null("master"), [Return(null())]),
        Store(v("master"), "child", call("allocSlave", v("n"))),
        Return(v("master")),
    ],
)
_register(
    "insertSlave",
    [insert_slave, alloc_slave],
    "insertSlave",
    structure_and_value_cases(make_nested_list, values=(0, 2, 4)),
    [spec_with_pred("nll", pre_root="master", post_root="res")],
)


# -- createSlave / init(n): build a master list of n elements, each with a small slave list ------------------

create_master = Function(
    "createSlave",
    [("n", "int")],
    "NlNode*",
    [
        Assign("master", null()),
        While(
            gt(v("n"), i(0)),
            [
                Assign("slave", call("allocSlave", i(2))),
                Alloc("node", "NlNode", {"next": v("master"), "child": v("slave")}),
                Assign("master", v("node")),
                Assign("n", sub(v("n"), i(1))),
            ],
        ),
        Return(v("master")),
    ],
)
_register(
    "createSlave",
    [create_master, alloc_slave],
    "createSlave",
    value_only_cases(),
    [post_only_pred("nll", post_root="res"), loop_with_pred("nll", root="master")],
)

init = Function(
    "init",
    [("n", "int")],
    "NlNode*",
    [
        Assign("master", call("createSlave", v("n"))),
        Return(v("master")),
    ],
)
_register(
    "init",
    [init, create_master, alloc_slave],
    "init",
    value_only_cases(),
    [post_only_pred("nll", post_root="res")],
)


# -- destroySlave(master): free every slave list, keeping the master list --------------------------------------

destroy_slave = Function(
    "destroySlave",
    [("master", "NlNode*")],
    "NlNode*",
    [
        Assign("cur", v("master")),
        While(
            not_null("cur"),
            [
                Assign("slave", field("cur", "child")),
                While(
                    not_null("slave"),
                    [Assign("t", field("slave", "next")), Free(v("slave")), Assign("slave", v("t"))],
                ),
                Store(v("cur"), "child", null()),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("master")),
    ],
)
_register(
    "destroySlave",
    destroy_slave,
    "destroySlave",
    single_structure_cases(make_nested_list),
    [spec_with_pred("nll", pre_root="master", post_root="res"), loop_with_pred("nll")],
    uses_free=True,
)


# -- add(master): prepend a fresh master element with an empty slave list ------------------------------------------

add_master = Function(
    "add",
    [("master", "NlNode*")],
    "NlNode*",
    [
        Alloc("node", "NlNode", {"next": v("master")}),
        Return(v("node")),
    ],
)
_register(
    "add",
    add_master,
    "add",
    single_structure_cases(make_nested_list),
    [spec_with_pred("nll", pre_root="master", post_root="res")],
)


# -- del(master): drop and free the head master element together with its slave list ----------------------------------

del_master = Function(
    "del",
    [("master", "NlNode*")],
    "NlNode*",
    [
        If(is_null("master"), [Return(null())]),
        Assign("slave", field("master", "child")),
        While(
            not_null("slave"),
            [Assign("t", field("slave", "next")), Free(v("slave")), Assign("slave", v("t"))],
        ),
        Assign("rest", field("master", "next")),
        Free(v("master")),
        Return(v("rest")),
    ],
)
_register(
    "del",
    del_master,
    "del",
    single_structure_cases(make_nested_list),
    [spec_with_pred("nll", pre_root="master", post_root="res")],
    uses_free=True,
)
