"""Binary Search Tree category."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_bst
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import and_, call, eq, field, ge, is_null, lt, ne, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("bst")
_CATEGORY = "Binary Search Tree"


def _register(name, function_or_functions, main, make_tests, documented, **kwargs):
    functions = (
        function_or_functions
        if isinstance(function_or_functions, list)
        else [function_or_functions]
    )
    register(
        BenchmarkProgram(
            name=f"bst/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- insert(t, k): recursive BST insertion ---------------------------------------------

insert = Function(
    "insert",
    [("t", "BstNode*"), ("k", "int")],
    "BstNode*",
    [
        If(is_null("t"), [Alloc("node", "BstNode", {"data": v("k")}), Return(v("node"))]),
        If(
            lt(v("k"), field("t", "data")),
            [Store(v("t"), "left", call("insert", field("t", "left"), v("k")))],
            [Store(v("t"), "right", call("insert", field("t", "right"), v("k")))],
        ),
        Return(v("t")),
    ],
)
_register(
    "insert",
    insert,
    "insert",
    structure_and_value_cases(make_bst, values=(7, 450, 999)),
    [spec_with_pred("bst", pre_root="t", post_root="res")],
)


# -- find(t, k): recursive lookup -----------------------------------------------------------

find = Function(
    "find",
    [("t", "BstNode*"), ("k", "int")],
    "BstNode*",
    [
        If(is_null("t"), [Return(null())]),
        If(eq(field("t", "data"), v("k")), [Return(v("t"))]),
        If(
            lt(v("k"), field("t", "data")),
            [Return(call("find", field("t", "left"), v("k")))],
        ),
        Return(call("find", field("t", "right"), v("k"))),
    ],
)
_register(
    "find",
    find,
    "find",
    structure_and_value_cases(make_bst, values=(7, 450, 999)),
    [spec_with_pred("bst", pre_root="t")],
)


# -- findIter(t, k): iterative lookup ----------------------------------------------------------

find_iter = Function(
    "findIter",
    [("t", "BstNode*"), ("k", "int")],
    "BstNode*",
    [
        Assign("cur", v("t")),
        While(
            and_(not_null("cur"), ne(field("cur", "data"), v("k"))),
            [
                If(
                    lt(v("k"), field("cur", "data")),
                    [Assign("cur", field("cur", "left"))],
                    [Assign("cur", field("cur", "right"))],
                ),
            ],
        ),
        Return(v("cur")),
    ],
)
_register(
    "findIter",
    find_iter,
    "findIter",
    structure_and_value_cases(make_bst, values=(7, 450, 999)),
    [spec_with_pred("bst", pre_root="t"), loop_with_pred("bst", root="cur")],
)


# -- del(t): delete the minimum element (leftmost node) -------------------------------------------

delete_min = Function(
    "del",
    [("t", "BstNode*")],
    "BstNode*",
    [
        If(is_null("t"), [Return(null())]),
        If(
            is_null(field("t", "left")),
            [
                Assign("rest", field("t", "right")),
                Free(v("t")),
                Return(v("rest")),
            ],
        ),
        Store(v("t"), "left", call("del", field("t", "left"))),
        Return(v("t")),
    ],
)
_register(
    "del",
    delete_min,
    "del",
    single_structure_cases(make_bst),
    [spec_with_pred("bst", pre_root="t", post_root="res")],
    uses_free=True,
)


# -- rmRoot(t): intentionally buggy root removal (marked * in Table 1) -------------------------------

rm_root = Function(
    "rmRoot",
    [("t", "BstNode*")],
    "BstNode*",
    [
        # BUG (intentional): the root is dereferenced before the null check,
        # so the program crashes immediately on every input we feed it.
        Assign("l", field("t", "left")),
        If(is_null("t"), [Return(null())]),
        Return(v("l")),
    ],
)
_register(
    "rmRoot",
    rm_root,
    "rmRoot",
    single_structure_cases(make_bst, sizes=(0, 0, 0)),
    [spec_with_pred("bst", pre_root="t")],
    has_bug=True,
)
