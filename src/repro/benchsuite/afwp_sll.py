"""AFWP_SLL category: singly-linked list programs from Itzhaky et al. (AFWP)."""

from __future__ import annotations

from repro.benchsuite.common import (
    single_structure_cases,
    structure_and_value_cases,
    two_structure_cases,
    value_only_cases,
)
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sll, make_sll_data, make_sorted_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, and_, call, eq, field, gt, i, is_null, le, lt, ne, not_null, null, sub, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("sll", "lseg", "slldata", "slsegdata", "sls")
_CATEGORY = "AFWP_SLL"


def _register(name, functions, main, make_tests, documented, **kwargs):
    if not isinstance(functions, list):
        functions = [functions]
    register(
        BenchmarkProgram(
            name=f"afwp_sll/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


create = Function(
    "create",
    [("n", "int")],
    "SllNode*",
    [
        Assign("head", null()),
        While(
            gt(v("n"), i(0)),
            [
                Alloc("node", "SllNode", {"next": v("head")}),
                Assign("head", v("node")),
                Assign("n", sub(v("n"), i(1))),
            ],
        ),
        Return(v("head")),
    ],
)
_register(
    "create",
    create,
    "create",
    value_only_cases(),
    [post_only_pred(("sll", "lseg"), post_root="res"), loop_with_pred(("sll", "lseg"), root="head")],
)


del_all = Function(
    "delAll",
    [("x", "SllNode*")],
    "SllNode*",
    [
        While(not_null("x"), [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))]),
        Return(null()),
    ],
)
_register(
    "delAll",
    del_all,
    "delAll",
    single_structure_cases(make_sll),
    [pre_only_pred(("sll", "lseg"), pre_root="x"), loop_with_pred(("sll", "lseg"), root="x")],
    uses_free=True,
)


find = Function(
    "find",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        Assign("cur", v("x")),
        While(
            and_(not_null("cur"), ne(field("cur", "data"), v("k"))),
            [Assign("cur", field("cur", "next"))],
        ),
        Return(v("cur")),
    ],
)
_register(
    "find",
    find,
    "find",
    structure_and_value_cases(make_sll_data, values=(5, 50, 95)),
    [spec_with_pred(("slldata", "sls"), pre_root="x"), loop_with_pred(("slldata", "slsegdata", "sls"))],
)


last = Function(
    "last",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Return(v("cur")),
    ],
)
_register(
    "last",
    last,
    "last",
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x"), loop_with_pred(("sll", "lseg"))],
)


reverse = Function(
    "reverse",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Assign("prev", null()),
        While(
            not_null("x"),
            [
                Assign("next", field("x", "next")),
                Store(v("x"), "next", v("prev")),
                Assign("prev", v("x")),
                Assign("x", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    "reverse",
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res"), loop_with_pred(("sll", "lseg"))],
)


rotate = Function(
    "rotate",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(is_null(field("x", "next")), [Return(v("x"))]),
        Assign("newHead", field("x", "next")),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("x")),
        Store(v("x"), "next", null()),
        Return(v("newHead")),
    ],
)
_register(
    "rotate",
    rotate,
    "rotate",
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res"), loop_with_pred(("sll", "lseg"))],
)


swap = Function(
    "swap",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(is_null(field("x", "next")), [Return(v("x"))]),
        Assign("second", field("x", "next")),
        Store(v("x"), "next", field("second", "next")),
        Store(v("second"), "next", v("x")),
        Return(v("second")),
    ],
)
_register(
    "swap",
    swap,
    "swap",
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
)


insert = Function(
    "insert",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(is_null("x"), [Alloc("node", "SNode", {"data": v("k")}), Return(v("node"))]),
        If(
            le(v("k"), field("x", "data")),
            [Alloc("node", "SNode", {"data": v("k"), "next": v("x")}), Return(v("node"))],
        ),
        Store(v("x"), "next", call("insert", field("x", "next"), v("k"))),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    "insert",
    structure_and_value_cases(make_sorted_sll, values=(5, 55, 200)),
    [spec_with_pred("sls", pre_root="x", post_root="res")],
)


delete = Function(
    "del",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(
            eq(field("x", "data"), v("k")),
            [Assign("rest", field("x", "next")), Free(v("x")), Return(v("rest"))],
        ),
        Store(v("x"), "next", call("del", field("x", "next"), v("k"))),
        Return(v("x")),
    ],
)
_register(
    "del",
    delete,
    "del",
    structure_and_value_cases(make_sorted_sll, values=(5, 55, 200)),
    [spec_with_pred("sls", pre_root="x", post_root="res")],
    uses_free=True,
)


filter_list = Function(
    "filter",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("rest", call("filter", field("x", "next"), v("k"))),
        If(
            lt(field("x", "data"), v("k")),
            [Free(v("x")), Return(v("rest"))],
        ),
        Store(v("x"), "next", v("rest")),
        Return(v("x")),
    ],
)
_register(
    "filter",
    filter_list,
    "filter",
    structure_and_value_cases(make_sll_data, values=(25, 50, 75)),
    [spec_with_pred(("slldata", "sls"), pre_root="x")],
    uses_free=True,
)


merge = Function(
    "merge",
    [("x", "SNode*"), ("y", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        If(is_null("y"), [Return(v("x"))]),
        If(
            le(field("x", "data"), field("y", "data")),
            [Store(v("x"), "next", call("merge", field("x", "next"), v("y"))), Return(v("x"))],
        ),
        Store(v("y"), "next", call("merge", v("x"), field("y", "next"))),
        Return(v("y")),
    ],
)
_register(
    "merge",
    merge,
    "merge",
    two_structure_cases(make_sorted_sll),
    [spec_with_pred("sls", pre_root="x"), post_only_pred("sls")],
)
