"""DLL category: algorithms over doubly-linked lists (including the paper's ``concat``)."""

from __future__ import annotations

from repro.benchsuite.common import (
    single_structure_cases,
    structure_and_value_cases,
    two_structure_cases,
)
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    pure_post_equality,
    register,
    spec_with_pred,
)
from repro.datagen import make_dll
from repro.lang import (
    Alloc,
    Assign,
    Free,
    Function,
    If,
    Label,
    Program,
    Return,
    Store,
    While,
    standard_structs,
)
from repro.lang.builder import add, and_, call, field, i, is_null, lt, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("dll")
_CATEGORY = "DLL"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"dll/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- concat(x, y): the paper's running example (Figure 1) ---------------------------

concat = Function(
    "concat",
    [("x", "DllNode*"), ("y", "DllNode*")],
    "DllNode*",
    [
        Label("L1"),
        If(
            is_null("x"),
            [Label("L2"), Return(v("y"))],
            [
                Assign("tmp", call("concat", field("x", "next"), v("y"))),
                Store(v("x"), "next", v("tmp")),
                If(not_null("tmp"), [Store(v("tmp"), "prev", v("x"))]),
                Label("L3"),
                Return(v("x")),
            ],
        ),
    ],
)
_register(
    "concat",
    concat,
    two_structure_cases(make_dll),
    [
        spec_with_pred("dll", pre_root="x"),
        spec_with_pred("dll", pre_root="y"),
        pure_post_equality("res", "x"),
    ],
)


# -- append(x, y): iterative concatenation --------------------------------------------

append = Function(
    "append",
    [("x", "DllNode*"), ("y", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("y")),
        If(not_null("y"), [Store(v("y"), "prev", v("cur"))]),
        Return(v("x")),
    ],
)
_register(
    "append",
    append,
    two_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x"), loop_with_pred("dll", root="cur")],
)


# -- meld(x, y): alias of append used by VCDryad (kept separate for the benchmark count) --

meld = Function(
    "meld",
    [("x", "DllNode*"), ("y", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        If(is_null("y"), [Return(v("x"))]),
        Assign("tail", v("x")),
        While(not_null(field("tail", "next")), [Assign("tail", field("tail", "next"))]),
        Store(v("tail"), "next", v("y")),
        Store(v("y"), "prev", v("tail")),
        Return(v("x")),
    ],
)
_register(
    "meld",
    meld,
    two_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x"), loop_with_pred("dll", root="tail")],
)


# -- delAll(x): free the whole list ------------------------------------------------------

del_all = Function(
    "delAll",
    [("x", "DllNode*")],
    "DllNode*",
    [
        While(
            not_null("x"),
            [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "delAll",
    del_all,
    single_structure_cases(make_dll),
    [pre_only_pred("dll", pre_root="x"), loop_with_pred("dll", root="x")],
    uses_free=True,
)


# -- insertFront(x): push a node at the head -----------------------------------------------

insert_front = Function(
    "insertFront",
    [("x", "DllNode*")],
    "DllNode*",
    [
        Alloc("node", "DllNode", {"next": v("x")}),
        If(not_null("x"), [Store(v("x"), "prev", v("node"))]),
        Return(v("node")),
    ],
)
_register(
    "insertFront",
    insert_front,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res")],
)


# -- insertBack(x): append a fresh node at the tail ------------------------------------------

insert_back = Function(
    "insertBack",
    [("x", "DllNode*")],
    "DllNode*",
    [
        Alloc("node", "DllNode"),
        If(is_null("x"), [Return(v("node"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("node")),
        Store(v("node"), "prev", v("cur")),
        Return(v("x")),
    ],
)
_register(
    "insertBack",
    insert_back,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll", root="cur")],
)


# -- midInsert(x, n): insert a node after position n -------------------------------------------

mid_insert = Function(
    "midInsert",
    [("x", "DllNode*"), ("n", "int")],
    "DllNode*",
    [
        If(is_null("x"), [Alloc("node", "DllNode"), Return(v("node"))]),
        Assign("cur", v("x")),
        Assign("k", i(0)),
        While(
            and_(not_null(field("cur", "next")), lt(v("k"), v("n"))),
            [Assign("cur", field("cur", "next")), Assign("k", add(v("k"), i(1)))],
        ),
        Alloc("node", "DllNode", {"next": field("cur", "next"), "prev": v("cur")}),
        If(not_null(field("cur", "next")), [Store(field("cur", "next"), "prev", v("node"))]),
        Store(v("cur"), "next", v("node")),
        Return(v("x")),
    ],
)
_register(
    "midInsert",
    mid_insert,
    structure_and_value_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll", root="x")],
)


# -- midDel(x, n): unlink and free the node after position n -------------------------------------

mid_del = Function(
    "midDel",
    [("x", "DllNode*"), ("n", "int")],
    "DllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("cur", v("x")),
        Assign("k", i(0)),
        While(
            and_(not_null(field("cur", "next")), lt(v("k"), v("n"))),
            [Assign("cur", field("cur", "next")), Assign("k", add(v("k"), i(1)))],
        ),
        Assign("victim", field("cur", "next")),
        If(
            not_null("victim"),
            [
                Store(v("cur"), "next", field("victim", "next")),
                If(
                    not_null(field("victim", "next")),
                    [Store(field("victim", "next"), "prev", v("cur"))],
                ),
                Free(v("victim")),
            ],
        ),
        Return(v("x")),
    ],
)
_register(
    "midDel",
    mid_del,
    structure_and_value_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll", root="x")],
    uses_free=True,
)


# -- midDelHd(x): delete the head node -------------------------------------------------------------

mid_del_hd = Function(
    "midDelHd",
    [("x", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("rest", field("x", "next")),
        If(not_null("rest"), [Store(v("rest"), "prev", null())]),
        Free(v("x")),
        Return(v("rest")),
    ],
)
_register(
    "midDelHd",
    mid_del_hd,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res")],
    uses_free=True,
)


# -- midDelError(x): seeded bug -- forgets to fix the prev pointer of the successor ------------------

mid_del_error = Function(
    "midDelError",
    [("x", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("rest", field("x", "next")),
        # BUG (intentional): rest->prev still points at the freed head.
        Free(v("x")),
        Return(v("rest")),
    ],
)
_register(
    "midDelError",
    mid_del_error,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res")],
    uses_free=True,
)


# -- midDelStar(x, n): delete every node after position n ---------------------------------------------

mid_del_star = Function(
    "midDelStar",
    [("x", "DllNode*"), ("n", "int")],
    "DllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("cur", v("x")),
        Assign("k", i(0)),
        While(
            and_(not_null(field("cur", "next")), lt(v("k"), v("n"))),
            [Assign("cur", field("cur", "next")), Assign("k", add(v("k"), i(1)))],
        ),
        Assign("victim", field("cur", "next")),
        Store(v("cur"), "next", null()),
        While(
            not_null("victim"),
            [Assign("t", field("victim", "next")), Free(v("victim")), Assign("victim", v("t"))],
        ),
        Return(v("x")),
    ],
)
_register(
    "midDelStar",
    mid_del_star,
    structure_and_value_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res")],
    uses_free=True,
)


# -- midDelMid(x): delete the middle node (two-finger traversal) ----------------------------------------

mid_del_mid = Function(
    "midDelMid",
    [("x", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(is_null(field("x", "next")), [Return(v("x"))]),
        Assign("slow", v("x")),
        Assign("fast", v("x")),
        While(
            and_(not_null(field("fast", "next")), not_null(field(field("fast", "next"), "next"))),
            [
                Assign("slow", field("slow", "next")),
                Assign("fast", field(field("fast", "next"), "next")),
            ],
        ),
        Assign("victim", field("slow", "next")),
        If(
            not_null("victim"),
            [
                Store(v("slow"), "next", field("victim", "next")),
                If(
                    not_null(field("victim", "next")),
                    [Store(field("victim", "next"), "prev", v("slow"))],
                ),
                Free(v("victim")),
            ],
        ),
        Return(v("x")),
    ],
)
_register(
    "midDelMid",
    mid_del_mid,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll", root="x")],
    uses_free=True,
)
