"""Cyclist category: the four programs from Brotherston & Gorogiannis.

These exercise multiple data structures inside one function: an explicit
stack of tree nodes (``aplas-stack``), nested structures (``composite``), a
list iterator (``iter``) and the Schorr-Waite graph-marking algorithm over
binary trees (``schorr-waite``).
"""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sll, make_sw_tree, make_tree
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import call, eq, field, i, is_null, ne, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_CATEGORY = "Cyclist"


def _register(name, functions, main, predicates, make_tests, documented, **kwargs):
    if not isinstance(functions, list):
        functions = [functions]
    register(
        BenchmarkProgram(
            name=f"cyclist/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=predicates,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- aplas-stack: push every tree node onto an explicit SllNode stack (iterative DFS) --------------

aplas_stack = Function(
    "aplasStack",
    [("t", "TNode*")],
    "int",
    [
        Assign("count", i(0)),
        Assign("stack", null()),
        If(is_null("t"), [Return(i(0))]),
        # The stack stores tree nodes indirectly: each SllNode's next links the
        # stack while the tree node being remembered is tracked via a parallel
        # traversal (the original uses a struct with a payload pointer; the
        # shape observed by SLING is the same sll).
        Alloc("top", "SllNode"),
        Assign("stack", v("top")),
        Assign("cur", v("t")),
        While(
            not_null("cur"),
            [
                Assign("count", i(1)),
                Alloc("frame", "SllNode", {"next": v("stack")}),
                Assign("stack", v("frame")),
                Assign("cur", field("cur", "left")),
            ],
        ),
        Return(v("count")),
    ],
)
_register(
    "aplas-stack",
    aplas_stack,
    "aplasStack",
    predicates_for("sll", "lseg", "tree"),
    single_structure_cases(make_tree),
    [spec_with_pred("tree", pre_root="t"), loop_with_pred(("sll", "lseg"), root="stack")],
)


# -- composite: a tree node owning a child list (nested structure operations) ------------------------

composite = Function(
    "composite",
    [("t", "TNode*")],
    "TNode*",
    [
        If(is_null("t"), [Alloc("root", "TNode"), Return(v("root"))]),
        Alloc("leaf", "TNode"),
        If(
            is_null(field("t", "left")),
            [Store(v("t"), "left", v("leaf"))],
            [Store(v("t"), "right", v("leaf"))],
        ),
        Return(v("t")),
    ],
)
_register(
    "composite4",
    composite,
    "composite",
    predicates_for("tree", "treeseg"),
    single_structure_cases(make_tree),
    [spec_with_pred("tree", pre_root="t", post_root="res")],
)


# -- iter: advance an iterator over a singly-linked list ----------------------------------------------

iter_next = Function(
    "iterNext",
    [("lst", "SllNode*")],
    "IterNode*",
    [
        Alloc("it", "IterNode", {"list": v("lst"), "current": v("lst")}),
        Assign("steps", i(0)),
        While(
            not_null(field("it", "current")),
            [
                Store(v("it"), "current", field(field("it", "current"), "next")),
                Assign("steps", i(1)),
            ],
        ),
        Return(v("it")),
    ],
)
_register(
    "iter",
    iter_next,
    "iterNext",
    predicates_for("iter", "sll", "lseg"),
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="lst"), loop_with_pred(("sll", "lseg", "iter"))],
)


# -- schorr-waite: pointer-reversal marking of a binary tree ----------------------------------------------

schorr_waite = Function(
    "schorrWaite",
    [("root", "SwNode*")],
    "SwNode*",
    [
        Assign("t", v("root")),
        Assign("p", null()),
        While(
            not_null("t"),
            [
                If(
                    eq(field("t", "mark"), i(0)),
                    [
                        # First visit: mark and rotate (left, right, parent).
                        Store(v("t"), "mark", i(1)),
                        Assign("l", field("t", "left")),
                        Store(v("t"), "left", field("t", "right")),
                        Store(v("t"), "right", v("p")),
                        Assign("p", v("t")),
                        If(
                            not_null("l"),
                            [Assign("t", v("l"))],
                            [Assign("t", v("p")), Assign("p", null())],
                        ),
                    ],
                    [
                        # Already marked: we re-entered via the rotated pointers;
                        # stop following this branch.
                        Assign("t", null()),
                    ],
                ),
            ],
        ),
        Return(v("root")),
    ],
)
_register(
    "schorr-waite",
    schorr_waite,
    "schorrWaite",
    predicates_for("swtree"),
    single_structure_cases(make_sw_tree),
    [spec_with_pred("swtree", pre_root="root"), loop_with_pred("swtree")],
)
