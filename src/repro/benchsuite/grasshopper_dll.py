"""GRASShopper_DLL category: doubly-linked list programs from the GRASShopper suite."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_dll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, field, i, is_null, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("dll")
_CATEGORY = "GRASShopper_DLL"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"gh_dll/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


_SPEC = [spec_with_pred("dll", pre_root="x")]
_SPEC_LOOP = [spec_with_pred("dll", pre_root="x"), loop_with_pred("dll")]


concat = Function(
    "concat",
    [("x", "DllNode*"), ("y", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("y")),
        If(not_null("y"), [Store(v("y"), "prev", v("cur"))]),
        Return(v("x")),
    ],
)
_register("concat", concat, two_structure_cases(make_dll), _SPEC_LOOP)


copy = Function(
    "copy",
    [("x", "DllNode*")],
    "DllNode*",
    [
        Assign("head", null()),
        Assign("tail", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Alloc("node", "DllNode", {"prev": v("tail")}),
                If(
                    is_null("head"),
                    [Assign("head", v("node"))],
                    [Store(v("tail"), "next", v("node"))],
                ),
                Assign("tail", v("node")),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("head")),
    ],
)
_register(
    "copy",
    copy,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll")],
)


dispose = Function(
    "dispose",
    [("x", "DllNode*")],
    "DllNode*",
    [
        While(
            not_null("x"),
            [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "dispose",
    dispose,
    single_structure_cases(make_dll),
    [pre_only_pred("dll", pre_root="x"), loop_with_pred("dll", root="x")],
    uses_free=True,
)


filter_list = Function(
    "filter",
    [("x", "DllNode*")],
    "DllNode*",
    [
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("victim", field("cur", "next")),
                If(
                    not_null("victim"),
                    [
                        Store(v("cur"), "next", field("victim", "next")),
                        If(
                            not_null(field("victim", "next")),
                            [Store(field("victim", "next"), "prev", v("cur"))],
                        ),
                        Free(v("victim")),
                    ],
                ),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("x")),
    ],
)
_register(
    "filter",
    filter_list,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x"), loop_with_pred("dll")],
    uses_free=True,
)


insert = Function(
    "insert",
    [("x", "DllNode*")],
    "DllNode*",
    [
        Alloc("node", "DllNode"),
        If(is_null("x"), [Return(v("node"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("node")),
        Store(v("node"), "prev", v("cur")),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll")],
)


remove = Function(
    "rm",
    [("x", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("rest", field("x", "next")),
        If(not_null("rest"), [Store(v("rest"), "prev", null())]),
        Free(v("x")),
        Return(v("rest")),
    ],
)
_register(
    "rm",
    remove,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res")],
    uses_free=True,
)


reverse = Function(
    "reverse",
    [("x", "DllNode*")],
    "DllNode*",
    [
        Assign("prev", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", v("prev")),
                Store(v("cur"), "prev", v("next")),
                Assign("prev", v("cur")),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    single_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x", post_root="res"), loop_with_pred("dll", root="cur")],
)


traverse = Function(
    "traverse",
    [("x", "DllNode*")],
    "int",
    [
        Assign("n", i(0)),
        Assign("cur", v("x")),
        While(not_null("cur"), [Assign("cur", field("cur", "next")), Assign("n", add(v("n"), i(1)))]),
        Return(v("n")),
    ],
)
_register("traverse", traverse, single_structure_cases(make_dll), _SPEC_LOOP)
