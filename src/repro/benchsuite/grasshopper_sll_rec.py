"""GRASShopper_SLL (Recursive) category: recursion-based singly-linked list programs."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, standard_structs
from repro.lang.builder import add, call, field, i, is_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("sll", "lseg")
_CATEGORY = "GRASShopper_SLL (Recursive)"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"gh_sll_rec/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


_SPEC = [spec_with_pred(("sll", "lseg"), pre_root="x")]


concat = Function(
    "concat",
    [("x", "SllNode*"), ("y", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Store(v("x"), "next", call("concat", field("x", "next"), v("y"))),
        Return(v("x")),
    ],
)
_register("concat", concat, two_structure_cases(make_sll), _SPEC)


copy = Function(
    "copy",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Alloc("node", "SllNode", {"next": call("copy", field("x", "next"))}),
        Return(v("node")),
    ],
)
_register(
    "copy",
    copy,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
)


# dispose(x): recursive deallocation.  After the call returns, the caller's
# pointer still refers to the freed cells, which is exactly the trace
# artefact the paper blames for spurious invariants (bold rows of Table 1).
dispose = Function(
    "dispose",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("ignore", call("dispose", field("x", "next"))),
        Free(v("x")),
        Return(null()),
    ],
)
_register(
    "dispose",
    dispose,
    single_structure_cases(make_sll),
    [pre_only_pred(("sll", "lseg"), pre_root="x")],
    uses_free=True,
)


filter_list = Function(
    "filter",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("rest", call("filter", field("x", "next"))),
        If(
            is_null("rest"),
            [Store(v("x"), "next", null()), Return(v("x"))],
        ),
        # Drop the current node in front of a kept one (and free it), keeping
        # roughly every other node, like the iterative variant.
        Store(v("x"), "next", field("rest", "next")),
        Store(v("rest"), "next", v("x")),
        Return(v("rest")),
    ],
)
_register(
    "filter",
    filter_list,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
)


insert = Function(
    "insert",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Alloc("node", "SllNode"), Return(v("node"))]),
        Store(v("x"), "next", call("insert", field("x", "next"))),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
)


remove = Function(
    "rm",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(
            is_null(field("x", "next")),
            [Free(v("x")), Return(null())],
        ),
        Store(v("x"), "next", call("rm", field("x", "next"))),
        Return(v("x")),
    ],
)
_register(
    "rm",
    remove,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
    uses_free=True,
)


reverse = Function(
    "reverse",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        If(is_null(field("x", "next")), [Return(v("x"))]),
        Assign("rest", call("reverse", field("x", "next"))),
        Store(field("x", "next"), "next", v("x")),
        Store(v("x"), "next", null()),
        Return(v("rest")),
    ],
)
_register(
    "reverse",
    reverse,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
)


traverse = Function(
    "traverse",
    [("x", "SllNode*")],
    "int",
    [
        If(is_null("x"), [Return(i(0))]),
        Return(add(i(1), call("traverse", field("x", "next")))),
    ],
)
_register("traverse", traverse, single_structure_cases(make_sll), _SPEC)
