"""Sorted List category: algorithms over ascending sorted singly-linked lists."""

from __future__ import annotations

from repro.benchsuite.common import (
    single_structure_cases,
    structure_and_value_cases,
    two_structure_cases,
)
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sll_data, make_sorted_sll
from repro.lang import (
    Alloc,
    Assign,
    FieldAccess,
    Free,
    Function,
    If,
    Program,
    Return,
    Store,
    While,
    standard_structs,
)
from repro.lang.builder import and_, call, field, ge, is_null, lt, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("sls", "slseg", "slldata", "slsegdata")
_CATEGORY = "Sorted List"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"sorted/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- concat(x, y): append y to x (sorted when max(x) <= min(y)) -----------------------

concat = Function(
    "concat",
    [("x", "SNode*"), ("y", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Store(v("x"), "next", call("concat", field("x", "next"), v("y"))),
        Return(v("x")),
    ],
)
_register(
    "concat",
    concat,
    two_structure_cases(make_sorted_sll),
    [spec_with_pred(("sls", "slldata"), pre_root="x")],
)


# -- find(x, k): first node holding value k ----------------------------------------------

find = Function(
    "find",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        Assign("cur", v("x")),
        While(
            and_(not_null("cur"), lt(field("cur", "data"), v("k"))),
            [Assign("cur", field("cur", "next"))],
        ),
        Return(v("cur")),
    ],
)
_register(
    "find",
    find,
    structure_and_value_cases(make_sorted_sll, values=(0, 50, 120)),
    [spec_with_pred("sls", pre_root="x"), loop_with_pred(("slseg", "slsegdata", "sls"), root="x")],
)


# -- findLast(x): last node of the list -----------------------------------------------------

find_last = Function(
    "findLast",
    [("x", "SNode*")],
    "SNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Return(v("cur")),
    ],
)
_register(
    "findLast",
    find_last,
    single_structure_cases(make_sorted_sll),
    [spec_with_pred("sls", pre_root="x"), loop_with_pred(("slseg", "slsegdata", "sls"), root="x")],
)


# -- insert(x, k): recursive sorted insertion --------------------------------------------------

insert = Function(
    "insert",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        If(
            is_null("x"),
            [Alloc("node", "SNode", {"data": v("k")}), Return(v("node"))],
        ),
        If(
            ge(field("x", "data"), v("k")),
            [Alloc("node", "SNode", {"data": v("k"), "next": v("x")}), Return(v("node"))],
        ),
        Store(v("x"), "next", call("insert", field("x", "next"), v("k"))),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    structure_and_value_cases(make_sorted_sll, values=(0, 55, 200)),
    [spec_with_pred("sls", pre_root="x", post_root="res")],
)


# -- insertIter(x, k): iterative sorted insertion ----------------------------------------------------

insert_iter = Function(
    "insertIter",
    [("x", "SNode*"), ("k", "int")],
    "SNode*",
    [
        Alloc("node", "SNode", {"data": v("k")}),
        If(
            and_(not_null("x"), lt(field("x", "data"), v("k"))),
            [
                Assign("cur", v("x")),
                While(
                    and_(
                        not_null(field("cur", "next")),
                        lt(FieldAccess(field("cur", "next"), "data"), v("k")),
                    ),
                    [Assign("cur", field("cur", "next"))],
                ),
                Store(v("node"), "next", field("cur", "next")),
                Store(v("cur"), "next", v("node")),
                Return(v("x")),
            ],
            [
                Store(v("node"), "next", v("x")),
                Return(v("node")),
            ],
        ),
    ],
)
_register(
    "insertIter",
    insert_iter,
    structure_and_value_cases(make_sorted_sll, values=(0, 55, 200)),
    [spec_with_pred("sls", pre_root="x", post_root="res"), loop_with_pred(("slseg", "slsegdata", "sls"), root="x")],
)


# -- delAll(x): free the whole sorted list -----------------------------------------------------------

del_all = Function(
    "delAll",
    [("x", "SNode*")],
    "SNode*",
    [
        While(
            not_null("x"),
            [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "delAll",
    del_all,
    single_structure_cases(make_sorted_sll),
    [pre_only_pred("sls", pre_root="x"), loop_with_pred(("sls", "slldata"), root="x")],
    uses_free=True,
)


# -- reverseSort(x): reverse an ascending list (result is descending, still a data list) ---------------

reverse_sort = Function(
    "reverseSort",
    [("x", "SNode*")],
    "SNode*",
    [
        Assign("prev", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", v("prev")),
                Assign("prev", v("cur")),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverseSort",
    reverse_sort,
    single_structure_cases(make_sorted_sll),
    [spec_with_pred(("sls", "slldata"), pre_root="x", post_root="res"), loop_with_pred(("slldata", "slsegdata", "sls"), root="cur")],
)


# -- insertionSort(x): sort an arbitrary data list by repeated sorted insertion -------------------------

insertion_sort = Function(
    "insertionSort",
    [("x", "SNode*")],
    "SNode*",
    [
        Assign("sorted", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", null()),
                Assign("sorted", call("sortedInsertNode", v("sorted"), v("cur"))),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("sorted")),
    ],
)

sorted_insert_node = Function(
    "sortedInsertNode",
    [("lst", "SNode*"), ("node", "SNode*")],
    "SNode*",
    [
        If(
            is_null("lst"),
            [Return(v("node"))],
        ),
        If(
            ge(field("lst", "data"), field("node", "data")),
            [Store(v("node"), "next", v("lst")), Return(v("node"))],
        ),
        Store(v("lst"), "next", call("sortedInsertNode", field("lst", "next"), v("node"))),
        Return(v("lst")),
    ],
)
register(
    BenchmarkProgram(
        name="sorted/insertionSort",
        category=_CATEGORY,
        program=Program(_STRUCTS, [insertion_sort, sorted_insert_node]),
        function="insertionSort",
        predicates=_PREDICATES,
        make_tests=single_structure_cases(make_sll_data),
        documented=[
            spec_with_pred(("slldata", "sls"), pre_root="x"),
            post_only_pred("sls"),
            loop_with_pred(("sls", "slldata", "slsegdata"), root="sorted"),
        ],
    )
)


# -- quickSort(x): intentionally buggy (null dereference on the pivot), marked * in Table 1 -------------

quick_sort = Function(
    "quickSort",
    [("x", "SNode*")],
    "SNode*",
    [
        # BUG (intentional): dereferences the pivot without a null check, so
        # the program crashes on every input, including the empty list.
        Assign("pivot", field("x", "data")),
        If(is_null(field("x", "next")), [Return(v("x"))]),
        Return(call("quickSort", field("x", "next"))),
    ],
)
_register(
    "quickSort",
    quick_sort,
    single_structure_cases(make_sll_data, sizes=(0, 0, 0)),
    [spec_with_pred("sls", pre_root="x")],
    has_bug=True,
)
