"""The benchmark registry: programs, predicates, inputs and documented properties."""

from __future__ import annotations

import importlib
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.results import Invariant, Specification
from repro.lang.ast import Program
from repro.lang.tracer import TestCase
from repro.sl.predicates import PredicateRegistry
from repro.sl.spatial import PredApp

#: Category modules loaded by :func:`load_all`, in Table 1 order.
_CATEGORY_MODULES = [
    "repro.benchsuite.sll",
    "repro.benchsuite.sorted_list",
    "repro.benchsuite.dll",
    "repro.benchsuite.circular",
    "repro.benchsuite.bst",
    "repro.benchsuite.avl",
    "repro.benchsuite.priority_tree",
    "repro.benchsuite.rbt",
    "repro.benchsuite.tree_traversal",
    "repro.benchsuite.glib_dll",
    "repro.benchsuite.glib_sll",
    "repro.benchsuite.openbsd_queue",
    "repro.benchsuite.memregion",
    "repro.benchsuite.binomial_heap",
    "repro.benchsuite.svcomp",
    "repro.benchsuite.grasshopper_sll_iter",
    "repro.benchsuite.grasshopper_sll_rec",
    "repro.benchsuite.grasshopper_dll",
    "repro.benchsuite.grasshopper_sorted",
    "repro.benchsuite.afwp_sll",
    "repro.benchsuite.afwp_dll",
    "repro.benchsuite.cyclist",
]


@dataclass(frozen=True)
class DocumentedProperty:
    """A documented specification or loop invariant, used by Table 2.

    ``kind`` is ``"spec"`` (a pre/postcondition pair) or ``"loop"`` (a loop
    invariant).  ``check`` decides whether an inferred
    :class:`~repro.core.results.Specification` covers the documented
    property; the helpers below build the common cases.
    """

    kind: str
    description: str
    check: Callable[[Specification], bool]


@dataclass
class BenchmarkProgram:
    """One benchmark program together with everything needed to analyse it."""

    name: str
    category: str
    program: Program
    function: str
    predicates: PredicateRegistry
    #: Builds the test suite; receives a seeded RNG so runs are reproducible.
    make_tests: Callable[[random.Random], Sequence[TestCase]]
    documented: list[DocumentedProperty] = field(default_factory=list)
    #: Program crashes on every input (marked ``*`` in Table 1).
    has_bug: bool = False
    #: Program frees memory whose cells remain visible to the tracer
    #: (bold in Table 1: its invariants are classified spurious).
    uses_free: bool = False
    #: Approximate lines of C code of the original program (Table 1's LoC).
    c_loc: int = 0

    def loc(self) -> int:
        """Lines-of-code proxy: the declared C LoC or the statement count."""
        return self.c_loc or self.program.statement_count()

    def test_cases(self, seed: int = 0) -> list[TestCase]:
        """Instantiate the test suite with a fixed seed."""
        return list(self.make_tests(random.Random(seed)))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, BenchmarkProgram] = {}
_LOADED = False


def register(benchmark: BenchmarkProgram) -> BenchmarkProgram:
    """Add a benchmark to the global registry (category modules call this)."""
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def load_all() -> None:
    """Import every category module (idempotent)."""
    global _LOADED
    if _LOADED:
        return
    for module_name in _CATEGORY_MODULES:
        importlib.import_module(module_name)
    _LOADED = True


def all_benchmarks() -> list[BenchmarkProgram]:
    """All registered benchmarks, in registration order."""
    load_all()
    return list(_REGISTRY.values())


def get_benchmark(name: str) -> BenchmarkProgram:
    """Look up a benchmark by name (e.g. ``"dll/concat"``)."""
    load_all()
    return _REGISTRY[name]


def categories() -> list[str]:
    """Category names in Table 1 order."""
    load_all()
    ordered: list[str] = []
    for benchmark in _REGISTRY.values():
        if benchmark.category not in ordered:
            ordered.append(benchmark.category)
    return ordered


def benchmarks_by_category() -> dict[str, list[BenchmarkProgram]]:
    """Benchmarks grouped by category, in Table 1 order."""
    load_all()
    grouped: dict[str, list[BenchmarkProgram]] = {}
    for benchmark in _REGISTRY.values():
        grouped.setdefault(benchmark.category, []).append(benchmark)
    return grouped


# ---------------------------------------------------------------------------
# Documented-property helpers
# ---------------------------------------------------------------------------


def _mentions_predicate(invariant: Invariant, pred_name: "str | tuple[str, ...]") -> bool:
    """The invariant's spatial part uses one of the given inductive predicates."""
    names = (pred_name,) if isinstance(pred_name, str) else tuple(pred_name)
    return any(
        isinstance(atom, PredApp) and atom.name in names
        for atom in invariant.formula.spatial_atoms()
    )


def _describes_variable(invariant: Invariant, var: str | None) -> bool:
    """The invariant constrains ``var``: it roots a spatial atom or occurs in a pure equality.

    This is the (syntactic but permissive) stand-in for the paper's manual
    "matched or stronger than the documented invariant" judgement: SLING
    often describes ``res`` through an equality (``prev = res``) or a
    points-to rather than by rooting the documented predicate at ``res``.
    """
    if var is None:
        return True
    from repro.sl.checker import _pure_conjuncts
    from repro.sl.exprs import Eq
    from repro.sl.spatial import PointsTo

    for atom in invariant.formula.spatial_atoms():
        if isinstance(atom, PredApp) and atom.args and getattr(atom.args[0], "name", None) == var:
            return True
        if isinstance(atom, PointsTo) and getattr(atom.source, "name", None) == var:
            return True
    for conjunct in _pure_conjuncts(invariant.formula.pure):
        if isinstance(conjunct, Eq):
            names = {getattr(conjunct.left, "name", None), getattr(conjunct.right, "name", None)}
            if var in names:
                return True
    return False


def _invariant_mentions(invariant: Invariant, pred_name: str, root: str | None) -> bool:
    return _mentions_predicate(invariant, pred_name) and _describes_variable(invariant, root)


def spec_with_pred(
    pred_name: "str | tuple[str, ...]",
    pre_root: str | None = None,
    post_root: str | None = None,
    description: str | None = None,
) -> DocumentedProperty:
    """Documented spec: pre and post both describe the structure with ``pred_name``.

    ``pre_root`` / ``post_root`` optionally pin the first argument of the
    predicate occurrence (e.g. the parameter at the entry, ``res`` at the
    exit).  The property counts as found when some precondition and some
    postcondition invariant both mention the predicate accordingly, all
    non-spurious.
    """

    def check(spec: Specification) -> bool:
        pre_ok = any(
            _invariant_mentions(inv, pred_name, pre_root) and not inv.spurious
            for inv in spec.preconditions
        )
        post_ok = any(
            _invariant_mentions(inv, pred_name, post_root) and not inv.spurious
            for invariants in spec.postconditions.values()
            for inv in invariants
        )
        return pre_ok and post_ok

    return DocumentedProperty(
        kind="spec",
        description=description or f"pre/post describe a {pred_name} structure",
        check=check,
    )


def post_only_pred(
    pred_name: "str | tuple[str, ...]", post_root: str | None = None, description: str | None = None
) -> DocumentedProperty:
    """Documented spec for constructors: only the postcondition is non-trivial."""

    def check(spec: Specification) -> bool:
        return any(
            _invariant_mentions(inv, pred_name, post_root) and not inv.spurious
            for invariants in spec.postconditions.values()
            for inv in invariants
        )

    return DocumentedProperty(
        kind="spec",
        description=description or f"post describes a {pred_name} structure",
        check=check,
    )


def pre_only_pred(
    pred_name: "str | tuple[str, ...]", pre_root: str | None = None, description: str | None = None
) -> DocumentedProperty:
    """Documented spec for destructors: only the precondition is non-trivial."""

    def check(spec: Specification) -> bool:
        return any(
            _invariant_mentions(inv, pred_name, pre_root) and not inv.spurious
            for inv in spec.preconditions
        )

    return DocumentedProperty(
        kind="spec",
        description=description or f"pre describes a {pred_name} structure",
        check=check,
    )


def loop_with_pred(
    pred_name: "str | tuple[str, ...]", root: str | None = None, description: str | None = None
) -> DocumentedProperty:
    """Documented loop invariant: the loop head maintains a ``pred_name`` shape."""

    def check(spec: Specification) -> bool:
        return any(
            _invariant_mentions(inv, pred_name, root) and not inv.spurious
            for invariants in spec.loop_invariants.values()
            for inv in invariants
        )

    return DocumentedProperty(
        kind="loop",
        description=description or f"loop maintains a {pred_name} structure",
        check=check,
    )


def pure_post_equality(left: str, right: str, description: str | None = None) -> DocumentedProperty:
    """Documented post property: a pure equality (e.g. ``res = x``) holds at exit."""
    from repro.sl.checker import _pure_conjuncts
    from repro.sl.exprs import Eq

    def check(spec: Specification) -> bool:
        for invariants in spec.postconditions.values():
            for invariant in invariants:
                if invariant.spurious:
                    continue
                for conjunct in _pure_conjuncts(invariant.formula.pure):
                    if isinstance(conjunct, Eq):
                        names = {
                            getattr(conjunct.left, "name", "nil"),
                            getattr(conjunct.right, "name", "nil"),
                        }
                        if names == {left, right}:
                            return True
        return False

    return DocumentedProperty(
        kind="spec",
        description=description or f"postcondition implies {left} = {right}",
        check=check,
    )
