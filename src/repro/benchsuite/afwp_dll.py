"""AFWP_DLL category: ``dll_fix`` and ``dll_splice`` from Itzhaky et al.

``dll_fix`` repairs the ``prev`` pointers of a doubly-linked list whose
``next`` chain is intact.  The paper's Section 5.4 case study concerns a
seeded bug where the ``k = nil`` guard is commented out; we register both the
buggy variant (``dll_fix``) and the corrected one (``dll_fix_fixed``) so the
case study can be reproduced programmatically.
"""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_dll
from repro.lang import Assign, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import field, is_null, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("dll", "sll")
_CATEGORY = "AFWP_DLL"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"afwp_dll/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


def _dll_fix(name: str, buggy: bool) -> Function:
    """Rebuild ``prev`` pointers by walking the ``next`` chain.

    The buggy variant mirrors the seeded bug of the paper's Section 5.4 case
    study: the cursor ``k`` is (re-)initialised from the wrong field, so it is
    always ``nil`` when the loop head is reached and the repair loop never
    runs.  SLING's inferred loop invariant then contains ``k = nil``, whereas
    the documented invariant for the correct program allows ``k`` to range
    over the list -- which is exactly how the paper says the bug was spotted.
    """
    cursor_init = Assign("k", field("j", "prev") if buggy else field("j", "next"))
    return Function(
        name,
        [("h", "DllNode*")],
        "DllNode*",
        [
            If(is_null("h"), [Return(v("h"))]),
            Assign("j", v("h")),
            Store(v("j"), "prev", null()),
            cursor_init,
            While(
                not_null("k"),
                [
                    Store(v("k"), "prev", v("j")),
                    Assign("j", v("k")),
                    Assign("k", field("k", "next")),
                ],
            ),
            Return(v("h")),
        ],
    )


def _broken_prev_inputs(rng):
    """Doubly-linked lists whose prev pointers have been scrambled."""

    def case(size):
        def build(heap):
            head = make_dll(heap, rng, size)
            cur = head
            while cur != 0:
                heap.write(cur, "prev", head)
                cur = heap.read(cur, "next")
            return [head]

        return build

    return [case(0), case(1), case(3), case(10)]


_register(
    "dll_fix",
    _dll_fix("dll_fix", buggy=True),
    _broken_prev_inputs,
    [post_only_pred("dll", post_root="res"), loop_with_pred(("dll", "sll"))],
)

_register(
    "dll_fix_fixed",
    _dll_fix("dll_fix_fixed", buggy=False),
    _broken_prev_inputs,
    [post_only_pred("dll", post_root="res"), loop_with_pred(("dll", "sll"))],
)


# dll_splice(x, y): splice list y right after the head of list x.
dll_splice = Function(
    "dll_splice",
    [("x", "DllNode*"), ("y", "DllNode*")],
    "DllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        If(is_null("y"), [Return(v("x"))]),
        Assign("rest", field("x", "next")),
        Store(v("x"), "next", v("y")),
        Store(v("y"), "prev", v("x")),
        Assign("tail", v("y")),
        While(not_null(field("tail", "next")), [Assign("tail", field("tail", "next"))]),
        Store(v("tail"), "next", v("rest")),
        If(not_null("rest"), [Store(v("rest"), "prev", v("tail"))]),
        Return(v("x")),
    ],
)
_register(
    "dll_splice",
    dll_splice,
    two_structure_cases(make_dll),
    [spec_with_pred("dll", pre_root="x"), loop_with_pred("dll")],
)
