"""GRASShopper_SLL (Iterative) category: loop-based singly-linked list programs."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, eq, field, i, is_null, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("sll", "lseg")
_CATEGORY = "GRASShopper_SLL (Iterative)"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"gh_sll_iter/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


_SPEC = [spec_with_pred(("sll", "lseg"), pre_root="x")]
_SPEC_LOOP = [spec_with_pred(("sll", "lseg"), pre_root="x"), loop_with_pred(("sll", "lseg"))]


concat = Function(
    "concat",
    [("x", "SllNode*"), ("y", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("y")),
        Return(v("x")),
    ],
)
_register("concat", concat, two_structure_cases(make_sll), _SPEC_LOOP)


copy = Function(
    "copy",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Assign("head", null()),
        Assign("tail", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Alloc("node", "SllNode"),
                If(
                    is_null("head"),
                    [Assign("head", v("node")), Assign("tail", v("node"))],
                    [Store(v("tail"), "next", v("node")), Assign("tail", v("node"))],
                ),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("head")),
    ],
)
_register(
    "copy",
    copy,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res"), loop_with_pred(("sll", "lseg"))],
)


dispose = Function(
    "dispose",
    [("x", "SllNode*")],
    "SllNode*",
    [
        While(
            not_null("x"),
            [Assign("t", field("x", "next")), Free(v("x")), Assign("x", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "dispose",
    dispose,
    single_structure_cases(make_sll),
    [pre_only_pred(("sll", "lseg"), pre_root="x"), loop_with_pred(("sll", "lseg"), root="x")],
    uses_free=True,
)


# filter(x): drop (and free) every second node of the list.
filter_list = Function(
    "filter",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("victim", field("cur", "next")),
                If(
                    not_null("victim"),
                    [
                        Store(v("cur"), "next", field("victim", "next")),
                        Free(v("victim")),
                    ],
                ),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("x")),
    ],
)
_register(
    "filter",
    filter_list,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x"), loop_with_pred(("sll", "lseg"))],
    uses_free=True,
)


insert = Function(
    "insert",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Alloc("node", "SllNode"),
        If(is_null("x"), [Return(v("node"))]),
        Assign("cur", v("x")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("node")),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res"), loop_with_pred(("sll", "lseg"))],
)


remove = Function(
    "rm",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Assign("rest", field("x", "next")),
        Free(v("x")),
        Return(v("rest")),
    ],
)
_register(
    "rm",
    remove,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res")],
    uses_free=True,
)


reverse = Function(
    "reverse",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Assign("prev", null()),
        While(
            not_null("x"),
            [
                Assign("next", field("x", "next")),
                Store(v("x"), "next", v("prev")),
                Assign("prev", v("x")),
                Assign("x", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    single_structure_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x", post_root="res"), loop_with_pred(("sll", "lseg"))],
)


traverse = Function(
    "traverse",
    [("x", "SllNode*")],
    "int",
    [
        Assign("n", i(0)),
        Assign("cur", v("x")),
        While(not_null("cur"), [Assign("cur", field("cur", "next")), Assign("n", add(v("n"), i(1)))]),
        Return(v("n")),
    ],
)
_register("traverse", traverse, single_structure_cases(make_sll), _SPEC_LOOP)
