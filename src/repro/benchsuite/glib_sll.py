"""glib/glist_SLL category: GLib ``GSList`` (singly-linked list) functions.

Includes the ``sortMerge`` program with the typo bug the paper discusses in
Section 5.4 (returning ``list_next`` instead of ``list->next``, which makes
the function always return null) and its fixed variant ``sortMergeFixed``
used by the FBInfer false-positive case study.
"""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    pre_only_pred,
    pure_post_equality,
    register,
    spec_with_pred,
)
from repro.datagen import make_glib_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, and_, call, eq, field, gt, i, is_null, le, lt, ne, not_null, null, sub, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("gsll", "gslseg")
_CATEGORY = "glib/glist_SLL"


def _register(name, functions, main, make_tests, documented, **kwargs):
    if not isinstance(functions, list):
        functions = [functions]
    register(
        BenchmarkProgram(
            name=f"gslist/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


_SPEC = [spec_with_pred("gsll", pre_root="lst")]
_SPEC_LOOP = [spec_with_pred("gsll", pre_root="lst"), loop_with_pred(("gsll", "gslseg"))]


# -- g_slist_append(lst, k): append at the tail ------------------------------------------------

append = Function(
    "append",
    [("lst", "GSNode*"), ("k", "int")],
    "GSNode*",
    [
        Alloc("node", "GSNode", {"data": v("k")}),
        If(is_null("lst"), [Return(v("node"))]),
        Assign("cur", v("lst")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("node")),
        Return(v("lst")),
    ],
)
_register("append", append, "append", structure_and_value_cases(make_glib_sll), _SPEC_LOOP)


# -- g_slist_concat(a, b) ------------------------------------------------------------------------------

concat = Function(
    "concat",
    [("a", "GSNode*"), ("b", "GSNode*")],
    "GSNode*",
    [
        If(is_null("a"), [Return(v("b"))]),
        Assign("cur", v("a")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Store(v("cur"), "next", v("b")),
        Return(v("a")),
    ],
)
_register(
    "concat",
    concat,
    "concat",
    two_structure_cases(make_glib_sll),
    [spec_with_pred("gsll", pre_root="a"), spec_with_pred("gsll", pre_root="b"), loop_with_pred(("gsll", "gslseg"))],
)


# -- g_slist_copy(lst) ------------------------------------------------------------------------------------

copy = Function(
    "copy",
    [("lst", "GSNode*")],
    "GSNode*",
    [
        If(is_null("lst"), [Return(null())]),
        Alloc("node", "GSNode", {"data": field("lst", "data")}),
        Store(v("node"), "next", call("copy", field("lst", "next"))),
        Return(v("node")),
    ],
)
_register(
    "copy",
    copy,
    "copy",
    single_structure_cases(make_glib_sll),
    [spec_with_pred("gsll", pre_root="lst", post_root="res")],
)


# -- g_slist_find(lst, k) -----------------------------------------------------------------------------------

find = Function(
    "find",
    [("lst", "GSNode*"), ("k", "int")],
    "GSNode*",
    [
        Assign("cur", v("lst")),
        While(
            and_(not_null("cur"), ne(field("cur", "data"), v("k"))),
            [Assign("cur", field("cur", "next"))],
        ),
        Return(v("cur")),
    ],
)
_register("find", find, "find", structure_and_value_cases(make_glib_sll, values=(5, 50, 95)), _SPEC_LOOP)


# -- g_slist_free(lst) ---------------------------------------------------------------------------------------

free_list = Function(
    "free",
    [("lst", "GSNode*")],
    "GSNode*",
    [
        While(
            not_null("lst"),
            [Assign("t", field("lst", "next")), Free(v("lst")), Assign("lst", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "free",
    free_list,
    "free",
    single_structure_cases(make_glib_sll),
    [pre_only_pred("gsll", pre_root="lst"), loop_with_pred("gsll", root="lst")],
    uses_free=True,
)


# -- g_slist_index(lst, k) ----------------------------------------------------------------------------------------

index = Function(
    "index",
    [("lst", "GSNode*"), ("k", "int")],
    "int",
    [
        Assign("cur", v("lst")),
        Assign("pos", i(0)),
        While(
            and_(not_null("cur"), ne(field("cur", "data"), v("k"))),
            [Assign("cur", field("cur", "next")), Assign("pos", add(v("pos"), i(1)))],
        ),
        If(is_null("cur"), [Return(i(-1))]),
        Return(v("pos")),
    ],
)
_register("index", index, "index", structure_and_value_cases(make_glib_sll, values=(5, 50, 95)), _SPEC_LOOP)


# -- g_slist_insert_at_pos(lst, n): insert a fresh node at position n ------------------------------------------------

insert_at_pos = Function(
    "insertAtPos",
    [("lst", "GSNode*"), ("n", "int")],
    "GSNode*",
    [
        Alloc("node", "GSNode", {"data": i(0)}),
        If(is_null("lst"), [Return(v("node"))]),
        If(le(v("n"), i(0)), [Store(v("node"), "next", v("lst")), Return(v("node"))]),
        Assign("cur", v("lst")),
        Assign("k", i(1)),
        While(
            and_(not_null(field("cur", "next")), lt(v("k"), v("n"))),
            [Assign("cur", field("cur", "next")), Assign("k", add(v("k"), i(1)))],
        ),
        Store(v("node"), "next", field("cur", "next")),
        Store(v("cur"), "next", v("node")),
        Return(v("lst")),
    ],
)
_register(
    "insertAtPos",
    insert_at_pos,
    "insertAtPos",
    structure_and_value_cases(make_glib_sll),
    [spec_with_pred("gsll", pre_root="lst", post_root="res"), loop_with_pred(("gsll", "gslseg"))],
)


# -- g_slist_last(lst) ------------------------------------------------------------------------------------------------

last = Function(
    "last",
    [("lst", "GSNode*")],
    "GSNode*",
    [
        If(is_null("lst"), [Return(null())]),
        Assign("cur", v("lst")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Return(v("cur")),
    ],
)
_register("last", last, "last", single_structure_cases(make_glib_sll), _SPEC_LOOP)


# -- g_slist_length(lst) -----------------------------------------------------------------------------------------------

length = Function(
    "length",
    [("lst", "GSNode*")],
    "int",
    [
        Assign("n", i(0)),
        Assign("cur", v("lst")),
        While(not_null("cur"), [Assign("cur", field("cur", "next")), Assign("n", add(v("n"), i(1)))]),
        Return(v("n")),
    ],
)
_register("length", length, "length", single_structure_cases(make_glib_sll), _SPEC_LOOP)


# -- g_slist_nth(lst, n) ------------------------------------------------------------------------------------------------

nth = Function(
    "nth",
    [("lst", "GSNode*"), ("n", "int")],
    "GSNode*",
    [
        Assign("cur", v("lst")),
        While(
            and_(not_null("cur"), gt(v("n"), i(0))),
            [Assign("cur", field("cur", "next")), Assign("n", sub(v("n"), i(1)))],
        ),
        Return(v("cur")),
    ],
)
_register("nth", nth, "nth", structure_and_value_cases(make_glib_sll), _SPEC_LOOP)


# -- g_slist_position(lst, node) ------------------------------------------------------------------------------------------

position = Function(
    "position",
    [("lst", "GSNode*"), ("node", "GSNode*")],
    "int",
    [
        Assign("cur", v("lst")),
        Assign("pos", i(0)),
        While(
            and_(not_null("cur"), ne(v("cur"), v("node"))),
            [Assign("cur", field("cur", "next")), Assign("pos", add(v("pos"), i(1)))],
        ),
        If(is_null("cur"), [Return(i(-1))]),
        Return(v("pos")),
    ],
)


def _position_cases(rng):
    def case_with_member(heap):
        head = make_glib_sll(heap, rng, 5)
        node = heap.read(heap.read(head, "next"), "next")
        return [head, node]

    def case_missing(heap):
        return [make_glib_sll(heap, rng, 3), make_glib_sll(heap, rng, 1)]

    def case_empty(heap):
        return [0, 0]

    return [case_with_member, case_missing, case_empty]


_register(
    "position",
    position,
    "position",
    _position_cases,
    [spec_with_pred("gsll", pre_root="lst"), loop_with_pred(("gsll", "gslseg"))],
)


# -- g_slist_prepend(lst, k) --------------------------------------------------------------------------------------------------

prepend = Function(
    "prepend",
    [("lst", "GSNode*"), ("k", "int")],
    "GSNode*",
    [
        Alloc("node", "GSNode", {"data": v("k"), "next": v("lst")}),
        Return(v("node")),
    ],
)
_register(
    "prepend",
    prepend,
    "prepend",
    structure_and_value_cases(make_glib_sll),
    [spec_with_pred("gsll", pre_root="lst", post_root="res")],
)


# -- g_slist_remove(lst, k): unlink and free the first node holding k ------------------------------------------------------------

remove = Function(
    "rm",
    [("lst", "GSNode*"), ("k", "int")],
    "GSNode*",
    [
        If(is_null("lst"), [Return(null())]),
        If(
            eq(field("lst", "data"), v("k")),
            [Assign("rest", field("lst", "next")), Free(v("lst")), Return(v("rest"))],
        ),
        Assign("cur", v("lst")),
        While(
            and_(not_null(field("cur", "next")), ne(field(field("cur", "next"), "data"), v("k"))),
            [Assign("cur", field("cur", "next"))],
        ),
        If(
            not_null(field("cur", "next")),
            [
                Assign("victim", field("cur", "next")),
                Store(v("cur"), "next", field("victim", "next")),
                Free(v("victim")),
            ],
        ),
        Return(v("lst")),
    ],
)
_register(
    "rm",
    remove,
    "rm",
    structure_and_value_cases(make_glib_sll, values=(5, 50, 95)),
    [spec_with_pred("gsll", pre_root="lst"), loop_with_pred(("gsll", "gslseg"))],
    uses_free=True,
)


# -- g_slist_reverse(lst) -----------------------------------------------------------------------------------------------------------

reverse = Function(
    "reverse",
    [("lst", "GSNode*")],
    "GSNode*",
    [
        Assign("prev", null()),
        Assign("cur", v("lst")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", v("prev")),
                Assign("prev", v("cur")),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    "reverse",
    single_structure_cases(make_glib_sll),
    [spec_with_pred("gsll", pre_root="lst"), loop_with_pred(("gsll", "gslseg"), root="cur")],
)


# -- sortMerge(a, b): merge two sorted lists.  The buggy variant reproduces the typo of Section 5.4 --------------------------------


def _sort_merge(name: str, buggy: bool) -> Function:
    from repro.lang.builder import call

    merge_tail = (
        # BUG (intentional, mirrors the glib typo): returns the local
        # ``list_next`` variable, which is never re-assigned from null, so
        # the function always returns null.
        [Assign("list_next", null()), Return(v("list_next"))]
        if buggy
        else [Return(v("head"))]
    )
    return Function(
        name,
        [("a", "GSNode*"), ("b", "GSNode*")],
        "GSNode*",
        [
            If(is_null("a"), [Return(v("b"))]),
            If(is_null("b"), [Return(v("a"))]),
            If(
                le(field("a", "data"), field("b", "data")),
                [Assign("head", v("a")), Assign("a", field("a", "next"))],
                [Assign("head", v("b")), Assign("b", field("b", "next"))],
            ),
            Assign("tail", v("head")),
            While(
                and_(not_null("a"), not_null("b")),
                [
                    If(
                        le(field("a", "data"), field("b", "data")),
                        [Store(v("tail"), "next", v("a")), Assign("tail", v("a")), Assign("a", field("a", "next"))],
                        [Store(v("tail"), "next", v("b")), Assign("tail", v("b")), Assign("b", field("b", "next"))],
                    ),
                ],
            ),
            If(is_null("a"), [Store(v("tail"), "next", v("b"))], [Store(v("tail"), "next", v("a"))]),
            *merge_tail,
        ],
    )


_register(
    "sortMerge",
    _sort_merge("sortMerge", buggy=True),
    "sortMerge",
    two_structure_cases(make_glib_sll),
    [
        spec_with_pred("gsll", pre_root="a"),
        # The documented postcondition describes the merged list rooted at
        # ``res``; the buggy version returns null, so SLING reports res = nil
        # instead (the Section 5.4 case study checks exactly this).
        spec_with_pred("gsll", post_root="res"),
    ],
)

_register(
    "sortMergeFixed",
    _sort_merge("sortMergeFixed", buggy=False),
    "sortMergeFixed",
    two_structure_cases(make_glib_sll),
    [
        spec_with_pred("gsll", pre_root="a"),
        spec_with_pred("gsll", post_root="res"),
        loop_with_pred(("gsll", "gslseg")),
    ],
)
