"""glib/glist_DLL category: GLib ``GList`` (doubly-linked list) functions."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_glib_dll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, and_, eq, field, gt, i, is_null, lt, ne, not_null, null, sub, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("gdll")
_CATEGORY = "glib/glist_DLL"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"glist_dll/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


_SPEC = [spec_with_pred("gdll", pre_root="lst")]
_SPEC_LOOP = [spec_with_pred("gdll", pre_root="lst"), loop_with_pred("gdll")]


# -- g_list_find(lst, k): first node holding value k ---------------------------------------------

find = Function(
    "find",
    [("lst", "GNode*"), ("k", "int")],
    "GNode*",
    [
        Assign("cur", v("lst")),
        While(
            and_(not_null("cur"), ne(field("cur", "data"), v("k"))),
            [Assign("cur", field("cur", "next"))],
        ),
        Return(v("cur")),
    ],
)
_register("find", find, structure_and_value_cases(make_glib_dll, values=(5, 50, 95)), _SPEC_LOOP)


# -- g_list_free(lst): free every node --------------------------------------------------------------

free_list = Function(
    "free",
    [("lst", "GNode*")],
    "GNode*",
    [
        While(
            not_null("lst"),
            [Assign("t", field("lst", "next")), Free(v("lst")), Assign("lst", v("t"))],
        ),
        Return(null()),
    ],
)
_register(
    "free",
    free_list,
    single_structure_cases(make_glib_dll),
    [pre_only_pred("gdll", pre_root="lst"), loop_with_pred("gdll", root="lst")],
    uses_free=True,
)


# -- g_list_index(lst, k): position of the first node holding k --------------------------------------

index = Function(
    "index",
    [("lst", "GNode*"), ("k", "int")],
    "int",
    [
        Assign("cur", v("lst")),
        Assign("pos", i(0)),
        While(
            and_(not_null("cur"), ne(field("cur", "data"), v("k"))),
            [Assign("cur", field("cur", "next")), Assign("pos", add(v("pos"), i(1)))],
        ),
        If(is_null("cur"), [Return(i(-1))]),
        Return(v("pos")),
    ],
)
_register("index", index, structure_and_value_cases(make_glib_dll, values=(5, 50, 95)), _SPEC_LOOP)


# -- g_list_last(lst): last node --------------------------------------------------------------------------

last = Function(
    "last",
    [("lst", "GNode*")],
    "GNode*",
    [
        If(is_null("lst"), [Return(null())]),
        Assign("cur", v("lst")),
        While(not_null(field("cur", "next")), [Assign("cur", field("cur", "next"))]),
        Return(v("cur")),
    ],
)
_register("last", last, single_structure_cases(make_glib_dll), _SPEC_LOOP)


# -- g_list_length(lst) --------------------------------------------------------------------------------------

length = Function(
    "length",
    [("lst", "GNode*")],
    "int",
    [
        Assign("n", i(0)),
        Assign("cur", v("lst")),
        While(not_null("cur"), [Assign("cur", field("cur", "next")), Assign("n", add(v("n"), i(1)))]),
        Return(v("n")),
    ],
)
_register("length", length, single_structure_cases(make_glib_dll), _SPEC_LOOP)


# -- g_list_nth(lst, n): n-th node ------------------------------------------------------------------------------

nth = Function(
    "nth",
    [("lst", "GNode*"), ("n", "int")],
    "GNode*",
    [
        Assign("cur", v("lst")),
        While(
            and_(not_null("cur"), gt(v("n"), i(0))),
            [Assign("cur", field("cur", "next")), Assign("n", sub(v("n"), i(1)))],
        ),
        Return(v("cur")),
    ],
)
_register("nth", nth, structure_and_value_cases(make_glib_dll), _SPEC_LOOP)


# -- g_list_nth_data(lst, n): data of the n-th node ------------------------------------------------------------------

nth_data = Function(
    "nthData",
    [("lst", "GNode*"), ("n", "int")],
    "int",
    [
        Assign("cur", v("lst")),
        While(
            and_(not_null("cur"), gt(v("n"), i(0))),
            [Assign("cur", field("cur", "next")), Assign("n", sub(v("n"), i(1)))],
        ),
        If(is_null("cur"), [Return(i(-1))]),
        Return(field("cur", "data")),
    ],
)
_register("nthData", nth_data, structure_and_value_cases(make_glib_dll), _SPEC_LOOP)


# -- g_list_position(lst, node): index of a given node ---------------------------------------------------------------------

position = Function(
    "position",
    [("lst", "GNode*"), ("node", "GNode*")],
    "int",
    [
        Assign("cur", v("lst")),
        Assign("pos", i(0)),
        While(
            and_(not_null("cur"), ne(v("cur"), v("node"))),
            [Assign("cur", field("cur", "next")), Assign("pos", add(v("pos"), i(1)))],
        ),
        If(is_null("cur"), [Return(i(-1))]),
        Return(v("pos")),
    ],
)


def _position_cases(rng):
    from repro.datagen import make_glib_dll as gen

    def case_with_member(heap):
        head = gen(heap, rng, 5)
        node = heap.read(heap.read(head, "next"), "next")
        return [head, node]

    def case_missing(heap):
        head = gen(heap, rng, 3)
        other = gen(heap, rng, 1)
        return [head, other]

    def case_empty(heap):
        return [0, 0]

    return [case_with_member, case_missing, case_empty]


register(
    BenchmarkProgram(
        name="glist_dll/position",
        category=_CATEGORY,
        program=Program(_STRUCTS, [position]),
        function="position",
        predicates=_PREDICATES,
        make_tests=_position_cases,
        documented=[spec_with_pred("gdll", pre_root="lst"), loop_with_pred("gdll")],
    )
)


# -- g_list_prepend(lst, k) ----------------------------------------------------------------------------------------------------

prepend = Function(
    "prepend",
    [("lst", "GNode*"), ("k", "int")],
    "GNode*",
    [
        Alloc("node", "GNode", {"data": v("k"), "next": v("lst")}),
        If(not_null("lst"), [Store(v("lst"), "prev", v("node"))]),
        Return(v("node")),
    ],
)
_register(
    "prepend",
    prepend,
    structure_and_value_cases(make_glib_dll),
    [spec_with_pred("gdll", pre_root="lst", post_root="res")],
)


# -- g_list_reverse(lst) -----------------------------------------------------------------------------------------------------------

reverse = Function(
    "reverse",
    [("lst", "GNode*")],
    "GNode*",
    [
        Assign("prev", null()),
        Assign("cur", v("lst")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", v("prev")),
                Store(v("cur"), "prev", v("next")),
                Assign("prev", v("cur")),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    single_structure_cases(make_glib_dll),
    [spec_with_pred("gdll", pre_root="lst"), loop_with_pred("gdll", root="cur")],
)
