"""AVL Tree category: height-balanced binary search trees."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_avl
from repro.lang import (
    Alloc,
    Assign,
    Function,
    If,
    Program,
    Return,
    Store,
    While,
    standard_structs,
)
from repro.lang.builder import add, call, field, gt, i, is_null, lt, not_null, null, sub, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("avl")
_CATEGORY = "AVL Tree"


def _register(name, functions, main, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"avl/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- shared helpers: height and rotations -------------------------------------------------------

height_of = Function(
    "heightOf",
    [("t", "AvlNode*")],
    "int",
    [
        If(is_null("t"), [Return(i(0))]),
        Return(field("t", "height")),
    ],
)

fix_height = Function(
    "fixHeight",
    [("t", "AvlNode*")],
    "int",
    [
        Assign("hl", call("heightOf", field("t", "left"))),
        Assign("hr", call("heightOf", field("t", "right"))),
        If(
            gt(v("hl"), v("hr")),
            [Store(v("t"), "height", add(v("hl"), i(1)))],
            [Store(v("t"), "height", add(v("hr"), i(1)))],
        ),
        Return(field("t", "height")),
    ],
)

rotate_right = Function(
    "rotateRight",
    [("t", "AvlNode*")],
    "AvlNode*",
    [
        Assign("l", field("t", "left")),
        Store(v("t"), "left", field("l", "right")),
        Store(v("l"), "right", v("t")),
        Assign("ignore1", call("fixHeight", v("t"))),
        Assign("ignore2", call("fixHeight", v("l"))),
        Return(v("l")),
    ],
)

rotate_left = Function(
    "rotateLeft",
    [("t", "AvlNode*")],
    "AvlNode*",
    [
        Assign("r", field("t", "right")),
        Store(v("t"), "right", field("r", "left")),
        Store(v("r"), "left", v("t")),
        Assign("ignore1", call("fixHeight", v("t"))),
        Assign("ignore2", call("fixHeight", v("r"))),
        Return(v("r")),
    ],
)

avl_balance = Function(
    "avlBalance",
    [("t", "AvlNode*")],
    "AvlNode*",
    [
        If(is_null("t"), [Return(null())]),
        Assign("ignore", call("fixHeight", v("t"))),
        Assign("hl", call("heightOf", field("t", "left"))),
        Assign("hr", call("heightOf", field("t", "right"))),
        If(
            gt(sub(v("hl"), v("hr")), i(1)),
            [
                If(
                    lt(
                        call("heightOf", field(field("t", "left"), "left")),
                        call("heightOf", field(field("t", "left"), "right")),
                    ),
                    [Store(v("t"), "left", call("rotateLeft", field("t", "left")))],
                ),
                Return(call("rotateRight", v("t"))),
            ],
        ),
        If(
            gt(sub(v("hr"), v("hl")), i(1)),
            [
                If(
                    lt(
                        call("heightOf", field(field("t", "right"), "right")),
                        call("heightOf", field(field("t", "right"), "left")),
                    ),
                    [Store(v("t"), "right", call("rotateRight", field("t", "right")))],
                ),
                Return(call("rotateLeft", v("t"))),
            ],
        ),
        Return(v("t")),
    ],
)

_HELPERS = [height_of, fix_height, rotate_left, rotate_right, avl_balance]


# -- avlBalance(t): rebalance a node whose subtrees are AVL ------------------------------------------

_register(
    "avlBalance",
    _HELPERS,
    "avlBalance",
    single_structure_cases(make_avl),
    [spec_with_pred("avl", pre_root="t", post_root="res")],
)


# -- findSmallest(t): leftmost node of an AVL tree -----------------------------------------------------

find_smallest = Function(
    "findSmallest",
    [("t", "AvlNode*")],
    "AvlNode*",
    [
        If(is_null("t"), [Return(null())]),
        Assign("cur", v("t")),
        While(not_null(field("cur", "left")), [Assign("cur", field("cur", "left"))]),
        Return(v("cur")),
    ],
)
_register(
    "findSmallest",
    [find_smallest],
    "findSmallest",
    single_structure_cases(make_avl),
    [spec_with_pred("avl", pre_root="t"), loop_with_pred("avl", root="t")],
)


# -- insert(t, k): AVL insertion with rebalancing -------------------------------------------------------

avl_insert = Function(
    "insert",
    [("t", "AvlNode*"), ("k", "int")],
    "AvlNode*",
    [
        If(
            is_null("t"),
            [Alloc("node", "AvlNode", {"data": v("k"), "height": i(1)}), Return(v("node"))],
        ),
        If(
            lt(v("k"), field("t", "data")),
            [Store(v("t"), "left", call("insert", field("t", "left"), v("k")))],
            [Store(v("t"), "right", call("insert", field("t", "right"), v("k")))],
        ),
        Return(call("avlBalance", v("t"))),
    ],
)
_register(
    "insert",
    [avl_insert, *_HELPERS],
    "insert",
    structure_and_value_cases(make_avl, values=(7, 450, 999)),
    [spec_with_pred("avl", pre_root="t", post_root="res")],
)


# -- del(t): delete the minimum while keeping heights fixed up ---------------------------------------------

avl_del_min = Function(
    "del",
    [("t", "AvlNode*")],
    "AvlNode*",
    [
        If(is_null("t"), [Return(null())]),
        If(is_null(field("t", "left")), [Return(field("t", "right"))]),
        Store(v("t"), "left", call("del", field("t", "left"))),
        Return(call("avlBalance", v("t"))),
    ],
)
_register(
    "del",
    [avl_del_min, *_HELPERS],
    "del",
    single_structure_cases(make_avl),
    [spec_with_pred("avl", pre_root="t", post_root="res")],
)
