"""SLL category: basic algorithms over standard singly-linked lists.

Mirrors the paper's first Table 1 row: ``append, delAll, find, insert,
reverse, insertFront, insertBack, copy`` over plain ``SllNode`` cells.
"""

from __future__ import annotations

from repro.benchsuite.common import (
    single_structure_cases,
    structure_and_value_cases,
    two_structure_cases,
)
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    pre_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_sll
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import (
    add,
    and_,
    call,
    eq,
    field,
    gt,
    i,
    is_null,
    lt,
    ne,
    not_null,
    null,
    sub,
    v,
)
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("sll", "lseg")
_CATEGORY = "SLL"


def _register(name, function, make_tests, documented, **kwargs):
    program = Program(_STRUCTS, [function])
    register(
        BenchmarkProgram(
            name=f"sll/{name}",
            category=_CATEGORY,
            program=program,
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- append(x, y): append list y to the end of list x (recursive) --------------

append = Function(
    "append",
    [("x", "SllNode*"), ("y", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(v("y"))]),
        Store(v("x"), "next", call("append", field("x", "next"), v("y"))),
        Return(v("x")),
    ],
)
_register(
    "append",
    append,
    two_structure_cases(make_sll),
    [spec_with_pred("sll", pre_root="x", post_root=None)],
)


# -- delAll(x): free every node of the list -------------------------------------

del_all = Function(
    "delAll",
    [("x", "SllNode*")],
    "SllNode*",
    [
        While(
            not_null("x"),
            [
                Assign("t", field("x", "next")),
                Free(v("x")),
                Assign("x", v("t")),
            ],
        ),
        Return(null()),
    ],
)
_register(
    "delAll",
    del_all,
    single_structure_cases(make_sll),
    [pre_only_pred(("sll", "lseg"), pre_root="x"), loop_with_pred(("sll", "lseg"), root="x")],
    uses_free=True,
)


# -- find(x, n): return the n-th node of the list --------------------------------

find = Function(
    "find",
    [("x", "SllNode*"), ("n", "int")],
    "SllNode*",
    [
        Assign("cur", v("x")),
        Assign("k", i(0)),
        While(
            and_(not_null("cur"), lt(v("k"), v("n"))),
            [
                Assign("cur", field("cur", "next")),
                Assign("k", add(v("k"), i(1))),
            ],
        ),
        Return(v("cur")),
    ],
)
_register(
    "find",
    find,
    structure_and_value_cases(make_sll),
    [spec_with_pred(("sll", "lseg"), pre_root="x"), loop_with_pred("lseg", root="x")],
)


# -- insert(x, n): insert a fresh node after position n ---------------------------

insert = Function(
    "insert",
    [("x", "SllNode*"), ("n", "int")],
    "SllNode*",
    [
        If(is_null("x"), [Alloc("node", "SllNode"), Return(v("node"))]),
        Assign("cur", v("x")),
        Assign("k", i(0)),
        While(
            and_(not_null(field("cur", "next")), lt(v("k"), v("n"))),
            [
                Assign("cur", field("cur", "next")),
                Assign("k", add(v("k"), i(1))),
            ],
        ),
        Alloc("node", "SllNode", {"next": field("cur", "next")}),
        Store(v("cur"), "next", v("node")),
        Return(v("x")),
    ],
)
_register(
    "insert",
    insert,
    structure_and_value_cases(make_sll),
    [spec_with_pred("sll", pre_root="x", post_root="res"), loop_with_pred("lseg", root="x")],
)


# -- reverse(x): iterative in-place reversal ---------------------------------------

reverse = Function(
    "reverse",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Assign("prev", null()),
        Assign("cur", v("x")),
        While(
            not_null("cur"),
            [
                Assign("next", field("cur", "next")),
                Store(v("cur"), "next", v("prev")),
                Assign("prev", v("cur")),
                Assign("cur", v("next")),
            ],
        ),
        Return(v("prev")),
    ],
)
_register(
    "reverse",
    reverse,
    single_structure_cases(make_sll),
    [
        spec_with_pred("sll", pre_root="x", post_root="res"),
        loop_with_pred("sll", root="cur"),
    ],
)


# -- insertFront(x): push a fresh node at the head -----------------------------------

insert_front = Function(
    "insertFront",
    [("x", "SllNode*")],
    "SllNode*",
    [
        Alloc("node", "SllNode", {"next": v("x")}),
        Return(v("node")),
    ],
)
_register(
    "insertFront",
    insert_front,
    single_structure_cases(make_sll),
    [spec_with_pred("sll", pre_root="x", post_root="res")],
)


# -- insertBack(x): recursive insertion at the tail ------------------------------------

insert_back = Function(
    "insertBack",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Alloc("node", "SllNode"), Return(v("node"))]),
        Store(v("x"), "next", call("insertBack", field("x", "next"))),
        Return(v("x")),
    ],
)
_register(
    "insertBack",
    insert_back,
    single_structure_cases(make_sll),
    [spec_with_pred("sll", pre_root="x", post_root="res")],
)


# -- copy(x): recursive structural copy ---------------------------------------------------

copy = Function(
    "copy",
    [("x", "SllNode*")],
    "SllNode*",
    [
        If(is_null("x"), [Return(null())]),
        Alloc("node", "SllNode", {"next": call("copy", field("x", "next"))}),
        Return(v("node")),
    ],
)
_register(
    "copy",
    copy,
    single_structure_cases(make_sll),
    [spec_with_pred("sll", pre_root="x", post_root="res")],
)
