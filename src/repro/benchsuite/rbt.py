"""Red-black Tree category.

The paper reports that ``insert`` crashes after its first iteration and
``del`` produces no traces at all; the re-implementations below reproduce
both behaviours (``insert`` performs one unbalanced insertion step and then
dereferences a null grandparent; ``del`` crashes immediately).
"""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, structure_and_value_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    register,
    spec_with_pred,
)
from repro.datagen import make_red_black_tree
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, standard_structs
from repro.lang.builder import call, field, i, is_null, lt, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("rbt")
_CATEGORY = "Red-black Tree"


def _register(name, functions, main, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"rbt/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- insert(t, k): BST-style insertion of a red leaf (no rebalancing; see module docstring) -----------

insert = Function(
    "insert",
    [("t", "RbNode*"), ("k", "int")],
    "RbNode*",
    [
        If(
            is_null("t"),
            [Alloc("node", "RbNode", {"data": v("k"), "color": i(1)}), Return(v("node"))],
        ),
        If(
            lt(v("k"), field("t", "data")),
            [Store(v("t"), "left", call("insert", field("t", "left"), v("k")))],
            [Store(v("t"), "right", call("insert", field("t", "right"), v("k")))],
        ),
        Return(v("t")),
    ],
)


_register(
    "insert",
    [insert],
    "insert",
    structure_and_value_cases(make_red_black_tree, values=(7, 450, 999)),
    [spec_with_pred("rbt", pre_root="t", post_root="res")],
)


# -- del(t): intentionally buggy removal (crashes before reaching any location of interest) ------------

delete = Function(
    "del",
    [("t", "RbNode*")],
    "RbNode*",
    [
        # BUG (intentional): dereferences the left child of the root without
        # checking the root itself, crashing on every input (marked * in
        # Table 1).
        Assign("l", field(field("t", "left"), "left")),
        If(is_null("t"), [Return(null())]),
        Free(v("t")),
        Return(v("l")),
    ],
)
_register(
    "del",
    [delete],
    "del",
    single_structure_cases(make_red_black_tree, sizes=(0, 0, 0)),
    [spec_with_pred("rbt", pre_root="t")],
    has_bug=True,
)
