"""Binomial Heap category: child/sibling binomial forests."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases, two_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_binomial_heap
from repro.lang import Assign, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import and_, call, field, is_null, le, lt, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("binheap")
_CATEGORY = "Binomial Heap"


def _register(name, functions, main, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"binomial/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- findMin(h): smallest root of the binomial forest -------------------------------------------

find_min = Function(
    "findMin",
    [("h", "BinNode*")],
    "BinNode*",
    [
        If(is_null("h"), [Return(null())]),
        Assign("best", v("h")),
        Assign("cur", field("h", "sibling")),
        While(
            not_null("cur"),
            [
                If(lt(field("cur", "data"), field("best", "data")), [Assign("best", v("cur"))]),
                Assign("cur", field("cur", "sibling")),
            ],
        ),
        Return(v("best")),
    ],
)
_register(
    "findMin",
    [find_min],
    "findMin",
    single_structure_cases(make_binomial_heap),
    [spec_with_pred("binheap", pre_root="h"), loop_with_pred("binheap")],
)


# -- merge(a, b): merge two root lists ordered by degree (without linking) ------------------------

merge = Function(
    "merge",
    [("a", "BinNode*"), ("b", "BinNode*")],
    "BinNode*",
    [
        If(is_null("a"), [Return(v("b"))]),
        If(is_null("b"), [Return(v("a"))]),
        If(
            le(field("a", "degree"), field("b", "degree")),
            [
                Store(v("a"), "sibling", call("merge", field("a", "sibling"), v("b"))),
                Return(v("a")),
            ],
        ),
        Store(v("b"), "sibling", call("merge", v("a"), field("b", "sibling"))),
        Return(v("b")),
    ],
)
_register(
    "merge",
    [merge],
    "merge",
    two_structure_cases(make_binomial_heap),
    [spec_with_pred("binheap", pre_root="a"), spec_with_pred("binheap", pre_root="b")],
)
