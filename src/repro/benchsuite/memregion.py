"""Memory Region category: doubly-linked lists of sized memory chunks.

The original benchmark (``memRegionDllOps``) exercises several operations on
a Linux-style memory-region list in one function; we mirror that structure
with a single driver that inserts, splits and coalesces chunks.
"""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_mem_chunk_list
from repro.lang import Alloc, Assign, Function, If, Program, Return, Store, While, standard_structs
from repro.lang.builder import add, field, ge, i, is_null, not_null, null, sub, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("memdll")
_CATEGORY = "Memory Region"

# memRegionDllOps(region): walk the chunk list; split every chunk larger than
# 64 bytes into two chunks and accumulate the total size.
mem_region_dll_ops = Function(
    "memRegionDllOps",
    [("region", "MemChunk*")],
    "int",
    [
        Assign("total", i(0)),
        Assign("cur", v("region")),
        While(
            not_null("cur"),
            [
                Assign("size", field("cur", "size")),
                Assign("total", add(v("total"), v("size"))),
                If(
                    ge(v("size"), i(128)),
                    [
                        Alloc(
                            "half",
                            "MemChunk",
                            {
                                "size": sub(v("size"), i(64)),
                                "next": field("cur", "next"),
                                "prev": v("cur"),
                            },
                        ),
                        If(
                            not_null(field("cur", "next")),
                            [Store(field("cur", "next"), "prev", v("half"))],
                        ),
                        Store(v("cur"), "next", v("half")),
                        Store(v("cur"), "size", i(64)),
                    ],
                ),
                Assign("cur", field("cur", "next")),
            ],
        ),
        Return(v("total")),
    ],
)

register(
    BenchmarkProgram(
        name="memregion/memRegionDllOps",
        category=_CATEGORY,
        program=Program(_STRUCTS, [mem_region_dll_ops]),
        function="memRegionDllOps",
        predicates=_PREDICATES,
        make_tests=single_structure_cases(make_mem_chunk_list),
        documented=[
            spec_with_pred("memdll", pre_root="region"),
            loop_with_pred("memdll"),
        ],
    )
)
