"""Tree Traversal category: traversals and tree-to-list conversions."""

from __future__ import annotations

from repro.benchsuite.common import single_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    loop_with_pred,
    post_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_tree
from repro.lang import (
    Alloc,
    Assign,
    ExprStmt,
    Function,
    If,
    Program,
    Return,
    Store,
    While,
    standard_structs,
)
from repro.lang.builder import call, field, i, is_null, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("tree", "treeseg", "sll")
_CATEGORY = "Tree Traversal"


def _register(name, functions, main, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"traversal/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, functions),
            function=main,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- traverseInorder / traversePreorder / traversePostorder: count nodes in the given order --------

def _counting_traversal(name: str, order: str) -> Function:
    """Recursive traversal counting the visited nodes (the count stands in
    for the side effect of the original printf-based traversals)."""
    left_call = Assign("a", call(name, field("t", "left")))
    right_call = Assign("b", call(name, field("t", "right")))
    middle = Assign("here", i(1))
    sequences = {
        "inorder": [left_call, middle, right_call],
        "preorder": [middle, left_call, right_call],
        "postorder": [left_call, right_call, middle],
    }
    from repro.lang.builder import add

    return Function(
        name,
        [("t", "TNode*")],
        "int",
        [
            If(is_null("t"), [Return(i(0))]),
            *sequences[order],
            Return(add(v("here"), add(v("a"), v("b")))),
        ],
    )


for _order in ("inorder", "preorder", "postorder"):
    _fn = _counting_traversal(f"traverse_{_order}", _order)
    _register(
        f"traverse{_order.capitalize()}",
        [_fn],
        _fn.name,
        single_structure_cases(make_tree),
        [spec_with_pred("tree", pre_root="t")],
    )


# -- tree2list: flatten a tree into a singly-linked list (recursive) ---------------------------------

tree2list = Function(
    "tree2list",
    [("t", "TNode*")],
    "SllNode*",
    [
        If(is_null("t"), [Return(null())]),
        Assign("left_list", call("tree2list", field("t", "left"))),
        Assign("right_list", call("tree2list", field("t", "right"))),
        Alloc("node", "SllNode", {"next": v("right_list")}),
        Assign("res_list", call("appendList", v("left_list"), v("node"))),
        Return(v("res_list")),
    ],
)

append_list = Function(
    "appendList",
    [("a", "SllNode*"), ("b", "SllNode*")],
    "SllNode*",
    [
        If(is_null("a"), [Return(v("b"))]),
        Store(v("a"), "next", call("appendList", field("a", "next"), v("b"))),
        Return(v("a")),
    ],
)
_register(
    "tree2list",
    [tree2list, append_list],
    "tree2list",
    single_structure_cases(make_tree),
    [spec_with_pred("tree", pre_root="t"), post_only_pred("sll", post_root="res")],
)


# -- tree2listIter: intentionally buggy iterative flattening (marked * in Table 1) ---------------------

tree2list_iter = Function(
    "tree2listIter",
    [("t", "TNode*")],
    "SllNode*",
    [
        # BUG (intentional): the rotation step dereferences t->left without a
        # null check, crashing on every non-trivial input; the empty input
        # crashes on the first dereference of t itself.
        Assign("probe", field(field("t", "left"), "left")),
        Assign("out", null()),
        While(
            not_null("t"),
            [
                Alloc("node", "SllNode", {"next": v("out")}),
                Assign("out", v("node")),
                Assign("t", field("t", "left")),
            ],
        ),
        Return(v("out")),
    ],
)
_register(
    "tree2listIter",
    [tree2list_iter],
    "tree2listIter",
    single_structure_cases(make_tree, sizes=(0, 0, 0)),
    [spec_with_pred("tree", pre_root="t")],
    has_bug=True,
)
