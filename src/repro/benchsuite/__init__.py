"""heaplang re-implementations of the paper's benchmark programs.

The original evaluation uses 153 C programs from the VCDryad suite plus 4
programs from Brotherston et al., organised in 22 categories (Table 1).
This package re-implements the algorithms of those benchmarks in heaplang,
organised in the same categories, together with

* the inductive predicates each category uses,
* test-input generators following the paper's protocol (empty structures plus
  random structures of size 10),
* the documented properties (specifications and loop invariants) used for
  the Table 2 comparison, and
* the intentional bugs the paper calls out (crashing programs, the
  ``sortMerge`` typo, the ``dll_fix`` missing guard, programs that ``free``
  memory and therefore yield spurious invariants).
"""

from repro.benchsuite.registry import (
    BenchmarkProgram,
    DocumentedProperty,
    all_benchmarks,
    benchmarks_by_category,
    categories,
    get_benchmark,
    load_all,
)

__all__ = [
    "BenchmarkProgram",
    "DocumentedProperty",
    "all_benchmarks",
    "benchmarks_by_category",
    "categories",
    "get_benchmark",
    "load_all",
]
