"""Shared helpers for benchmark definitions (test-case factories)."""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.datagen.generators import StructureGenerator
from repro.lang.heap import RuntimeHeap
from repro.lang.tracer import TestCase

#: Default structure sizes used by the paper's input protocol: the empty
#: structure plus random structures of size 10 (we add a couple of small
#: sizes to diversify traces, as running on several inputs does).
DEFAULT_SIZES: tuple[int, ...] = (0, 1, 3, 10)


def single_structure_cases(
    generator: StructureGenerator, sizes: Sequence[int] = DEFAULT_SIZES
) -> Callable[[random.Random], list[TestCase]]:
    """Test cases for functions taking one data-structure argument."""

    def make(rng: random.Random) -> list[TestCase]:
        def case_for(size: int) -> TestCase:
            return lambda heap: [generator(heap, rng, size)]

        return [case_for(size) for size in sizes]

    return make


def structure_and_value_cases(
    generator: StructureGenerator,
    sizes: Sequence[int] = DEFAULT_SIZES,
    values: Sequence[int] = (0, 5, 42),
) -> Callable[[random.Random], list[TestCase]]:
    """Test cases for functions taking a structure plus an integer argument."""

    def make(rng: random.Random) -> list[TestCase]:
        cases: list[TestCase] = []
        for size in sizes:
            value = values[size % len(values)]

            def case(heap: RuntimeHeap, size=size, value=value) -> list[int]:
                return [generator(heap, rng, size), value]

            cases.append(case)
        return cases

    return make


def two_structure_cases(
    generator: StructureGenerator,
    second: StructureGenerator | None = None,
    size_pairs: Sequence[tuple[int, int]] = ((0, 2), (3, 0), (3, 2), (10, 10)),
) -> Callable[[random.Random], list[TestCase]]:
    """Test cases for functions taking two data-structure arguments."""
    second_generator = second or generator

    def make(rng: random.Random) -> list[TestCase]:
        cases: list[TestCase] = []
        for first_size, second_size in size_pairs:

            def case(heap: RuntimeHeap, a=first_size, b=second_size) -> list[int]:
                return [generator(heap, rng, a), second_generator(heap, rng, b)]

            cases.append(case)
        return cases

    return make


def no_input_cases(count: int = 3) -> Callable[[random.Random], list[TestCase]]:
    """Test cases for functions taking no arguments (constructors)."""

    def make(rng: random.Random) -> list[TestCase]:
        return [lambda heap: [] for _ in range(count)]

    return make


def value_only_cases(
    values: Sequence[int] = (0, 3, 10)
) -> Callable[[random.Random], list[TestCase]]:
    """Test cases for functions taking a single integer argument."""

    def make(rng: random.Random) -> list[TestCase]:
        def case_for(value: int) -> TestCase:
            return lambda heap: [value]

        return [case_for(value) for value in values]

    return make
