"""OpenBSD Queue category: SIMPLEQ-style queues with a head/tail header record."""

from __future__ import annotations

from repro.benchsuite.common import no_input_cases, single_structure_cases
from repro.benchsuite.registry import (
    BenchmarkProgram,
    post_only_pred,
    register,
    spec_with_pred,
)
from repro.datagen import make_queue
from repro.lang import Alloc, Assign, Free, Function, If, Program, Return, Store, standard_structs
from repro.lang.builder import eq, field, is_null, not_null, null, v
from repro.sl.stdpreds import predicates_for

_STRUCTS = standard_structs()
_PREDICATES = predicates_for("queue", "qlist", "qlseg")
_CATEGORY = "OpenBSD Queue"


def _register(name, function, make_tests, documented, **kwargs):
    register(
        BenchmarkProgram(
            name=f"queue/{name}",
            category=_CATEGORY,
            program=Program(_STRUCTS, [function]),
            function=function.name,
            predicates=_PREDICATES,
            make_tests=make_tests,
            documented=documented,
            **kwargs,
        )
    )


# -- init(): allocate an empty queue header ---------------------------------------------------

init = Function(
    "init",
    [],
    "Queue*",
    [
        Alloc("q", "Queue"),
        Return(v("q")),
    ],
)
_register("init", init, no_input_cases(), [post_only_pred("queue", post_root="res")])


# -- insertHd(q): push a fresh node at the head -------------------------------------------------

insert_head = Function(
    "insertHd",
    [("q", "Queue*")],
    "Queue*",
    [
        Alloc("node", "QNode", {"next": field("q", "head")}),
        Store(v("q"), "head", v("node")),
        If(is_null(field("q", "tail")), [Store(v("q"), "tail", v("node"))]),
        Return(v("q")),
    ],
)
_register(
    "insertHd",
    insert_head,
    single_structure_cases(make_queue),
    [spec_with_pred("queue", pre_root="q", post_root="res")],
)


# -- insertTl(q): append a fresh node at the tail ---------------------------------------------------

insert_tail = Function(
    "insertTl",
    [("q", "Queue*")],
    "Queue*",
    [
        Alloc("node", "QNode"),
        If(
            is_null(field("q", "tail")),
            [Store(v("q"), "head", v("node")), Store(v("q"), "tail", v("node"))],
            [Store(field("q", "tail"), "next", v("node")), Store(v("q"), "tail", v("node"))],
        ),
        Return(v("q")),
    ],
)
_register(
    "insertTl",
    insert_tail,
    single_structure_cases(make_queue),
    [spec_with_pred("queue", pre_root="q", post_root="res")],
)


# -- insertAfter(q): insert a fresh node after the head element --------------------------------------

insert_after = Function(
    "insertAfter",
    [("q", "Queue*")],
    "Queue*",
    [
        If(is_null(field("q", "head")), [Return(v("q"))]),
        Assign("first", field("q", "head")),
        Alloc("node", "QNode", {"next": field("first", "next")}),
        Store(v("first"), "next", v("node")),
        If(eq(field("q", "tail"), v("first")), [Store(v("q"), "tail", v("node"))]),
        Return(v("q")),
    ],
)
_register(
    "insertAfter",
    insert_after,
    single_structure_cases(make_queue),
    [spec_with_pred("queue", pre_root="q", post_root="res")],
)


# -- rmHd(q): unlink and free the head element -----------------------------------------------------------

remove_head = Function(
    "rmHd",
    [("q", "Queue*")],
    "Queue*",
    [
        Assign("first", field("q", "head")),
        If(is_null("first"), [Return(v("q"))]),
        Store(v("q"), "head", field("first", "next")),
        If(is_null(field("q", "head")), [Store(v("q"), "tail", null())]),
        Free(v("first")),
        Return(v("q")),
    ],
)
_register(
    "rmHd",
    remove_head,
    single_structure_cases(make_queue),
    [spec_with_pred("queue", pre_root="q", post_root="res")],
    uses_free=True,
)


# -- rmAfter(q): unlink and free the element after the head --------------------------------------------------

remove_after = Function(
    "rmAfter",
    [("q", "Queue*")],
    "Queue*",
    [
        Assign("first", field("q", "head")),
        If(is_null("first"), [Return(v("q"))]),
        Assign("victim", field("first", "next")),
        If(is_null("victim"), [Return(v("q"))]),
        Store(v("first"), "next", field("victim", "next")),
        If(eq(field("q", "tail"), v("victim")), [Store(v("q"), "tail", v("first"))]),
        Free(v("victim")),
        Return(v("q")),
    ],
)
_register(
    "rmAfter",
    remove_after,
    single_structure_cases(make_queue),
    [spec_with_pred("queue", pre_root="q", post_root="res")],
    uses_free=True,
)
