"""Parallel batch-inference engine.

The engine is the one entry point through which every harness (the Table 1 /
Table 2 evaluations, the CLI, the performance benchmarks) runs SLING over
benchmark programs.  It accepts a batch of :class:`EngineJob` descriptions --
(benchmark, kind, seed, configuration) tuples -- and executes them either
inline (``jobs=1``) or fanned out over a ``multiprocessing`` worker pool,
returning one structured :class:`EngineReport` per job **in job order**.

Design notes
------------

* Jobs are *named*, not closured: a job carries the registry name of its
  benchmark (e.g. ``"sll/insertFront"``) and the worker resolves it through
  :mod:`repro.benchsuite.registry` on its side of the fork.  Benchmark
  objects hold test-case closures and are deliberately never pickled.
* Workers never raise: failures (including timeouts enforced by the parent)
  are reported as ``ok=False`` reports with the error message preserved, so
  a single crashing benchmark cannot take down a full-suite sweep.
* Determinism: inference is deterministic per (benchmark, seed, config) --
  the candidate search, the model checker and the existential-renaming
  normalization are all order-stable -- so ``jobs=N`` produces exactly the
  same invariants as ``jobs=1``, merely faster.  :func:`benchmark_engine`
  asserts this property on every run (a divergence raises
  :class:`EngineError`).
* Cache accounting: each report carries the checker-memo and
  predicate-unfolding cache counters (:class:`CacheStats`) measured inside
  the worker for exactly that job.
* Self-healing: the worker pool is supervised through a claim/done
  protocol (a crash-proof shared-memory claim slot per worker plus a
  result queue), so a worker death (segfault, OOM kill, an injected
  ``os._exit``) fails only the job that was actually running on the dead
  worker.  That job is retried on a respawned worker with seeded
  exponential backoff (``max_retries``); a job that kills a worker *twice*
  is quarantined as poison (``error="poisoned"``, never a third respawn);
  and after ``max_pool_rebuilds`` healing rounds the engine degrades to
  in-process sequential execution -- warned, counted, and bit-identical,
  because sequential execution is the reference the pool must reproduce
  anyway.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.core.sling import SlingConfig
from repro.faults import (
    backoff_delays,
    enable_lethal_faults,
    injection_count,
    maybe_inject,
    set_current_attempt,
)
from repro.telemetry import monotime

log = logging.getLogger("repro.engine")

#: Job kinds understood by :func:`execute_job`.
JOB_KINDS = ("spec", "table1", "table2")


class EngineError(RuntimeError):
    """A batch run failed in a way the caller did not ask to tolerate."""


class TransientFault(EngineError):
    """A failure worth retrying: worker loss, injected I/O faults, timeouts
    (the latter only when the engine was built with ``retry_timeouts``)."""


class PermanentFault(EngineError):
    """A deterministic failure: retrying would reproduce it exactly."""


class PoisonedJob(EngineError):
    """A job that killed two workers; quarantined, never respawned again."""


def classify_failure(report: "EngineReport", retry_timeouts: bool = False):
    """The taxonomy class of a failed report (``None`` for ``ok`` ones).

    Worker-side failures cross the fork boundary as strings, so the
    classification reads :attr:`EngineReport.error`: worker loss and
    injected faults tagged ``[transient]`` are :class:`TransientFault`,
    timeouts are transient only if the caller opted in (a timeout usually
    reproduces -- the job is simply too slow), quarantined jobs are
    :class:`PoisonedJob`, everything else -- ordinary exceptions inside the
    job -- is a :class:`PermanentFault` that a retry would only repeat.
    """
    if report.ok or report.error is None:
        return None
    error = report.error
    if error.startswith("poisoned"):
        return PoisonedJob
    if error.startswith("worker lost"):
        return TransientFault
    if report.timed_out:
        return TransientFault if retry_timeouts else PermanentFault
    if "InjectedFault" in error and "[transient]" in error:
        return TransientFault
    return PermanentFault


@dataclass(frozen=True)
class EngineJob:
    """One unit of work for the engine.

    ``kind`` selects the payload computed by the worker:

    ``"spec"``
        Run full specification inference; payload is a :class:`SpecPayload`.
    ``"table1"``
        Payload is a :class:`repro.evaluation.table1.ProgramResult`.
    ``"table2"``
        Payload is a :class:`repro.evaluation.table2.BenchmarkComparison`.

    ``timeout`` (seconds) overrides the engine-wide ``job_timeout``.  It is a
    true per-job wall-clock budget, enforced *inside* the executing process
    with an interval timer (the inference search is pure Python, so the
    resulting alarm always interrupts it); a timed-out job yields an
    ``ok=False`` report whose :attr:`EngineReport.timed_out` is true.
    """

    kind: str
    benchmark: str
    seed: int = 0
    config: SlingConfig | None = None
    timeout: float | None = None
    #: Retry attempt (0 = first try).  Set by the engine when it resubmits
    #: a transiently failed job; fault rules can filter on it, which is how
    #: a chaos plan expresses "kill the first attempt, spare the retry".
    attempt: int = 0


@dataclass
class CacheStats:
    """Memoization and candidate-screening counters, for one job.

    The screening counters (``candidates_*``, ``refuted_by_first_model``)
    measure the fail-fast pipeline of Algorithm 2: candidates enumerated,
    candidates rejected by the semantic pre-filter without any checker call,
    candidates actually checked, and ``check_all`` calls settled by the
    first model tried.  They extend -- never replace -- the original cache
    schema, so existing consumers keep working.
    """

    checker_hits: int = 0
    checker_misses: int = 0
    unfold_hits: int = 0
    unfold_misses: int = 0
    # Per-inference (variable, models) memo of the driver: Algorithm 2 runs
    # shared among result branches (see ``Sling.infer_from_models``).
    atom_cache_hits: int = 0
    atom_cache_misses: int = 0
    candidates_generated: int = 0
    candidates_prefiltered: int = 0
    candidates_checked: int = 0
    refuted_by_first_model: int = 0
    pruned_cases: int = 0
    max_trail_depth: int = 0
    # Skeleton-batching counters (``ModelChecker.check_batch``): groups
    # formed, skeleton searches run, env-stream memo reuses, compiled
    # pure-variant evaluations, exact-search fallbacks.
    candidate_groups: int = 0
    skeletons_solved: int = 0
    env_stream_reuses: int = 0
    pure_variant_evals: int = 0
    batch_exact_fallbacks: int = 0
    # Canonical-interning counters (isomorphism dedup in the driver and
    # canonical stream keys in the checker; see ``docs/performance.md``):
    # isomorphism classes formed, member models replayed from a class
    # representative, stream-memo hits that only canonical keying made
    # possible, and models that took the exact per-model path anyway
    # (exactness guard, or a location rolled back after an order-dependent
    # checker selection).
    iso_classes: int = 0
    models_deduped: int = 0
    canonical_stream_hits: int = 0
    iso_exact_fallbacks: int = 0
    #: Exact-search selections that were enumeration-order dependent (see
    #: :class:`repro.sl.screen.ScreeningStats`).
    exact_selection_ambiguities: int = 0
    # Columnar-kernel counters (``repro.sl.kernels``): group-kernel
    # invocations, variants resolved via posting-list intersection over the
    # stream slot indexes, and pin-free variants that kept the full scan.
    # All zero when ``SlingConfig.columnar_kernels`` is off.
    kernel_groups: int = 0
    stream_index_hits: int = 0
    kernel_scan_fallbacks: int = 0
    # Persistent-cache counters (:mod:`repro.cache`): skeleton streams
    # served from / missed by the disk tier, rows evicted by the size cap,
    # on-disk cache size, and failures absorbed (corruption, version skew,
    # undecodable rows).  All zero unless ``SlingConfig.persistent_cache``
    # is set -- the search-guard baselines pin exactly that.
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    cache_file_bytes: int = 0
    disk_load_errors: int = 0
    # Resilience counters (see ``docs/resilience.md``): transient-failure
    # retries consumed, pool workers respawned after a death, jobs
    # quarantined as poison, pool-healing rounds, jobs that ran in the
    # degraded sequential fallback, and faults fired by the injector
    # (:mod:`repro.faults`).  All exactly zero for fault-free runs with
    # ``SlingConfig.fault_plan`` unset -- the search-guard baselines pin
    # that, like every prior knob.
    jobs_retried: int = 0
    workers_respawned: int = 0
    jobs_poisoned: int = 0
    pool_rebuilds: int = 0
    degraded_sequential: int = 0
    faults_injected: int = 0
    # Serving-layer counters (:mod:`repro.serve`, see ``docs/serving.md``):
    # requests admitted by the daemon, the deepest the bounded job queue
    # ever got, requests rejected by admission control, requests whose
    # deadline expired with partial results, requests cancelled because
    # their client vanished, and journaled requests re-run after a daemon
    # restart.  All exactly zero outside serve mode -- the search-guard
    # baselines pin that, like every prior subsystem.
    serve_requests: int = 0
    serve_queue_high_water: int = 0
    serve_rejections: int = 0
    serve_deadline_expiries: int = 0
    serve_client_disconnects: int = 0
    serve_requests_resumed: int = 0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another job's counters into this one."""
        self.checker_hits += other.checker_hits
        self.checker_misses += other.checker_misses
        self.unfold_hits += other.unfold_hits
        self.unfold_misses += other.unfold_misses
        self.atom_cache_hits += other.atom_cache_hits
        self.atom_cache_misses += other.atom_cache_misses
        self.candidates_generated += other.candidates_generated
        self.candidates_prefiltered += other.candidates_prefiltered
        self.candidates_checked += other.candidates_checked
        self.refuted_by_first_model += other.refuted_by_first_model
        self.pruned_cases += other.pruned_cases
        self.candidate_groups += other.candidate_groups
        self.skeletons_solved += other.skeletons_solved
        self.env_stream_reuses += other.env_stream_reuses
        self.pure_variant_evals += other.pure_variant_evals
        self.batch_exact_fallbacks += other.batch_exact_fallbacks
        self.iso_classes += other.iso_classes
        self.models_deduped += other.models_deduped
        self.canonical_stream_hits += other.canonical_stream_hits
        self.iso_exact_fallbacks += other.iso_exact_fallbacks
        self.exact_selection_ambiguities += other.exact_selection_ambiguities
        self.kernel_groups += other.kernel_groups
        self.stream_index_hits += other.stream_index_hits
        self.kernel_scan_fallbacks += other.kernel_scan_fallbacks
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses
        self.disk_evictions += other.disk_evictions
        self.disk_load_errors += other.disk_load_errors
        self.jobs_retried += other.jobs_retried
        self.workers_respawned += other.workers_respawned
        self.jobs_poisoned += other.jobs_poisoned
        self.pool_rebuilds += other.pool_rebuilds
        self.degraded_sequential += other.degraded_sequential
        self.faults_injected += other.faults_injected
        self.serve_requests += other.serve_requests
        self.serve_rejections += other.serve_rejections
        self.serve_deadline_expiries += other.serve_deadline_expiries
        self.serve_client_disconnects += other.serve_client_disconnects
        self.serve_requests_resumed += other.serve_requests_resumed
        # A depth, not a volume: the queue high-water mark of a merged batch
        # is the deepest any contributor observed.
        if other.serve_queue_high_water > self.serve_queue_high_water:
            self.serve_queue_high_water = other.serve_queue_high_water
        # A size, not a volume: jobs sharing one cache file all report the
        # same file, so the batch-wide value is the largest observed.
        if other.cache_file_bytes > self.cache_file_bytes:
            self.cache_file_bytes = other.cache_file_bytes
        # A depth, not a volume: the batch-wide value is the deepest job.
        if other.max_trail_depth > self.max_trail_depth:
            self.max_trail_depth = other.max_trail_depth

    @property
    def checker_hit_rate(self) -> float:
        total = self.checker_hits + self.checker_misses
        return self.checker_hits / total if total else 0.0

    @property
    def unfold_hit_rate(self) -> float:
        total = self.unfold_hits + self.unfold_misses
        return self.unfold_hits / total if total else 0.0

    @property
    def prefilter_rate(self) -> float:
        """Fraction of generated candidates rejected before any check."""
        total = self.candidates_generated
        return self.candidates_prefiltered / total if total else 0.0

    @property
    def stream_reuse_rate(self) -> float:
        """Fraction of skeleton-stream requests served from the memo."""
        total = self.skeletons_solved + self.env_stream_reuses
        return self.env_stream_reuses / total if total else 0.0

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of disk-tier stream lookups served from the cache file."""
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "checker_hits": self.checker_hits,
            "checker_misses": self.checker_misses,
            "checker_hit_rate": round(self.checker_hit_rate, 4),
            "unfold_hits": self.unfold_hits,
            "unfold_misses": self.unfold_misses,
            "unfold_hit_rate": round(self.unfold_hit_rate, 4),
            "atom_cache_hits": self.atom_cache_hits,
            "atom_cache_misses": self.atom_cache_misses,
            "candidates_generated": self.candidates_generated,
            "candidates_prefiltered": self.candidates_prefiltered,
            "candidates_checked": self.candidates_checked,
            "prefilter_rate": round(self.prefilter_rate, 4),
            "refuted_by_first_model": self.refuted_by_first_model,
            "pruned_cases": self.pruned_cases,
            "max_trail_depth": self.max_trail_depth,
            "candidate_groups": self.candidate_groups,
            "skeletons_solved": self.skeletons_solved,
            "env_stream_reuses": self.env_stream_reuses,
            "stream_reuse_rate": round(self.stream_reuse_rate, 4),
            "pure_variant_evals": self.pure_variant_evals,
            "batch_exact_fallbacks": self.batch_exact_fallbacks,
            "iso_classes": self.iso_classes,
            "models_deduped": self.models_deduped,
            "canonical_stream_hits": self.canonical_stream_hits,
            "iso_exact_fallbacks": self.iso_exact_fallbacks,
            "exact_selection_ambiguities": self.exact_selection_ambiguities,
            "kernel_groups": self.kernel_groups,
            "stream_index_hits": self.stream_index_hits,
            "kernel_scan_fallbacks": self.kernel_scan_fallbacks,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_hit_rate": round(self.disk_hit_rate, 4),
            "disk_evictions": self.disk_evictions,
            "cache_file_bytes": self.cache_file_bytes,
            "disk_load_errors": self.disk_load_errors,
            "jobs_retried": self.jobs_retried,
            "workers_respawned": self.workers_respawned,
            "jobs_poisoned": self.jobs_poisoned,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_sequential": self.degraded_sequential,
            "faults_injected": self.faults_injected,
            "serve_requests": self.serve_requests,
            "serve_queue_high_water": self.serve_queue_high_water,
            "serve_rejections": self.serve_rejections,
            "serve_deadline_expiries": self.serve_deadline_expiries,
            "serve_client_disconnects": self.serve_client_disconnects,
            "serve_requests_resumed": self.serve_requests_resumed,
        }


@dataclass
class EngineReport:
    """The structured outcome of one job (success or failure)."""

    job: EngineJob
    ok: bool
    error: str | None
    seconds: float
    cache: CacheStats = field(default_factory=CacheStats)
    payload: object | None = None

    @property
    def timed_out(self) -> bool:
        return not self.ok and self.error is not None and self.error.startswith("timeout")


@dataclass
class SpecPayload:
    """Payload of a ``"spec"`` job: the inferred specification."""

    benchmark: str
    function: str
    specification: object  # repro.core.results.Specification


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _JobTimeout(Exception):
    """Raised inside a job when its wall-clock budget expires."""


def _raise_job_timeout(signum, frame):  # noqa: ARG001 -- signal handler shape
    raise _JobTimeout


def execute_job(job: EngineJob) -> EngineReport:
    """Run one job to completion, converting any failure into a report.

    This is the function submitted to pool workers; it is also what
    ``jobs=1`` runs inline, so sequential and parallel execution share one
    code path -- including timeout enforcement, which uses ``SIGALRM`` and
    therefore measures each job individually (not batch wall-clock).
    Timeouts are skipped off the main thread, where signals cannot be
    delivered.

    With ``job.config.telemetry`` set, the whole execution is wrapped in a
    ``job`` span carrying the job's cache counters as attributes, plus one
    ``counters`` snapshot record.  Inline runs nest the span under the
    caller's open sweep span; pool workers write root spans into their
    segment file, re-parented at merge time (see ``InferenceEngine``).
    """
    telemetry = job.config.telemetry if job.config is not None else None
    if telemetry is None:
        return _execute_job(job)
    tracer = telemetry.tracer()
    with tracer.span("job", name=job.benchmark, job_kind=job.kind, seed=job.seed) as span:
        report = _execute_job(job)
        span.set(
            ok=report.ok,
            seconds=round(report.seconds, 6),
            counters={
                key: value
                for key, value in report.cache.as_dict().items()
                if isinstance(value, int) and value
            },
        )
    tracer.counters(job.benchmark, report.cache.as_dict())
    return report


def _execute_job(job: EngineJob) -> EngineReport:
    start = monotime()
    plan = job.config.fault_plan if job.config is not None else None
    if plan is not None:
        set_current_attempt(job.attempt)
        faults_before = injection_count(plan)
    try:
        report = _execute_with_timer(job, start)
    except _JobTimeout:
        # The alarm can also fire in the narrow window after _dispatch
        # returns (or while a failure report is being built) but before the
        # timer is cleared; catch it here so workers never raise.
        report = EngineReport(
            job=job,
            ok=False,
            error=f"timeout after {job.timeout:.3g}s",
            seconds=monotime() - start,
        )
    if plan is not None:
        # Faults fired while this job executed (injections that killed the
        # worker outright are necessarily lost with it; they surface in the
        # parent's workers_respawned instead).
        report.cache.faults_injected += injection_count(plan) - faults_before
        set_current_attempt(None)
    return report


def _execute_with_timer(job: EngineJob, start: float) -> EngineReport:
    use_timer = (
        job.timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler = None
    try:
        if use_timer:
            previous_handler = signal.signal(signal.SIGALRM, _raise_job_timeout)
            signal.setitimer(signal.ITIMER_REAL, job.timeout)
        if job.config is not None and job.config.fault_plan is not None:
            # Under the timer, so an injected hang is resolved by the job's
            # own timeout exactly like a real stuck job would be.
            maybe_inject(
                job.config.fault_plan,
                "job_exec",
                qualifier=job.benchmark,
                attempt=job.attempt,
            )
        payload, cache = _dispatch(job)
    except _JobTimeout:
        return EngineReport(
            job=job,
            ok=False,
            error=f"timeout after {job.timeout:.3g}s",
            seconds=monotime() - start,
        )
    except Exception as exc:  # noqa: BLE001 -- reported, not swallowed
        return EngineReport(
            job=job,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            seconds=monotime() - start,
        )
    finally:
        if use_timer:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous_handler)
    return EngineReport(
        job=job,
        ok=True,
        error=None,
        seconds=monotime() - start,
        cache=cache,
        payload=payload,
    )


def _dispatch(job: EngineJob) -> tuple[object, CacheStats]:
    """Resolve the benchmark by name and compute the job's payload."""
    # Imports are deliberately local: the registry and evaluation modules
    # import repro.core, and workers only need them at execution time.
    from repro.benchsuite.registry import get_benchmark

    if job.kind not in JOB_KINDS:
        raise EngineError(f"unknown job kind {job.kind!r} (expected one of {JOB_KINDS})")
    benchmark = get_benchmark(job.benchmark)

    if job.kind == "table1":
        from repro.evaluation.table1 import evaluate_program

        result = evaluate_program(benchmark, config=job.config, seed=job.seed)
        return result, result.cache_stats()

    if job.kind == "table2":
        from repro.evaluation.table2 import compare_benchmark

        comparison, cache = compare_benchmark(benchmark, config=job.config, seed=job.seed)
        return comparison, cache

    # job.kind == "spec"
    from repro.core.sling import Sling

    config = job.config or SlingConfig(discard_crashed_runs=True)
    unfold_before = benchmark.predicates.unfold_stats()
    sling = Sling(benchmark.program, benchmark.predicates, config)
    specification = sling.infer_function(benchmark.function, benchmark.test_cases(job.seed))
    cache = collect_cache_stats(sling, unfold_before)
    return (
        SpecPayload(
            benchmark=benchmark.name,
            function=benchmark.function,
            specification=specification,
        ),
        cache,
    )


def collect_cache_stats(sling, unfold_before: dict[str, int] | None = None) -> CacheStats:
    """Snapshot a :class:`~repro.core.sling.Sling`'s cache counters.

    The unfolding caches live on the (shared, long-lived) predicate registry,
    so callers that want per-run numbers pass the registry's counters from
    before the run and get the difference.
    """
    stats = sling.cache_counters()
    if unfold_before:
        stats.unfold_hits -= unfold_before["hits"]
        stats.unfold_misses -= unfold_before["misses"]
    return stats


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class InferenceEngine:
    """Runs batches of :class:`EngineJob` with bounded parallelism.

    Parameters
    ----------
    jobs:
        Worker-pool size.  ``1`` (the default) executes inline in the
        calling process -- no fork, no pickling -- which is also the
        reference behaviour parallel runs must reproduce bit-for-bit.
    job_timeout:
        Default per-job timeout in seconds (see :class:`EngineJob.timeout`).
        ``None`` waits indefinitely.  Enforced per job by an interval timer
        inside the executing process, so it works for inline runs too.
    warm_pool:
        Populate the shared, copy-on-write worker state *before* forking the
        pool: the benchmark registry is imported, every predicate's case
        screens are compiled, and -- crucially for the canonical-interning
        layer -- whatever canonical forms the parent process has already
        interned (e.g. by a preceding sequential sweep) are inherited by
        every worker instead of being re-derived per job.  Only observable
        as fork-time state; results are identical either way.
    max_retries:
        Retry budget per job for *transient* failures (worker loss,
        injected I/O faults, and -- with ``retry_timeouts`` -- timeouts),
        with seeded exponential backoff + jitter between attempts (see
        :func:`repro.faults.backoff_delays`).  Permanent failures
        (ordinary exceptions inside the job) are never retried: they would
        reproduce deterministically.
    retry_timeouts:
        Treat job timeouts as transient (off by default: a timeout usually
        means the job is simply too slow, and retrying doubles the cost of
        finding that out).
    max_pool_rebuilds:
        Healing rounds tolerated before the engine gives up on pools
        entirely and runs the remaining jobs inline, sequentially, in the
        parent process -- warned, counted per job (``degraded_sequential``)
        and bit-identical, since sequential execution is the reference the
        pool must reproduce anyway.
    """

    def __init__(
        self,
        jobs: int = 1,
        job_timeout: float | None = None,
        warm_pool: bool = True,
        max_retries: int = 2,
        retry_timeouts: bool = False,
        max_pool_rebuilds: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        if jobs < 1:
            raise EngineError(f"engine needs at least one worker, got jobs={jobs}")
        if max_retries < 0:
            raise EngineError(f"max_retries must be >= 0, got {max_retries}")
        self.jobs = jobs
        self.job_timeout = job_timeout
        self.warm_pool = warm_pool
        self.max_retries = max_retries
        self.retry_timeouts = retry_timeouts
        self.max_pool_rebuilds = max_pool_rebuilds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    def run(
        self,
        batch: Sequence[EngineJob],
        on_report: Callable[[int, EngineReport], None] | None = None,
        cancel: Callable[[], str | None] | None = None,
        timeout_for: Callable[[EngineJob], float | None] | None = None,
    ) -> list[EngineReport]:
        """Execute a batch and return one report per job, in job order.

        ``on_report`` is the incremental-results hook of the serving layer:
        it is called exactly once per job, with ``(batch index, report)``,
        the moment that job's report becomes final -- in completion order,
        which for pool runs is not batch order.  Exceptions it raises are
        the caller's problem; keep it cheap (hand off to a queue).

        ``cancel`` is polled between inline jobs and on every supervisor
        poll (~50ms).  The first non-``None`` reason it returns cancels the
        batch: jobs still waiting settle immediately as ``ok=False`` with
        ``error="cancelled: <reason>"``, and in-flight pool jobs are killed
        through the claim-slot machinery (the worker that claimed the job
        is terminated and the job is *not* retried -- cancellation is
        deliberate, not a worker fault).  Inline in-flight jobs cannot be
        interrupted this way; give them a ``timeout`` when the caller needs
        a hard bound (the serve daemon does exactly that for deadlines).

        ``timeout_for`` overrides a job's ``timeout`` at the moment the job
        is (re)submitted for execution, not at batch start.  This is how a
        shrinking wall-clock budget (the serve daemon's per-request
        deadline) stays accurate for the later jobs of a batch: each one is
        stamped with only the budget remaining when it actually starts.
        """
        # Bake the engine-wide default timeout into each job so the executing
        # process (inline or pool worker) enforces it locally.
        batch = [
            replace(job, timeout=self.job_timeout)
            if job.timeout is None and self.job_timeout is not None
            else job
            for job in batch
        ]
        if not batch:
            return []
        if self.jobs == 1 or len(batch) == 1:
            reports = []
            for index, job in enumerate(batch):
                reason = cancel() if cancel is not None else None
                if reason is not None:
                    report = EngineReport(
                        job=job, ok=False, error=f"cancelled: {reason}", seconds=0.0
                    )
                else:
                    if timeout_for is not None:
                        job = replace(job, timeout=timeout_for(job))
                    report = self._execute_inline(job)
                if on_report is not None:
                    on_report(index, report)
                reports.append(report)
            return reports
        return self._run_pool(
            batch, on_report=on_report, cancel=cancel, timeout_for=timeout_for
        )

    def _execute_inline(self, job: EngineJob) -> EngineReport:
        """Run one job in this process, with the same retry policy as the pool.

        ``exit`` fault actions are downgraded to raises outside pool
        workers (see :mod:`repro.faults`), so inline execution retries them
        like any other transient fault instead of dying.
        """
        report, used = _execute_with_retries(
            job,
            max_retries=self.max_retries,
            retry_timeouts=self.retry_timeouts,
            backoff_seed=_backoff_seed(job),
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
        )
        if used:
            report.cache.jobs_retried += used
            _mirror_heal_counters(report)
        return report

    def run_named(
        self,
        names: Sequence[str],
        kind: str = "spec",
        seed: int = 0,
        config: SlingConfig | None = None,
    ) -> list[EngineReport]:
        """Convenience wrapper: one ``kind`` job per benchmark name."""
        return self.run(
            [
                EngineJob(kind=kind, benchmark=name, seed=seed, config=config)
                for name in names
            ]
        )

    # ------------------------------------------------------------ internals --

    def _run_pool(
        self,
        batch: list[EngineJob],
        on_report: Callable[[int, EngineReport], None] | None = None,
        cancel: Callable[[], str | None] | None = None,
        timeout_for: Callable[[EngineJob], float | None] | None = None,
    ) -> list[EngineReport]:
        # Load the registry in the parent so forked workers inherit it and
        # do not re-import the benchmark modules once per process.
        from repro.benchsuite.registry import load_all

        load_all()
        if self.warm_pool:
            warm_worker_state()
        # Fork-after-load for the persistent cache: read each job's cache
        # file into the process-global preload table before the pool forks,
        # so every worker inherits the rows copy-on-write (the same trick
        # warm_worker_state relies on for the intern table) and stream
        # lookups need no per-worker sqlite reads.  Preload failures are
        # absorbed inside the store -- workers then simply read the file
        # themselves.
        preloaded: set[str] = set()
        for job in batch:
            cache_path = job.config.persistent_cache if job.config else None
            if cache_path is not None and str(cache_path) not in preloaded:
                from repro.cache import preload_cache_file

                preload_cache_file(cache_path)
                preloaded.add(str(cache_path))
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        supervisor = _PoolSupervisor(
            self, context, batch, on_report=on_report, cancel=cancel, timeout_for=timeout_for
        )
        try:
            reports = supervisor.run()
        finally:
            supervisor.shutdown()
        # Fold the workers' per-pid trace segments back into the main trace
        # file, re-parenting their job spans under the caller's open span.
        merged_telemetries: list[int] = []
        for job in batch:
            telemetry = job.config.telemetry if job.config else None
            if telemetry is not None and id(telemetry) not in merged_telemetries:
                merged_telemetries.append(id(telemetry))
                telemetry.merge_segments()
        return reports


# ---------------------------------------------------------------------------
# Self-healing pool
# ---------------------------------------------------------------------------

#: Parent-side healing counters stamped onto the guilty job's report (and
#: mirrored onto payloads that carry matching fields, e.g. the Table 1
#: ``ProgramResult``).  ``faults_injected`` is worker-side and mirrored too.
_HEAL_FIELDS = (
    "jobs_retried",
    "workers_respawned",
    "jobs_poisoned",
    "pool_rebuilds",
    "degraded_sequential",
)


def _mirror_heal_counters(report: EngineReport) -> None:
    """Copy resilience counters from ``report.cache`` onto its payload.

    Table 1 payloads fill their counter fields from the worker-side
    ``Sling`` snapshot, which cannot know about parent-side healing; this
    post-hoc copy is what makes retries and respawns visible in the table
    JSON and ``cache_totals()``.
    """
    payload = report.payload
    if payload is None:
        return
    for field_name in (*_HEAL_FIELDS, "faults_injected"):
        if hasattr(payload, field_name):
            setattr(payload, field_name, getattr(report.cache, field_name))


def _backoff_seed(job: EngineJob) -> int:
    plan = job.config.fault_plan if job.config is not None else None
    return plan.seed if plan is not None else 0


def _execute_with_retries(
    job: EngineJob,
    max_retries: int,
    retry_timeouts: bool,
    backoff_seed: int,
    backoff_base: float,
    backoff_cap: float,
    already_retried: int = 0,
    on_retry: Callable[[int], None] | None = None,
) -> tuple[EngineReport, int]:
    """Run a job in this process, retrying transient failures with backoff.

    Returns ``(report, retries_used_here)``.  ``already_retried`` carries
    retry budget a pool already consumed on this job before degrading.
    """
    import time

    retries = already_retried
    while True:
        report = execute_job(replace(job, attempt=retries) if retries else job)
        if report.ok:
            break
        if classify_failure(report, retry_timeouts) is not TransientFault:
            break
        if retries >= max_retries:
            break
        delays = backoff_delays(
            backoff_seed, job.benchmark, max_retries, backoff_base, backoff_cap
        )
        time.sleep(delays[retries])
        retries += 1
        if on_retry is not None:
            on_retry(retries)
    return report, retries - already_retried


def _pool_worker_main(task_queue, result_queue, plan, claim) -> None:
    """Entry point of one pool worker: claim, execute, report, repeat.

    ``claim`` is a shared-memory int slot, the worker's half of the
    start/done protocol the supervisor heals from: the worker writes the
    job index into it *before* executing and clears it (back to -1) after
    the report is on the result queue.  The write is a plain synchronous
    store -- unlike a queue message, whose feeder thread an ``os._exit``
    (or a segfault) can outrun -- so a worker that dies mid-job always
    leaves its claim behind and is blamed for exactly that job.
    """
    # Only pool workers may actually die from an ``exit`` fault -- the same
    # plan running inline (or in the degraded sequential fallback) must
    # never kill the parent process.
    enable_lethal_faults(True)
    pid = os.getpid()
    if plan is not None:
        # Fresh matching state regardless of what the forked parent did:
        # per-worker rule counters are what make respawn-and-retry
        # scenarios ("kill the first attempt only") deterministic.
        from repro.faults.plan import reset_injector

        reset_injector(plan)
        maybe_inject(plan, "worker_start", qualifier=str(pid))
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, job = item
        claim.value = index
        report = execute_job(job)
        result_queue.put(("done", index, report, pid))
        # Cleared only after the put returned: dying while the done message
        # is still in the queue's feeder buffer then still reads as a death
        # *on this job*, which retries it -- a lost result never strands it.
        claim.value = -1


@dataclass
class _JobState:
    """Supervisor-side bookkeeping for one submitted job."""

    job: EngineJob
    retries: int = 0
    worker_deaths: int = 0
    heal: dict = field(default_factory=lambda: dict.fromkeys(_HEAL_FIELDS, 0))


class _PoolSupervisor:
    """Owns the worker pool of one batch and heals it (see the engine docs).

    The protocol: jobs go into a shared task queue; each worker claims the
    job it is about to run by writing its index into a shared-memory slot
    (crash-proof: a queue message can die with the sender's feeder thread,
    a memory store cannot) and returns it with ``("done", index, report,
    pid)``.  The supervisor polls the result queue, reaps dead workers
    between messages, and on a death blames exactly the job the dead
    worker's claim slot still names -- retrying it (with backoff, on a
    respawned worker) or quarantining it after its second kill.  Repeated
    breakage degrades to inline sequential execution of whatever is left.
    """

    #: Result-queue poll interval; also the worker-death detection latency.
    POLL_SECONDS = 0.05
    #: Consecutive empty polls with waiting jobs but nothing running before
    #: the supervisor assumes tasks were lost in a dead worker's hands
    #: (died between dequeue and ``start`` ack) and resubmits them.  A
    #: duplicate execution is deterministic and settles only once.
    STALL_POLLS = 200

    def __init__(
        self,
        engine: InferenceEngine,
        context,
        batch: list[EngineJob],
        on_report: Callable[[int, EngineReport], None] | None = None,
        cancel: Callable[[], str | None] | None = None,
        timeout_for: Callable[[EngineJob], float | None] | None = None,
    ):
        self.engine = engine
        self.context = context
        self.batch = batch
        self.on_report = on_report
        self.cancel = cancel
        self.timeout_for = timeout_for
        self.cancelled = False
        self.worker_count = min(engine.jobs, len(batch))
        self.plan = next(
            (
                job.config.fault_plan
                for job in batch
                if job.config is not None and job.config.fault_plan is not None
            ),
            None,
        )
        telemetry = next(
            (
                job.config.telemetry
                for job in batch
                if job.config is not None and job.config.telemetry is not None
            ),
            None,
        )
        self.tracer = telemetry.tracer() if telemetry is not None else None
        self.states = {index: _JobState(job) for index, job in enumerate(batch)}
        self.final: dict[int, EngineReport] = {}
        self.outstanding = set(self.states)
        self.workers: dict[int, object] = {}  # worker pid -> Process
        self.claims: dict[int, object] = {}  # worker pid -> shared claim slot
        self.deferred: list[tuple[float, int]] = []  # (due time, job index)
        self.pool_rebuilds = 0
        self.degraded = False
        self.idle_polls = 0
        self.task_queue = context.Queue()
        self.result_queue = context.Queue()

    # -------------------------------------------------------------- driver --

    def _submit(self, index: int, job: EngineJob) -> None:
        """Enqueue a job for a worker, restamping its timeout at this moment."""
        if self.timeout_for is not None:
            job = replace(job, timeout=self.timeout_for(job))
        self.task_queue.put((index, job))

    def run(self) -> list[EngineReport]:
        for index, job in enumerate(self.batch):
            self._submit(index, job)
        for _ in range(self.worker_count):
            self._spawn_worker()
        self._supervise()
        self._stop_workers()
        if self.outstanding:
            self._run_degraded()
        self._stamp_heal_counters()
        return [self.final[index] for index in range(len(self.batch))]

    def _supervise(self) -> None:
        import queue as queue_module

        while self.outstanding and not self.degraded:
            if self.cancel is not None and not self.cancelled:
                reason = self.cancel()
                if reason is not None:
                    self._cancel_remaining(reason)
                    break
            self._submit_due_retries()
            try:
                message = self.result_queue.get(timeout=self.POLL_SECONDS)
            except queue_module.Empty:
                self._reap_dead_workers()
                self._check_stall()
                continue
            except (EOFError, OSError) as exc:
                log.warning(
                    "engine result queue broke (%s: %s); degrading to "
                    "in-process sequential execution",
                    type(exc).__name__,
                    exc,
                )
                self.degraded = True
                break
            self.idle_polls = 0
            self._handle_message(message)

    def shutdown(self) -> None:
        """Terminate whatever is left; idempotent, safe after errors."""
        for worker in list(self.workers.values()):
            if worker.is_alive():
                worker.terminate()
            worker.join(timeout=1.0)
        self.workers.clear()
        self.claims.clear()
        for q in (self.task_queue, self.result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass

    # ------------------------------------------------------------ messages --

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "done":
            _, index, report, pid = message
            self._settle(index, report)

    def _running_indices(self) -> set[int]:
        """Jobs currently claimed by a live worker (from the claim slots)."""
        return {
            claim.value for claim in self.claims.values() if claim.value >= 0
        }

    def _settle(self, index: int, report: EngineReport) -> None:
        """Accept a completed report, or schedule a retry if it earns one."""
        if index not in self.outstanding:
            return  # duplicate (stall resubmission) -- first result won
        state = self.states[index]
        if (
            classify_failure(report, self.engine.retry_timeouts) is TransientFault
            and state.retries < self.engine.max_retries
        ):
            self._schedule_retry(index, report.error or "transient failure")
            return
        self._finalize(index, report)

    def _finalize(self, index: int, report: EngineReport) -> None:
        """The one place a job's report becomes final (and is streamed out)."""
        self.outstanding.discard(index)
        self.final[index] = report
        if self.on_report is not None:
            self.on_report(index, report)

    # -------------------------------------------------------- cancellation --

    def _cancel_remaining(self, reason: str) -> None:
        """Cancel every unfinished job: kill in-flight workers, settle the rest.

        In-flight jobs are found through the claim slots -- the same
        crash-proof protocol the healer blames deaths with -- and their
        workers terminated outright; a cancelled job is settled as
        ``cancelled: <reason>`` and deliberately never retried (the
        classifier treats cancellation as permanent).
        """
        self.cancelled = True
        self.deferred.clear()
        running = self._running_indices()
        if running:
            for pid, claim in list(self.claims.items()):
                if claim.value >= 0:
                    worker = self.workers.pop(pid, None)
                    self.claims.pop(pid, None)
                    if worker is not None:
                        worker.terminate()
                        worker.join(timeout=1.0)
        for index in sorted(self.outstanding):
            self._finalize(
                index,
                EngineReport(
                    job=self.states[index].job,
                    ok=False,
                    error=f"cancelled: {reason}",
                    seconds=0.0,
                ),
            )

    # ------------------------------------------------------------- retries --

    def _schedule_retry(self, index: int, reason: str) -> None:
        state = self.states[index]
        delays = backoff_delays(
            _backoff_seed(state.job),
            state.job.benchmark,
            self.engine.max_retries,
            self.engine.backoff_base,
            self.engine.backoff_cap,
        )
        delay = delays[state.retries]
        state.retries += 1
        state.heal["jobs_retried"] += 1
        self._emit_span(
            "retry",
            state.job.benchmark,
            attempt=state.retries,
            delay=round(delay, 4),
            reason=reason[:200],
        )
        # Not a sleep: the due time is checked each poll, so the supervisor
        # keeps draining results and reaping deaths while backing off.
        self.deferred.append((monotime() + delay, index))

    def _submit_due_retries(self) -> None:
        if not self.deferred:
            return
        now = monotime()
        due = sorted(index for when, index in self.deferred if when <= now)
        if not due:
            return
        self.deferred = [(when, index) for when, index in self.deferred if when > now]
        for index in due:
            state = self.states[index]
            self._submit(index, replace(state.job, attempt=state.retries))

    # ------------------------------------------------------------- healing --

    def _reap_dead_workers(self) -> None:
        dead = [worker for worker in self.workers.values() if not worker.is_alive()]
        if not dead:
            return
        # A worker can die *after* sending its done message; consume every
        # buffered message before assigning blame.
        self._drain_nonblocking()
        guilty: list[tuple[int, object]] = []
        for worker in dead:
            del self.workers[worker.pid]
            claim = self.claims.pop(worker.pid)
            worker.join(timeout=1.0)
            index = claim.value
            if index >= 0 and index in self.outstanding:
                guilty.append((index, worker))
        self._heal(dead, guilty)

    def _drain_nonblocking(self) -> None:
        import queue as queue_module

        while True:
            try:
                message = self.result_queue.get_nowait()
            except (queue_module.Empty, EOFError, OSError):
                return
            self._handle_message(message)

    def _heal(self, dead: list, guilty: list[tuple[int, object]]) -> None:
        """One healing round: settle the guilty jobs, respawn or degrade."""
        self.pool_rebuilds += 1
        blame = guilty[0][0] if guilty else (min(self.outstanding) if self.outstanding else None)
        if blame is not None:
            self.states[blame].heal["pool_rebuilds"] += 1
        for index, worker in guilty:
            state = self.states[index]
            state.worker_deaths += 1
            if state.worker_deaths >= 2:
                # Quarantine: this job has now killed two workers; a third
                # respawn would only feed it another one.
                state.heal["jobs_poisoned"] += 1
                self._finalize(
                    index,
                    EngineReport(
                        job=state.job,
                        ok=False,
                        error=(
                            f"poisoned: killed {state.worker_deaths} workers "
                            f"(last exitcode {worker.exitcode}); quarantined"
                        ),
                        seconds=0.0,
                    ),
                )
                self._emit_span(
                    "pool_heal",
                    state.job.benchmark,
                    event="quarantine",
                    deaths=state.worker_deaths,
                )
            elif state.retries < self.engine.max_retries:
                self._schedule_retry(
                    index,
                    f"worker lost (pid {worker.pid}, exitcode {worker.exitcode})",
                )
            else:
                self._finalize(
                    index,
                    EngineReport(
                        job=state.job,
                        ok=False,
                        error=(
                            f"worker lost: process exited with code "
                            f"{worker.exitcode} (retry budget exhausted)"
                        ),
                        seconds=0.0,
                    ),
                )
        if not self.outstanding:
            return
        if self.pool_rebuilds > self.engine.max_pool_rebuilds:
            log.warning(
                "engine pool broke %d times (max %d); degrading to in-process "
                "sequential execution for %d remaining job(s)",
                self.pool_rebuilds,
                self.engine.max_pool_rebuilds,
                len(self.outstanding),
            )
            self.degraded = True
            return
        respawned = 0
        target_size = min(self.worker_count, max(1, len(self.outstanding)))
        while len(self.workers) < target_size:
            self._spawn_worker()
            respawned += 1
        for count in range(respawned):
            index = guilty[count % len(guilty)][0] if guilty else blame
            if index is not None:
                self.states[index].heal["workers_respawned"] += 1
        self._emit_span(
            "pool_heal",
            f"rebuild-{self.pool_rebuilds}",
            event="rebuild",
            dead=len(dead),
            respawned=respawned,
        )

    def _check_stall(self) -> None:
        """Resubmit jobs whose task vanished inside a dying worker.

        The unreachable-by-injection window: a worker that dies after
        dequeuing a task but before writing its claim slot takes the task
        with it.  Nothing is running and nothing arrives, so after
        STALL_POLLS empty polls the waiting jobs are resubmitted
        (duplicates settle only once, see :meth:`_settle`).
        """
        self.idle_polls += 1
        running = self._running_indices()
        if self.idle_polls < self.STALL_POLLS or running or self.deferred:
            return
        waiting = self.outstanding - running
        if not waiting:
            return
        log.warning(
            "engine pool stalled (%d job(s) waiting, none running); "
            "resubmitting them",
            len(waiting),
        )
        for index in sorted(waiting):
            state = self.states[index]
            self._submit(index, replace(state.job, attempt=state.retries))
        self.idle_polls = 0

    # ------------------------------------------------------------- workers --

    def _spawn_worker(self) -> None:
        claim = self.context.Value("i", -1, lock=False)
        process = self.context.Process(
            target=_pool_worker_main,
            args=(self.task_queue, self.result_queue, self.plan, claim),
            daemon=True,
        )
        process.start()
        self.workers[process.pid] = process
        self.claims[process.pid] = claim

    def _stop_workers(self) -> None:
        # Late results beat a redundant inline re-run, so drain once more.
        self._drain_nonblocking()
        for _ in range(len(self.workers)):
            try:
                self.task_queue.put(None)
            except (OSError, ValueError):
                break
        for worker in self.workers.values():
            worker.join(timeout=2.0)
        for worker in self.workers.values():
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        self.workers.clear()
        self.claims.clear()
        self._drain_nonblocking()

    # ------------------------------------------------------- degraded mode --

    def _run_degraded(self) -> None:
        """Finish the remaining jobs inline, sequentially, in this process.

        Lethal fault actions are downgraded outside pool workers, so even
        the plan that broke the pool cannot kill the parent here; results
        are bit-identical to a healthy pool run by the engine's determinism
        guarantee.
        """
        for index in sorted(self.outstanding):
            if self.cancel is not None and not self.cancelled:
                reason = self.cancel()
                if reason is not None:
                    self._cancel_remaining(reason)
                    return
            state = self.states[index]
            state.heal["degraded_sequential"] += 1
            if self.timeout_for is not None:
                state.job = replace(state.job, timeout=self.timeout_for(state.job))

            def count_retry(attempt: int, state=state) -> None:
                state.heal["jobs_retried"] += 1
                self._emit_span(
                    "retry",
                    state.job.benchmark,
                    attempt=attempt,
                    degraded=True,
                    reason="transient failure in degraded sequential mode",
                )

            report, _ = _execute_with_retries(
                state.job,
                max_retries=self.engine.max_retries,
                retry_timeouts=self.engine.retry_timeouts,
                backoff_seed=_backoff_seed(state.job),
                backoff_base=self.engine.backoff_base,
                backoff_cap=self.engine.backoff_cap,
                already_retried=state.retries,
                on_retry=count_retry,
            )
            self._finalize(index, report)

    # ------------------------------------------------------------ stamping --

    def _stamp_heal_counters(self) -> None:
        for index, state in self.states.items():
            if not any(state.heal.values()):
                continue
            report = self.final[index]
            for field_name, value in state.heal.items():
                setattr(report.cache, field_name, getattr(report.cache, field_name) + value)
            _mirror_heal_counters(report)

    def _emit_span(self, kind: str, name: str, **attrs) -> None:
        if self.tracer is None:
            return
        self.tracer.emit_span(
            kind,
            name,
            ts=monotime(),
            dur=0.0,
            track="aux",
            parent=self.tracer.current_id,
            **attrs,
        )


def run_category_batch(
    kind: str,
    categories: Sequence[str] | None = None,
    max_programs_per_category: int | None = None,
    keep: Callable[[object], bool] | None = None,
    seed: int = 0,
    config: SlingConfig | None = None,
    jobs: int = 1,
    job_timeout: float | None = None,
) -> list[tuple[str, str, object]]:
    """Select registry benchmarks by category and run one ``kind`` job each.

    The shared orchestration of the Table 1 / Table 2 harnesses: filter the
    registry (``categories`` restricts, ``max_programs_per_category`` caps,
    ``keep`` drops individual benchmarks), dispatch through the engine, and
    return ``(category, benchmark name, payload)`` triples in registry
    order.  A failed or timed-out job raises :class:`EngineError` naming
    the benchmark.
    """
    from repro.benchsuite.registry import benchmarks_by_category

    selected = []
    for category, benchmarks in benchmarks_by_category().items():
        if categories is not None and category not in categories:
            continue
        if max_programs_per_category is not None:
            benchmarks = benchmarks[:max_programs_per_category]
        selected.extend(
            (category, benchmark)
            for benchmark in benchmarks
            if keep is None or keep(benchmark)
        )

    engine = InferenceEngine(jobs=jobs, job_timeout=job_timeout)
    telemetry = config.telemetry if config is not None else None
    sweep_span = (
        telemetry.tracer().span("sweep", name=kind, benchmarks=len(selected), jobs=jobs)
        if telemetry is not None
        else nullcontext()
    )
    with sweep_span:
        reports = engine.run(
            [
                EngineJob(kind=kind, benchmark=benchmark.name, seed=seed, config=config)
                for _, benchmark in selected
            ]
        )
    results = []
    for (category, benchmark), report in zip(selected, reports):
        if not report.ok:
            raise EngineError(f"benchmark {benchmark.name!r} failed: {report.error}")
        results.append((category, benchmark.name, report.payload))
    return results


def warm_worker_state() -> dict[str, int]:
    """Populate the copy-on-write state forked engine workers inherit.

    Imports the benchmark registry and compiles the per-predicate case
    screens (both cached on long-lived registry objects).  The process-wide
    canonical-form intern table (:mod:`repro.sl.model`) needs no explicit
    warm-up: forms interned by any work the parent already did are inherited
    as-is -- this function just makes the fork point explicit and reports
    the inherited state's size for the bench report.
    """
    from repro.benchsuite.registry import all_benchmarks, load_all
    from repro.sl.model import intern_table_size

    load_all()
    screens = 0
    seen_registries: set[int] = set()
    for benchmark in all_benchmarks():
        registry = benchmark.predicates
        if id(registry) in seen_registries:
            continue
        seen_registries.add(id(registry))
        for predicate in registry:
            screens += len(predicate.case_screens())
    return {
        "predicate_case_screens": screens,
        "interned_canonical_forms": intern_table_size(),
    }


# ---------------------------------------------------------------------------
# Engine benchmark harness
# ---------------------------------------------------------------------------


def benchmark_engine(
    categories: Sequence[str] | None = None,
    limit: int | None = None,
    jobs: int = 2,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
    trace_out: str | None = None,
) -> dict:
    """Measure sequential vs. parallel wall time and cache effectiveness.

    Up to three sweeps over the (optionally restricted) Table 1 suite:

    1. sequential with every checker acceleration enabled (this cold sweep
       also pays the one-time registry import and unfold-template warm-up,
       so the speedups below are conservative, not inflated),
    2. sequential with the checker accelerations disabled -- skeleton
       batching off, the per-formula memo off, isomorphism dedup and
       canonical stream keys off -- the pre-engine baseline (the unfolding
       caches on the shared predicate registries stay warm across sweeps and
       cannot be disabled),
    3. parallel with ``jobs`` workers and all accelerations enabled.

    The parallel *timing* is only reported when it can mean anything: with
    ``jobs <= 1`` the sweep is skipped outright (``parallel_skipped``
    explains why), and on a single available CPU the sweep still runs --
    the full-suite parallel-determinism assertion must not silently
    disappear on 1-CPU CI boxes -- but ``wall_seconds.parallel`` and the
    parallel speedups are reported as ``None`` with ``parallel_note``
    explaining that a "speedup" there would only measure fork overhead
    (``--compare`` only reads the sequential wall time, so its semantics
    are unchanged either way).

    Returns a JSON-serializable report with wall times, speedups and cache
    hit rates.  The per-program invariants of every sweep are compared with
    the first; a mismatch raises :class:`EngineError` (the checker
    accelerations' result-identity and the engine's determinism guarantee
    are asserted, not merely reported).

    With ``trace_out`` set, the accelerated sweeps (sequential and parallel)
    run with tracing on and the report gains ``phases`` (the per-kind span
    summary) and ``trace_file`` keys -- additions only, the existing schema
    is untouched.  The nocache baseline sweep stays *untraced*, so the
    fingerprint assertion below doubles as proof that tracing does not
    change results.
    """
    from repro.evaluation.table1 import run_table1

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    telemetry = None
    traced_config: SlingConfig | None = None
    if trace_out is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(trace_out)
        traced_config = default_job_config(telemetry=telemetry)

    def sweep(config: SlingConfig | None, sweep_jobs: int):
        start = monotime()
        result = run_table1(
            categories=categories,
            config=config,
            seed=seed,
            max_programs_per_category=limit,
            jobs=sweep_jobs,
        )
        return monotime() - start, result

    uncached_config = nocache_sweep_config()
    available_cpus = multiprocessing.cpu_count()
    parallel_skipped: str | None = None
    parallel_note: str | None = None
    if jobs <= 1:
        parallel_skipped = "parallel sweep skipped: jobs <= 1"
    elif available_cpus <= 1:
        parallel_note = (
            "single available CPU: parallel wall time not reported (a speedup "
            "here would only measure fork overhead); the sweep still ran to "
            "assert the engine's parallel determinism"
        )
    total_sweeps = 2 if parallel_skipped else 3

    say(f"sweep 1/{total_sweeps}: sequential, checker accelerations enabled")
    sequential_seconds, sequential_result = sweep(traced_config, 1)
    say(f"sweep 2/{total_sweeps}: sequential, batching and checker cache disabled")
    nocache_seconds, nocache_result = sweep(uncached_config, 1)
    parallel_seconds = None
    parallel_result = None
    if parallel_skipped is None:
        say(f"sweep 3/3: parallel with {jobs} workers, accelerations enabled")
        parallel_seconds, parallel_result = sweep(traced_config, jobs)
        if parallel_note is not None:
            parallel_seconds = None
    else:
        say(parallel_skipped)

    sequential_fingerprints = table1_fingerprints(sequential_result)
    if sequential_fingerprints != table1_fingerprints(nocache_result):
        raise EngineError(
            "accelerated sweep diverged from the unaccelerated baseline; "
            "skeleton batching or the checker memo is changing results"
        )
    deterministic = None
    if parallel_result is not None:
        deterministic = sequential_fingerprints == table1_fingerprints(parallel_result)
        if not deterministic:
            raise EngineError(
                f"parallel sweep (jobs={jobs}) diverged from the sequential results; "
                "the engine's determinism guarantee is broken"
            )
    cache = sequential_result.cache_totals()

    report = {
        "benchmarks": sum(row.program_count for row in sequential_result.rows),
        "jobs": jobs,
        "wall_seconds": {
            "sequential_nocache": round(nocache_seconds, 3),
            "sequential": round(sequential_seconds, 3),
            "parallel": round(parallel_seconds, 3) if parallel_seconds else None,
        },
        "speedup": {
            "cache": round(nocache_seconds / sequential_seconds, 3)
            if sequential_seconds
            else None,
            "parallel": round(sequential_seconds / parallel_seconds, 3)
            if parallel_seconds
            else None,
            "combined": round(nocache_seconds / parallel_seconds, 3)
            if parallel_seconds
            else None,
        },
        "cache": cache.as_dict(),
        "deterministic": deterministic,
        "available_cpus": available_cpus,
        "interned_canonical_forms": _intern_table_size(),
        "meta": bench_metadata(),
    }
    if parallel_skipped is not None:
        report["parallel_skipped"] = parallel_skipped
    if parallel_note is not None:
        report["parallel_note"] = parallel_note
    if telemetry is not None:
        telemetry.close()
        from repro.telemetry import phase_summary, read_trace

        report["trace_file"] = trace_out
        report["phases"] = phase_summary(read_trace(trace_out))
    return report


def bench_metadata() -> dict:
    """Environment provenance stamped into every bench report.

    Records what a later reader needs to judge whether two bench numbers
    are comparable: CPU count, the hash seed (``PYTHONHASHSEED`` governs
    set/dict iteration and therefore *could* matter if determinism ever
    regressed), platform, Python version and the git revision.
    """
    import platform
    import subprocess

    try:
        git_rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_rev = None
    return {
        "cpu_count": multiprocessing.cpu_count(),
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
        "platform": platform.platform(),
        "python_version": platform.python_version(),
        "git_rev": git_rev,
    }


def nocache_sweep_config() -> SlingConfig:
    """The all-accelerations-off configuration of the bench baseline sweep.

    Every optimisation whose result-identity the bench fingerprint
    comparison asserts is disabled here -- including the persistent cache,
    which must not leak warm state into the baseline measurement.
    """
    return SlingConfig(
        discard_crashed_runs=True,
        checker_cache_size=0,
        batch_by_skeleton=False,
        dedupe_isomorphic_models=False,
        canonical_stream_keys=False,
        columnar_kernels=False,
        persistent_cache=None,
    )


def benchmark_warm_start(
    categories: Sequence[str] | None = None,
    limit: int | None = None,
    seed: int = 0,
    cache_file: str = "",
    jobs: int = 1,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Measure the persistent cache: Table 1 twice against one cache file.

    Three sweeps over the (optionally restricted) Table 1 suite:

    1. a reference sweep with the persistent cache *off* (the result-identity
       baseline),
    2. a cold sweep writing ``cache_file``,
    3. a warm sweep reading the file the cold sweep just wrote.

    When ``cache_file`` already exists -- a cache restored from a previous
    invocation, as the CI warm-start job does -- the cold sweep is skipped
    (measuring "cold" against a pre-warmed file would be meaningless) and
    the warm sweep reads the restored file directly: genuine *cross-run*
    warmth.  The report then carries ``"resumed": true`` with the cold
    fields ``null``.

    Every sweep that runs must produce bit-identical invariants
    (:class:`EngineError` otherwise -- the disk tier's result-identity is
    asserted, not merely reported).  The report carries the cold/warm wall
    times and the disk counters of both cache sweeps; the warm sweep's
    ``disk_hit_rate`` is the headline number (target: >= 0.9, near-zero
    fresh skeleton solves).
    """
    from repro.evaluation.table1 import run_table1

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    resumed = bool(cache_file) and os.path.exists(cache_file)

    def sweep(config: SlingConfig | None):
        start = monotime()
        result = run_table1(
            categories=categories,
            config=config,
            seed=seed,
            max_programs_per_category=limit,
            jobs=jobs,
        )
        return monotime() - start, result

    cached_config = default_job_config(persistent_cache=cache_file)

    sweeps = 2 if resumed else 3
    say(f"sweep 1/{sweeps}: reference (persistent cache off)")
    reference_seconds, reference_result = sweep(None)
    if resumed:
        say(f"cache file {cache_file} already warm (restored run); skipping cold sweep")
        cold_seconds, cold_result = None, None
    else:
        say(f"sweep 2/{sweeps}: cold, writing {cache_file}")
        cold_seconds, cold_result = sweep(cached_config)
    say(f"sweep {sweeps}/{sweeps}: warm, reading {cache_file}")
    warm_seconds, warm_result = sweep(cached_config)

    reference_fingerprints = table1_fingerprints(reference_result)
    if cold_result is not None and (
        table1_fingerprints(cold_result) != reference_fingerprints
    ):
        raise EngineError(
            "cold persistent-cache sweep diverged from the cache-less "
            "reference; writing the cache file is changing results"
        )
    if table1_fingerprints(warm_result) != reference_fingerprints:
        raise EngineError(
            "warm persistent-cache sweep diverged from the cache-less "
            "reference; results served from disk are not bit-identical"
        )

    cold_cache = cold_result.cache_totals() if cold_result is not None else None
    warm_cache = warm_result.cache_totals()
    return {
        "mode": "warm-start",
        "meta": bench_metadata(),
        "resumed": resumed,
        "benchmarks": sum(row.program_count for row in reference_result.rows),
        "cache_file": os.path.abspath(cache_file),
        "jobs": jobs,
        "wall_seconds": {
            "reference": round(reference_seconds, 3),
            "cold": round(cold_seconds, 3) if cold_seconds is not None else None,
            "warm": round(warm_seconds, 3),
        },
        "speedup": {
            "warm": round(cold_seconds / warm_seconds, 3)
            if cold_seconds is not None and warm_seconds
            else None,
        },
        "disk": {
            "cold": None
            if cold_cache is None
            else {
                "disk_hits": cold_cache.disk_hits,
                "disk_misses": cold_cache.disk_misses,
                "disk_evictions": cold_cache.disk_evictions,
                "cache_file_bytes": cold_cache.cache_file_bytes,
                "disk_load_errors": cold_cache.disk_load_errors,
            },
            "warm": {
                "disk_hits": warm_cache.disk_hits,
                "disk_misses": warm_cache.disk_misses,
                "disk_evictions": warm_cache.disk_evictions,
                "cache_file_bytes": warm_cache.cache_file_bytes,
                "disk_load_errors": warm_cache.disk_load_errors,
                "hit_rate": round(warm_cache.disk_hit_rate, 4),
            },
        },
        "identical": True,
    }


def _intern_table_size() -> int:
    from repro.sl.model import intern_table_size

    return intern_table_size()


def table1_fingerprints(result) -> list[tuple]:
    """Order-stable identity of a Table 1 run's inferred invariants.

    Used to assert that parallel sweeps reproduce the sequential results
    exactly (timings excluded, of course).
    """
    fingerprints = []
    for row in result.rows:
        for program in row.programs:
            invariants: tuple[str, ...] = ()
            if program.specification is not None:
                invariants = tuple(
                    invariant.pretty()
                    for invariant in program.specification.all_invariants()
                )
            fingerprints.append(
                (row.category, program.name, program.classification, invariants)
            )
    return fingerprints


def default_job_config(config: SlingConfig | None = None, **overrides) -> SlingConfig:
    """The engine's default analysis configuration (paper setup + crash discard)."""
    base = config or SlingConfig(discard_crashed_runs=True)
    return replace(base, **overrides) if overrides else base
