"""The SLING driver: Algorithm 1 and the public inference API.

The entry points are

* :func:`infer_invariants` -- invariants at one program location,
* :func:`infer_specification` -- pre/postconditions and loop invariants for a
  whole function, with frame-rule validation,
* the :class:`Sling` class, which holds the program, predicate definitions
  and configuration and exposes the same operations as methods.

The pipeline per location is exactly the paper's: collect stack-heap models
with the tracer, iterate over the pointer variables in a reachability-guided
order, split the (residual) heaps around each variable, infer atomic
predicates for the sub-heaps, combine them with ``*``, and finally add pure
equalities and quantify out-of-scope variables existentially.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.boundary import split_heap
from repro.core.infer_atom import InferAtomConfig, infer_atoms
from repro.core.infer_pure import infer_pure_equalities
from repro.core.results import (
    InferredResult,
    Invariant,
    Specification,
    merge_instantiations,
)
from repro.core.validate import paired_entry_exit_models, validate_specification
from repro.lang.ast import Program
from repro.lang.interp import InterpreterConfig
from repro.lang.tracer import Location, TestCase, TraceCollection, collect_models
from repro.sl.checker import ModelChecker
from repro.sl.exprs import conjoin
from repro.sl.model import StackHeapModel, models_union
from repro.sl.predicates import PredicateRegistry
from repro.sl.pretty import pretty
from repro.sl.spatial import SymHeap, star
from repro.faults import FaultPlan
from repro.telemetry import Telemetry, monotime


@dataclass(frozen=True)
class SlingConfig:
    """Tuning knobs of the inference (defaults follow the paper's setup)."""

    #: Accepted atomic formulae kept per analysed variable (Algorithm 2).
    max_results_per_var: int = 3
    #: Upper bound on the result set ``R`` carried across iterations.
    max_total_results: int = 16
    #: Invariants reported per location after deduplication.
    max_invariants_per_location: int = 8
    #: Predicates with more parameters than this are skipped.
    max_pred_arity: int = 10
    #: Largest boundary subset used to instantiate predicate parameters.
    max_boundary_subset: int = 6
    #: Hard cap on candidate formulae checked per predicate and variable.
    max_candidates_per_pred: int = 4000
    #: Step budget of the symbolic-heap model checker per reduction.
    checker_max_steps: int = 50_000
    #: Capacity of the checker's per-formula reduction memo (0 disables it).
    #: ``None`` is adaptive: off while ``batch_by_skeleton`` is on (the
    #: skeleton streams already share the search, and the per-formula memo
    #: measured as a net loss on the batched pipeline), 65,536 otherwise.
    checker_cache_size: int | None = None
    #: Group candidates by spatial skeleton and decide each group through
    #: one shared search per (skeleton, model) -- ``ModelChecker.check_batch``
    #: (see ``docs/performance.md``; never changes results).
    batch_by_skeleton: bool = True
    #: Semantically pre-filter candidates before any checker call (see
    #: ``docs/performance.md``; never changes results).
    screen_candidates: bool = True
    #: Check models smallest-heap-first and try the learned refuter first in
    #: ``check_all`` (never changes results).
    checker_fail_fast: bool = True
    #: Screen predicate cases inside the search before instantiating them
    #: (never changes results).
    checker_prune_cases: bool = True
    #: Collapse each location's models into isomorphism classes (canonical
    #: labeling, see :mod:`repro.sl.model`) and run Algorithm 2 on one
    #: representative per class, replaying instantiations to the other
    #: members through the witness bijection (never changes results; models
    #: whose canonicalization is not provably exact fall back to the
    #: per-model path).
    dedupe_isomorphic_models: bool = True
    #: Key the checker's skeleton-stream memo and learned-refuter table on
    #: canonical heap forms, sharing streams across address-renamed models
    #: (never changes results; see ``docs/performance.md``).
    canonical_stream_keys: bool = True
    #: Decide candidate groups through the columnar group kernel
    #: (:mod:`repro.sl.kernels`): posting-list indexes over the skeleton
    #: streams' slot columns plus code-generated matchers settle all
    #: variants of a group in one pass, instead of a compiled-closure scan
    #: per variant (never changes results; see ``docs/performance.md``).
    columnar_kernels: bool = True
    #: Variable-analysis order: "reachability" (the paper's heuristic),
    #: "stack" (declaration order) or "reverse" (ablation baselines).
    variable_order: str = "reachability"
    #: Keep zero-coverage (vacuous) atomic formulae.
    keep_vacuous: bool = False
    #: Step budget for the interpreter while collecting traces.
    interpreter_max_steps: int = 200_000
    #: Drop the events of test runs that crashed (the paper's LLDB-batch
    #: workflow obtained no usable traces from crashing programs).
    discard_crashed_runs: bool = False
    #: Path of a disk-backed cache file persisting the checker's
    #: canonical-keyed caches across runs (see :mod:`repro.cache` and
    #: ``docs/performance.md``).  ``None`` (the default) keeps the tier
    #: entirely inert: no file is touched and every code path is identical
    #: to a cache-less run.  Requires ``canonical_stream_keys``.
    persistent_cache: str | Path | None = None
    #: Tracing handle (see :mod:`repro.telemetry`).  ``None`` (the default)
    #: keeps every instrumented call site a single ``is None`` branch away
    #: from the untraced code path: no tracer is built, no file is touched,
    #: and inference results are bit-identical either way.  The handle is
    #: picklable, so a traced configuration crosses the engine's fork
    #: boundary; each worker process then writes its own trace segment.
    telemetry: Telemetry | None = None
    #: Flush the persistent cache tier after every *location's* inference
    #: instead of only at the end of a function sweep.  Rows are written
    #: incrementally (the tier's bookkeeping skips everything already on
    #: disk), so an interrupted run -- a serve request cancelled by its
    #: deadline, a daemon killed mid-request -- still banks whatever it
    #: learned.  Off by default: one-shot runs gain nothing from the extra
    #: sqlite commits.  Inert without ``persistent_cache``.
    incremental_flush: bool = False
    #: Deterministic fault-injection plan (see :mod:`repro.faults`).
    #: ``None`` (the default) keeps every injection site a single
    #: ``is None`` branch away from the untouched code path -- no injector
    #: is built and the resilience counters stay exactly zero (pinned by
    #: the search-guard baselines).  The plan is frozen and picklable, so a
    #: chaos configuration crosses the engine's fork boundary; the mutable
    #: matching state stays process-local.
    fault_plan: FaultPlan | None = None

    def atom_config(self) -> InferAtomConfig:
        """The Algorithm 2 configuration derived from this one."""
        return InferAtomConfig(
            max_pred_arity=self.max_pred_arity,
            max_boundary_subset=self.max_boundary_subset,
            max_candidates_per_pred=self.max_candidates_per_pred,
            max_results=self.max_results_per_var,
            keep_vacuous=self.keep_vacuous,
            screen_candidates=self.screen_candidates,
            batch_by_skeleton=self.batch_by_skeleton,
        )

    def interpreter_config(self) -> InterpreterConfig:
        """The interpreter limits derived from this configuration."""
        return InterpreterConfig(max_steps=self.interpreter_max_steps)


class Sling:
    """Dynamic inference of separation-logic invariants for heaplang programs."""

    def __init__(
        self,
        program: Program,
        predicates: PredicateRegistry,
        config: SlingConfig | None = None,
    ):
        self.program = program
        self.predicates = predicates
        self.config = config or SlingConfig()
        self.telemetry = self.config.telemetry
        #: Process-local tracer (``None`` when tracing is off); handed down
        #: to the checker and the disk tier so their spans nest under ours.
        self.tracer = self.telemetry.tracer() if self.telemetry is not None else None
        self.checker = ModelChecker(
            predicates,
            max_steps=self.config.checker_max_steps,
            cache_size=self.config.checker_cache_size,
            fail_fast=self.config.checker_fail_fast,
            prune_cases=self.config.checker_prune_cases,
            batch_by_skeleton=self.config.batch_by_skeleton,
            canonical_stream_keys=self.config.canonical_stream_keys,
            structs=program.structs,
            columnar_kernels=self.config.columnar_kernels,
        )
        self.checker.tracer = self.tracer
        #: Fault-injection plan handed to the checker (stream
        #: materialization site) and the disk tier (sqlite sites); ``None``
        #: keeps every site on the untouched code path.
        self.checker.fault_plan = self.config.fault_plan
        #: Disk tier beneath the checker's canonical-keyed caches; ``None``
        #: unless ``config.persistent_cache`` is set (the default keeps
        #: every code path identical to a cache-less run).
        self.persistent_cache = None
        if self.config.persistent_cache is not None:
            from repro.cache import PersistentCache

            self.persistent_cache = PersistentCache(
                self.config.persistent_cache,
                predicates,
                fault_plan=self.config.fault_plan,
            )
            self.persistent_cache.tracer = self.tracer
            # ``attach`` refuses non-canonical checkers; with the Sling
            # entry point that can only happen when the user explicitly
            # disabled canonical_stream_keys, so the error is theirs to see.
            self.persistent_cache.attach(self.checker)
        # Hit/miss counters of the per-inference (variable, models) memo that
        # shares Algorithm 2 runs among result branches.
        self.atom_cache_hits = 0
        self.atom_cache_misses = 0
        # Isomorphism-dedup counters (see ``infer_from_models``): classes
        # formed, member models replayed from a representative, and models
        # that took the exact per-model path anyway -- because their
        # canonicalization is not provably exact, or because their location
        # was rolled back after an order-dependent checker selection.  All
        # three count only what actually stuck: an abandoned dedup attempt
        # is subtracted again.
        self.iso_classes = 0
        self.models_deduped = 0
        self.iso_exact_fallbacks = 0

    def cache_counters(self):
        """Counters of the memo layers, as an engine :class:`CacheStats`.

        The one source of truth for this driver's counter snapshot --
        :meth:`cache_stats` is its dict rendering, and the engine's
        per-job accounting consumes the struct directly.
        """
        # Imported here: the engine imports SlingConfig from this module at
        # module load, so the reverse import must stay out of load order.
        from repro.core.engine import CacheStats

        checker = self.checker.cache_info()
        unfold = self.predicates.unfold_stats()
        screen = self.checker.screen_stats
        if self.persistent_cache is not None:
            disk = self.persistent_cache.counters()
        else:
            disk = {
                "disk_hits": 0,
                "disk_misses": 0,
                "disk_evictions": 0,
                "cache_file_bytes": 0,
                "disk_load_errors": 0,
            }
        return CacheStats(
            checker_hits=checker["hits"],
            checker_misses=checker["misses"],
            unfold_hits=unfold["hits"],
            unfold_misses=unfold["misses"],
            atom_cache_hits=self.atom_cache_hits,
            atom_cache_misses=self.atom_cache_misses,
            iso_classes=self.iso_classes,
            models_deduped=self.models_deduped,
            iso_exact_fallbacks=self.iso_exact_fallbacks,
            **screen.as_dict(),
            **disk,
        )

    def cache_stats(self) -> dict:
        """Dict rendering of :meth:`cache_counters` (JSON reports, tests).

        When the persistent cache is active the dict additionally carries a
        ``counter_semantics`` note: streams served from disk count neither
        ``skeletons_solved`` nor ``env_stream_reuses``, so those counters
        are **not comparable** with a cache-less run's (see
        ``docs/performance.md``).
        """
        stats = self.cache_counters().as_dict()
        if self.persistent_cache is not None:
            stats["counter_semantics"] = (
                "persistent cache active: disk-served streams count neither "
                "skeletons_solved nor env_stream_reuses; do not compare these "
                "counters with a cache-less run"
            )
        return stats

    def flush_persistent(self, final: bool = True) -> None:
        """Write everything the checker learned to the persistent cache tier.

        ``final=False`` marks an intermediate (per-location) flush: rows are
        written but end-of-run accounting (eviction, file-size refresh) is
        deferred to the closing ``final=True`` call.
        """
        if self.persistent_cache is not None:
            self.persistent_cache.flush(self.checker, final=final)

    def _flush_incremental(self) -> None:
        """Per-location flush, active only under ``config.incremental_flush``."""
        if self.config.incremental_flush:
            self.flush_persistent(final=False)

    # ------------------------------------------------------------------ tracing --

    def collect(
        self,
        function_name: str,
        test_cases: Sequence[TestCase],
        locations: Iterable[str] | None = None,
    ) -> TraceCollection:
        """Run the test suite under the tracer (``CollectModels``)."""
        breakpoints = None
        if locations is not None:
            breakpoints = [Location(function_name, name) for name in locations]
        traces = collect_models(
            self.program,
            function_name,
            test_cases,
            breakpoints=breakpoints,
            config=self.config.interpreter_config(),
        )
        if self.config.discard_crashed_runs:
            traces = traces.without_crashed_runs()
        return traces

    # ---------------------------------------------------------------- inference --

    def infer_from_models(
        self,
        models: Sequence[StackHeapModel],
        location: str = "<location>",
        free_vars: Sequence[str] | None = None,
        _allow_dedup: bool = True,
    ) -> list[Invariant]:
        """Algorithm 1 at one location (see :meth:`_infer_from_models`)."""
        if self.tracer is None:
            return self._infer_from_models(models, location, free_vars, _allow_dedup)
        with self.tracer.span(
            "location", name=location, models=len(models), dedup=_allow_dedup
        ) as span:
            invariants = self._infer_from_models(models, location, free_vars, _allow_dedup)
            span.set(invariants=len(invariants))
        return invariants

    def _infer_from_models(
        self,
        models: Sequence[StackHeapModel],
        location: str = "<location>",
        free_vars: Sequence[str] | None = None,
        _allow_dedup: bool = True,
    ) -> list[Invariant]:
        """Algorithm 1 over already-collected stack-heap models.

        With ``dedupe_isomorphic_models`` the model list is first collapsed
        into isomorphism classes (equal exact canonical forms, see
        :mod:`repro.sl.model`): the whole iteration then runs on one
        representative per class, weighted by class size wherever the
        original algorithm summed over models, and the per-representative
        instantiations are replayed onto the other class members through the
        witness bijection before pure inference.  Satisfaction is invariant
        under the witnessed address bijections, so the inferred invariants
        are bit-identical to the undeduplicated run -- with one caveat: a
        checker selection that was *enumeration-order dependent* (tied best
        reductions, truncated enumerations) is not replayable, because the
        order itself is not renaming-invariant.  The checker counts such
        selections; if any occurred while this location was deduplicated,
        the whole location falls back to the exact per-model path
        (``iso_exact_fallbacks``).
        """
        if not models:
            return []
        original_models = list(models)
        if _allow_dedup:
            work_models, weights, expansion = self._dedupe_models(original_models)
        else:
            work_models, weights, expansion = original_models, [1] * len(original_models), None
        ambiguities_before = (
            self.checker.screen_stats.exact_selection_ambiguities
            if expansion is not None
            else 0
        )
        variables = self._common_pointer_vars(work_models)
        order = self._order_variables(work_models, variables)

        results = [
            InferredResult(
                models=list(work_models),
                instantiations=[dict() for _ in work_models],
            )
        ]

        def weighted_residual(result: InferredResult) -> int:
            # Class members have equal heap sizes at every iteration stage,
            # so weighting the representatives reproduces the sum the
            # undeduplicated run would have ranked by.
            return sum(
                weight * len(model.heap)
                for weight, model in zip(weights, result.models)
            )

        # Result branches frequently reach a variable with identical residual
        # models (different atoms earlier in the chain, same coverage), and
        # Algorithm 2 is deterministic in (variable, models): share one
        # split + candidate search among them.  AtomResults are immutable,
        # so reuse across branches is safe.
        atom_config = self.config.atom_config()
        split_cache: dict[tuple, tuple] = {}
        for variable in order:
            next_results: list[InferredResult] = []
            for result in results:
                cache_key = (variable, tuple(result.models))
                cached = split_cache.get(cache_key)
                if cached is None:
                    split = split_heap(result.models, variable, self.program.structs)
                    atom_results = infer_atoms(
                        variable,
                        list(split.sub_models),
                        split.boundary,
                        self.predicates,
                        self.checker,
                        self.program.structs,
                        atom_config,
                        weights=weights,
                    )
                    split_cache[cache_key] = (split, atom_results)
                    self.atom_cache_misses += 1
                else:
                    split, atom_results = cached
                    self.atom_cache_hits += 1
                for atom_result in atom_results:
                    atoms = list(result.atoms)
                    exists = list(result.exists)
                    if atom_result.atom is not None:
                        atoms.append(atom_result.atom)
                        exists.extend(atom_result.exists)
                    residual = models_union(
                        list(split.rest_models), list(atom_result.residual_models)
                    )
                    next_results.append(
                        InferredResult(
                            atoms=atoms,
                            exists=exists,
                            models=residual,
                            instantiations=merge_instantiations(
                                result.instantiations, atom_result.instantiations
                            ),
                        )
                    )
            if next_results:
                next_results.sort(
                    key=lambda r: (weighted_residual(r), -r.spatial_atom_count())
                )
                results = next_results[: self.config.max_total_results]

        if expansion is not None:
            ambiguities = self.checker.screen_stats.exact_selection_ambiguities
            if ambiguities != ambiguities_before:
                # Some selection along the way was order-dependent: the
                # representative's choice among tied reductions need not be
                # the one the members' own searches would have made.  Redo
                # the location exactly (rare: requires an ambiguous tie
                # inside a location that actually collapsed), and roll the
                # dedup bookkeeping back so the counters only ever report
                # dedup that actually stuck.
                deduped = len(original_models) - len(work_models)
                self.iso_classes -= len(work_models)
                self.models_deduped -= deduped
                self.iso_exact_fallbacks += deduped
                return self.infer_from_models(
                    original_models, location, free_vars, _allow_dedup=False
                )
            results = [self._expand_result(result, expansion) for result in results]
        return self._finalize(results, original_models, location, free_vars)

    def _dedupe_models(
        self, models: list[StackHeapModel]
    ) -> tuple[list[StackHeapModel], list[int], list[tuple[int, dict | None]] | None]:
        """Collapse a model list into one representative per isomorphism class.

        Returns ``(representatives, weights, expansion)`` where ``weights``
        holds each representative's class size and ``expansion`` maps every
        original model index to ``(representative position, translation)``
        -- the translation being a representative-address to member-address
        map (``None`` for the representatives themselves).  When nothing
        collapses (or the feature is off) the original list is returned with
        unit weights and ``expansion=None``, so the caller takes the exact
        original code path.
        """
        if not self.config.dedupe_isomorphic_models or len(models) <= 1:
            return models, [1] * len(models), None
        structs = self.program.structs
        representatives: list[StackHeapModel] = []
        rep_canons: list = []
        weights: list[int] = []
        expansion: list[tuple[int, dict | None]] = []
        by_form: dict[object, int] = {}
        opaque = 0
        for index, model in enumerate(models):
            canon = model.canonical(structs)
            if not canon.exact:
                # Canonicalization could not prove the renaming harmless
                # (integer data aliasing an address, unknown struct types):
                # the model keeps its own per-model path.
                opaque += 1
                key: object = ("opaque", index)
            else:
                key = canon.form
            position = by_form.get(key)
            if position is None:
                position = len(representatives)
                by_form[key] = position
                representatives.append(model)
                rep_canons.append(canon)
                weights.append(1)
                expansion.append((position, None))
            else:
                weights[position] += 1
                rep_canon = rep_canons[position]
                member_from = canon.from_addr
                translation = {
                    addr: member_from[cid] for addr, cid in rep_canon.to_id.items()
                }
                expansion.append((position, translation))
        self.iso_classes += len(representatives)
        self.iso_exact_fallbacks += opaque
        deduped = len(models) - len(representatives)
        if deduped == 0:
            return models, [1] * len(models), None
        self.models_deduped += deduped
        return representatives, weights, expansion

    @staticmethod
    def _expand_result(
        result: InferredResult, expansion: list[tuple[int, dict | None]]
    ) -> InferredResult:
        """Replay a per-representative result onto every original model.

        Only the instantiations need translating -- they are what pure
        inference reads per model; an instantiation value that is an address
        of the representative's heap maps through the witness bijection,
        anything else (integer data, nil) transfers unchanged.
        """
        instantiations = []
        for position, translation in expansion:
            instantiation = result.instantiations[position]
            if translation is None:
                instantiations.append(dict(instantiation))
            else:
                instantiations.append(
                    {
                        name: translation.get(value, value)
                        for name, value in instantiation.items()
                    }
                )
        return InferredResult(
            atoms=result.atoms,
            exists=result.exists,
            pure=result.pure,
            models=result.models,
            instantiations=instantiations,
        )

    def infer_at(
        self,
        function_name: str,
        location_name: str,
        test_cases: Sequence[TestCase],
    ) -> list[Invariant]:
        """Infer invariants at one location of a function."""
        traces = self.collect(function_name, test_cases, locations=[location_name])
        models = traces.models_at(Location(function_name, location_name))
        free_vars = self._free_vars_for(function_name, location_name)
        invariants = self.infer_from_models(
            models, location=location_name, free_vars=free_vars
        )
        self.flush_persistent()
        return invariants

    def infer_function(
        self, function_name: str, test_cases: Sequence[TestCase]
    ) -> Specification:
        """Infer a full specification (pre, posts, loop invariants) for a function.

        The trace collection always runs here (rather than accepting a
        pre-collected one): test-case closures may share a seeded RNG, so
        which draw the tracer observes is part of the deterministic
        contract -- see the note in ``evaluation.table1.evaluate_program``.
        """
        start = monotime()
        function_span = (
            self.tracer.span("function", name=function_name, tests=len(test_cases))
            if self.tracer is not None
            else nullcontext()
        )
        with function_span:
            specification = self._infer_function(function_name, test_cases)
        specification.inference_seconds = monotime() - start
        return specification

    def _infer_function(
        self, function_name: str, test_cases: Sequence[TestCase]
    ) -> Specification:
        function = self.program.get_function(function_name)
        traces = self.collect(function_name, test_cases)
        specification = Specification(function=function_name)

        reached = {location.name for location in traces.locations()}
        for location_name in function.locations():
            if location_name not in reached:
                specification.unreached_locations.append(location_name)

        entry_models = traces.models_at(Location(function_name, "entry"))
        specification.preconditions = self.infer_from_models(
            entry_models,
            location="entry",
            free_vars=self._free_vars_for(function_name, "entry"),
        )
        self._mark_freed(specification.preconditions, entry_models)
        self._flush_incremental()

        for return_location in function.return_locations():
            models = traces.models_at(Location(function_name, return_location))
            invariants = self.infer_from_models(
                models,
                location=return_location,
                free_vars=self._free_vars_for(function_name, return_location),
            )
            self._mark_freed(invariants, models)
            specification.postconditions[return_location] = invariants
            self._flush_incremental()

        for loop_location in function.loop_locations():
            models = traces.models_at(Location(function_name, loop_location))
            invariants = self.infer_from_models(models, location=loop_location)
            self._mark_freed(invariants, models)
            specification.loop_invariants[loop_location] = invariants
            self._flush_incremental()

        specification.validated = self._validate(specification, traces, function_name)
        self.flush_persistent()
        return specification

    # ------------------------------------------------------------------ internals --

    def _finalize(
        self,
        results: Sequence[InferredResult],
        models: Sequence[StackHeapModel],
        location: str,
        free_vars: Sequence[str] | None,
    ) -> list[Invariant]:
        """Add pure equalities, quantify out-of-scope variables, deduplicate."""
        stack_names = [name for name, _ in models[0].stack]
        free = set(free_vars) if free_vars is not None else set(stack_names)
        invariants: list[Invariant] = []
        seen: set[str] = set()
        from_freed = any(model.has_freed_cells() for model in models)

        for result in results:
            pure = infer_pure_equalities(models, result.instantiations)
            spatial = star(*result.atoms)
            pure_formula = conjoin(pure)
            used = spatial.free_vars() | pure_formula.free_vars()
            exists = list(dict.fromkeys(result.exists))
            for name in stack_names:
                if name in used and name not in free and name not in exists:
                    exists.append(name)
            formula = _normalize_existentials(
                SymHeap(exists=exists, spatial=spatial, pure=pure_formula), free
            )
            rendered = pretty(formula)
            if rendered in seen:
                continue
            seen.add(rendered)
            invariants.append(
                Invariant(location=location, formula=formula, from_freed_traces=from_freed)
            )
            if len(invariants) >= self.config.max_invariants_per_location:
                break
        return invariants

    def _common_pointer_vars(self, models: Sequence[StackHeapModel]) -> list[str]:
        """Pointer variables (plus ``res`` when present) common to all models."""
        common: list[str] | None = None
        for model in models:
            names = model.pointer_vars()
            if common is None:
                common = names
            else:
                common = [name for name in common if name in names]
        return common or []

    def _order_variables(
        self, models: Sequence[StackHeapModel], variables: Sequence[str]
    ) -> list[str]:
        """The paper's heuristic: follow reachability from already-analysed variables."""
        strategy = self.config.variable_order
        if strategy == "stack":
            return list(variables)
        if strategy == "reverse":
            return list(reversed(variables))

        remaining = list(variables)
        order: list[str] = []
        reach_cache = [
            {
                name: model.heap.reachable_from([model.value_of(name)])
                for name in remaining
                if model.has_var(name)
            }
            for model in models
        ]
        while remaining:
            chosen = None
            if order:
                for candidate in remaining:
                    if self._directly_reachable(candidate, order, models, reach_cache):
                        chosen = candidate
                        break
            if chosen is None:
                chosen = remaining[0]
            order.append(chosen)
            remaining.remove(chosen)
        return order

    @staticmethod
    def _directly_reachable(
        candidate: str,
        processed: Sequence[str],
        models: Sequence[StackHeapModel],
        reach_cache: Sequence[dict[str, frozenset[int]]],
    ) -> bool:
        for model, reach in zip(models, reach_cache):
            if not model.has_var(candidate):
                continue
            value = model.value_of(candidate)
            for previous in processed:
                if value != 0 and value in reach.get(previous, frozenset()):
                    return True
                if model.has_var(previous) and model.value_of(previous) == value:
                    return True
        return False

    def _free_vars_for(self, function_name: str, location_name: str) -> list[str] | None:
        """Free variables of pre/postconditions: parameters and ``res`` only."""
        function = self.program.get_function(function_name)
        params = [name for name, _ in function.params]
        if location_name == "entry":
            return params
        if location_name.startswith("ret#"):
            return params + ["res"]
        return None

    @staticmethod
    def _mark_freed(invariants: list[Invariant], models: Sequence[StackHeapModel]) -> None:
        """Propagate the freed-cell flag onto invariants (kept for clarity)."""
        # ``infer_from_models`` already sets the flag; this hook exists so the
        # specification-level driver documents where the paper's "spurious
        # because of free()" classification happens.
        del invariants, models

    def _validate(
        self, specification: Specification, traces: TraceCollection, function_name: str
    ) -> bool:
        """Frame-rule validation of the pre/post combination (Section 4.4)."""
        if not specification.preconditions:
            return True
        precondition = specification.preconditions[0]
        all_valid = True
        for return_location, invariants in specification.postconditions.items():
            if not invariants:
                continue
            pairs = paired_entry_exit_models(traces, function_name, return_location)
            if not pairs:
                continue
            valid = validate_specification(precondition, invariants[0], pairs, self.checker)
            if not valid:
                all_valid = False
                specification.postconditions[return_location] = [
                    replace(invariant, spurious=True) for invariant in invariants
                ]
        return all_valid


def _normalize_existentials(formula: SymHeap, free: set[str]) -> SymHeap:
    """Rename machine-generated existentials to ``u1, u2, ...`` for readability.

    Variables that correspond to out-of-scope program variables (e.g. a local
    ``tmp`` quantified in a postcondition) keep their names; only the fresh
    ``u<N>``/``_v<N>`` names produced during the search are renumbered, in
    order of appearance, avoiding clashes with free variables.
    """
    from repro.sl.exprs import Var

    generated = [
        name for name in formula.exists if name.startswith("u") and name[1:].isdigit()
    ] + [name for name in formula.exists if name.startswith("_v")]
    if not generated:
        return formula
    renaming: dict[str, Var] = {}
    counter = 1
    # The generated names are all substituted away, so they must not block
    # their own replacements: keeping them in ``taken`` would make the
    # renumbering depend on the raw counter values (alpha-variants of the
    # same invariant would render differently, breaking the engine's
    # determinism fingerprint and the pretty-based deduplication).
    taken = (set(free) | set(formula.exists)) - set(generated)
    for name in generated:
        while f"u{counter}" in taken:
            counter += 1
        new_name = f"u{counter}"
        counter += 1
        renaming[name] = Var(new_name)
        taken.add(new_name)
    new_exists = tuple(renaming[name].name if name in renaming else name for name in formula.exists)
    renamed = SymHeap(
        (),
        formula.spatial.substitute(renaming),
        formula.pure.substitute(renaming),
    )
    return SymHeap(new_exists, renamed.spatial, renamed.pure)


# ---------------------------------------------------------------------------
# Convenience functions
# ---------------------------------------------------------------------------


def infer_invariants(
    program: Program,
    function_name: str,
    location_name: str,
    predicates: PredicateRegistry,
    test_cases: Sequence[TestCase],
    config: SlingConfig | None = None,
) -> list[Invariant]:
    """Infer invariants at one location (see :class:`Sling.infer_at`)."""
    return Sling(program, predicates, config).infer_at(function_name, location_name, test_cases)


def infer_specification(
    program: Program,
    function_name: str,
    predicates: PredicateRegistry,
    test_cases: Sequence[TestCase],
    config: SlingConfig | None = None,
) -> Specification:
    """Infer a function specification (see :class:`Sling.infer_function`)."""
    return Sling(program, predicates, config).infer_function(function_name, test_cases)
