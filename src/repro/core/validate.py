"""Frame-rule validation of inferred specifications (Section 4.4).

A precondition ``P`` inferred at the entry and a postcondition ``Q`` inferred
at an exit of a function describe sub-heaps of the memory observed at those
two points.  By the frame rule, the parts *not* described (the residual
heaps) must be the same memory region on both sides -- otherwise the
combination ``{P} C {Q}`` cannot be framed up to the full observed states and
the pair is reported as spurious.

``validate_specification`` pairs the entry model and the exit model of each
test-case run (the outermost activation), computes the residual heaps of the
candidate pre/postconditions with the model checker and compares their
domains.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.results import Invariant
from repro.lang.tracer import Location, TraceCollection, TraceEvent
from repro.sl.checker import ModelChecker
from repro.sl.model import StackHeapModel


def validate_specification(
    precondition: Invariant,
    postcondition: Invariant,
    paired_models: Sequence[tuple[StackHeapModel, StackHeapModel]],
    checker: ModelChecker,
) -> bool:
    """Check pre/post residual-heap agreement over paired entry/exit models."""
    for entry_model, exit_model in paired_models:
        entry_check = checker.check(entry_model, precondition.formula)
        exit_check = checker.check(exit_model, postcondition.formula)
        if entry_check is None or exit_check is None:
            # The invariant does not even hold on the paired model; the
            # specification cannot be validated.
            return False
        if entry_check.residual.domain() != exit_check.residual.domain():
            return False
    return True


def paired_entry_exit_models(
    traces: TraceCollection,
    function: str,
    exit_location: str,
) -> list[tuple[StackHeapModel, StackHeapModel]]:
    """Pair the outermost entry model with the final exit model of each run.

    For recursive functions a run produces several entry and exit events; the
    outermost activation is the first entry and the last exit, which is the
    pair related by the function's specification as observed from the caller.
    """
    entry_loc = Location(function, "entry")
    exit_loc = Location(function, exit_location)
    pairs: list[tuple[StackHeapModel, StackHeapModel]] = []
    for run in traces.runs:
        entry_model = _first_at(run, entry_loc)
        exit_model = _last_at(run, exit_loc)
        if entry_model is not None and exit_model is not None:
            pairs.append((entry_model, exit_model))
    return pairs


def _first_at(run: Sequence[TraceEvent], location: Location) -> StackHeapModel | None:
    for event in run:
        if event.location == location:
            return event.model
    return None


def _last_at(run: Sequence[TraceEvent], location: Location) -> StackHeapModel | None:
    found = None
    for event in run:
        if event.location == location:
            found = event.model
    return found
