"""The SLING inference algorithm (the paper's primary contribution)."""

from repro.core.results import AtomResult, InferredResult, Invariant, Specification
from repro.core.boundary import split_heap, SplitResult
from repro.core.infer_atom import infer_atoms
from repro.core.infer_pure import infer_pure_equalities
from repro.core.validate import validate_specification
from repro.core.sling import Sling, SlingConfig, infer_invariants, infer_specification

__all__ = [
    "AtomResult",
    "InferredResult",
    "Invariant",
    "Specification",
    "split_heap",
    "SplitResult",
    "infer_atoms",
    "infer_pure_equalities",
    "validate_specification",
    "Sling",
    "SlingConfig",
    "infer_invariants",
    "infer_specification",
]
