"""The SLING inference algorithm (the paper's primary contribution).

Besides the per-location pipeline (``boundary`` -> ``infer_atom`` ->
``infer_pure`` -> ``validate`` orchestrated by ``sling``), this package
hosts the batch-inference engine (:mod:`repro.core.engine`): the single
entry point through which the evaluation harnesses, the benchmarks and the
``repro`` CLI run batches of (benchmark, seed, config) jobs -- inline or
across a ``multiprocessing`` pool -- with structured per-job reports and
memoization-cache accounting.
"""

from repro.core.results import AtomResult, InferredResult, Invariant, Specification
from repro.core.boundary import split_heap, SplitResult
from repro.core.engine import (
    CacheStats,
    EngineError,
    EngineJob,
    EngineReport,
    InferenceEngine,
    benchmark_engine,
)
from repro.core.infer_atom import infer_atoms
from repro.core.infer_pure import infer_pure_equalities
from repro.core.validate import validate_specification
from repro.core.sling import Sling, SlingConfig, infer_invariants, infer_specification

__all__ = [
    "CacheStats",
    "EngineError",
    "EngineJob",
    "EngineReport",
    "InferenceEngine",
    "benchmark_engine",
    "AtomResult",
    "InferredResult",
    "Invariant",
    "Specification",
    "split_heap",
    "SplitResult",
    "infer_atoms",
    "infer_pure_equalities",
    "validate_specification",
    "Sling",
    "SlingConfig",
    "infer_invariants",
    "infer_specification",
]
