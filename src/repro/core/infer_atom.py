"""Atomic-predicate inference: the ``InferAtom`` procedure (Algorithm 2).

Given a root pointer variable, its sub-models and their common boundary,
``infer_atoms`` searches the predefined inductive predicates for atomic
formulae satisfied by *all* sub-models:

1. for each predicate, argument tuples are enumerated from subsets of the
   boundary (always containing the root) padded with fresh existential
   variables, in ascending subset size, filtered for type consistency;
2. each candidate is checked against every sub-model by the symbolic-heap
   model checker, which also yields residual models and existential
   instantiations;
3. when every sub-model is a single cell, a singleton (points-to) template
   is additionally derived;
4. when nothing else matches, the ``emp`` fallback is returned with the
   sub-models as residue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import NamedTuple, Sequence

from repro.core.boundary import NIL_NAME
from repro.core.results import AtomResult
from repro.lang.types import StructRegistry, is_pointer_type
from repro.sl.checker import BATCH_VACUOUS, ModelChecker, PureVariant, build_skeleton
from repro.sl.exprs import Expr, Nil, Var
from repro.sl.model import StackHeapModel
from repro.sl.predicates import InductivePredicate, PredicateRegistry
from repro.sl.screen import ModelFacts, screen_candidates
from repro.sl.spatial import PointsTo, PredApp, SymHeap, fresh_vars


@dataclass(frozen=True)
class InferAtomConfig:
    """Search-space limits for Algorithm 2."""

    #: Predicates with more parameters than this are skipped (the paper notes
    #: the search is exponential in the arity; its largest predicate has 10).
    max_pred_arity: int = 10
    #: Upper bound on boundary-subset size (and hence permutation length).
    max_boundary_subset: int = 6
    #: Hard cap on the number of candidate formulae checked per predicate.
    max_candidates_per_pred: int = 4000
    #: Maximum number of accepted results returned per root variable.
    max_results: int = 4
    #: Keep zero-coverage results (formulas whose reduction consumes nothing).
    keep_vacuous: bool = False
    #: Semantically pre-filter candidates against per-model facts before any
    #: checker call (never changes results; see :mod:`repro.sl.screen`).
    screen_candidates: bool = True
    #: Group candidates by spatial skeleton and decide each group through
    #: ``ModelChecker.check_batch`` -- one shared search per (skeleton,
    #: model) instead of one per candidate (never changes results; see
    #: ``docs/performance.md``).
    batch_by_skeleton: bool = True


class Candidate(NamedTuple):
    """One enumerated argument permutation (before screening/grouping)."""

    permutation: tuple[str, ...]
    #: The fresh existential names of the permutation's enumeration pool.
    fresh: set[str]


@dataclass(frozen=True)
class CandidateGroup:
    """All surviving candidates that share one spatial skeleton.

    The skeleton is determined by (predicate, root position); every member
    differs from it only by pure slot equalities (its :class:`PureVariant`).
    ``indices`` maps each variant back to its enumeration position so
    results are assembled in the original candidate order.
    """

    skeleton: SymHeap
    variants: tuple[PureVariant, ...]
    indices: tuple[int, ...]


def infer_atoms(
    root: str,
    sub_models: Sequence[StackHeapModel],
    boundary: Sequence[str],
    predicates: PredicateRegistry,
    checker: ModelChecker,
    structs: StructRegistry | None = None,
    config: InferAtomConfig | None = None,
    weights: Sequence[int] | None = None,
) -> list[AtomResult]:
    """Infer atomic heap predicates for ``root`` over its sub-models.

    ``weights`` (one per sub-model, defaulting to 1) scale the residual-cell
    ranking: the isomorphism-deduplicated driver passes each representative
    model's class size so the ranking reproduces the sums an undeduplicated
    run would have computed.
    """
    config = config or InferAtomConfig()
    if not sub_models:
        return []

    results: list[AtomResult] = []
    root_type = _var_type(root, sub_models)
    sub_heaps_empty = all(model.heap.is_empty() for model in sub_models)

    if not sub_heaps_empty:
        # Per-model facts for the candidate pre-filter, computed once per
        # split and shared by every predicate's candidate loop.
        facts = (
            tuple(ModelFacts(model, root) for model in sub_models)
            if config.screen_candidates
            else None
        )
        for predicate in predicates.candidates_for_type(root_type):
            if predicate.arity > config.max_pred_arity:
                continue
            results.extend(
                _infer_inductive(
                    root, sub_models, boundary, predicate, checker, facts, config
                )
            )
        if all(len(model.heap) == 1 for model in sub_models):
            singleton = _infer_singleton(root, sub_models, boundary)
            if singleton is not None:
                results.append(singleton)

    results = _rank_and_prune(results, config, weights)
    if not results:
        results.append(
            AtomResult(
                atom=None,
                exists=(),
                residual_models=tuple(sub_models),
                instantiations=tuple({} for _ in sub_models),
            )
        )
    return results


# ---------------------------------------------------------------------------
# Inductive predicates
# ---------------------------------------------------------------------------


def _infer_inductive(
    root: str,
    sub_models: Sequence[StackHeapModel],
    boundary: Sequence[str],
    predicate: InductivePredicate,
    checker: ModelChecker,
    facts: Sequence[ModelFacts] | None,
    config: InferAtomConfig,
) -> list[AtomResult]:
    """Enumerate, screen, group and batch-check one predicate's candidates.

    The pipeline has four phases, all order-stable with respect to the
    original one-candidate-at-a-time loop (results are identical and appear
    in the same order):

    1. enumerate argument permutations (type filter, signature dedup,
       admission cap);
    2. screen the whole batch against the per-model facts
       (:func:`repro.sl.screen.screen_candidates` -- a pure optimisation);
    3. group survivors by spatial skeleton -- one :class:`CandidateGroup`
       per (predicate, root position) with the pure slot deltas attached --
       and decide each group with ``checker.check_batch``, which runs the
       heap-matching search once per (skeleton, model) instead of once per
       candidate and (with ``columnar_kernels`` on) settles the whole
       group's variants in one columnar pass over the stream's slot indexes
       (:mod:`repro.sl.kernels`) rather than one scan per variant;
    4. assemble accepted candidates into :class:`AtomResult`\\ s in
       enumeration order.
    """
    arity = predicate.arity
    results: list[AtomResult] = []
    candidates_seen = 0
    others = [name for name in boundary if name != root]
    max_subset = min(arity, config.max_boundary_subset, len(boundary))
    stats = checker.screen_stats
    models_list = list(sub_models)

    # -- phase 1: enumeration -------------------------------------------------
    enumerated: list[Candidate] = []
    seen_signatures: set[tuple] = set()
    capped = False
    for subset_size in range(1, max_subset + 1):
        if capped:
            break
        for extra in itertools.combinations(others, subset_size - 1):
            if capped:
                break
            subset = (root, *extra)
            fresh = fresh_vars(arity - subset_size, prefix="u")
            fresh_set = set(fresh)
            pool = list(subset) + list(fresh)
            for permutation in itertools.permutations(pool, arity):
                if root not in permutation:
                    continue
                if not _type_consistent(permutation, predicate, sub_models, fresh_set):
                    continue
                # Fresh existentials are interchangeable: collapse permutations
                # that only differ by which fresh variable sits where.
                signature = tuple(
                    name if name not in fresh_set else "?" for name in permutation
                )
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                # The admission cap deliberately counts every enumerated
                # candidate (pre-filtered or not), so enabling the filter
                # cannot let later permutations through that the unfiltered
                # search would have cut off.
                candidates_seen += 1
                if candidates_seen > config.max_candidates_per_pred:
                    capped = True
                    break
                stats.candidates_generated += 1
                enumerated.append(Candidate(permutation, fresh_set))

    # -- phase 2: whole-group screening ---------------------------------------
    if facts is not None:
        survivors = screen_candidates(
            predicate,
            enumerated,
            facts,
            checker.registry,
            drop_vacuous=not config.keep_vacuous,
            stats=stats,
        )
    else:
        survivors = enumerated
    if not survivors:
        return results
    prepared = []
    for candidate in survivors:
        used_fresh = tuple(name for name in candidate.permutation if name in candidate.fresh)
        formula = SymHeap(
            exists=used_fresh,
            spatial=PredApp(
                predicate.name, [_to_expr(name) for name in candidate.permutation]
            ),
        )
        prepared.append((candidate, used_fresh, formula))
    stats.candidates_checked += len(prepared)

    # -- phase 3: skeleton-batched checking -----------------------------------
    drop_vacuous = not config.keep_vacuous
    if config.batch_by_skeleton and checker.batch_by_skeleton and models_list:
        outcomes: list = [None] * len(prepared)
        for group in _group_by_skeleton(prepared, predicate, root):
            stats.candidate_groups += 1
            group_outcomes = checker.check_batch(
                models_list, group.skeleton, group.variants, drop_vacuous=drop_vacuous
            )
            for index, outcome in zip(group.indices, group_outcomes):
                outcomes[index] = outcome
    else:
        outcomes = [
            checker.check_all(models_list, formula) for _, _, formula in prepared
        ]

    # -- phase 4: assembly (enumeration order) --------------------------------
    for (candidate, used_fresh, formula), check in zip(prepared, outcomes):
        if check is None or check is BATCH_VACUOUS:
            continue
        if drop_vacuous and all(not result.consumed for result in check):
            continue
        results.append(
            AtomResult(
                atom=formula.spatial,
                exists=used_fresh,
                residual_models=tuple(
                    model.with_heap(result.residual)
                    for model, result in zip(sub_models, check)
                ),
                instantiations=tuple(result.instantiation for result in check),
            )
        )
    return results


def _group_by_skeleton(
    prepared: Sequence[tuple], predicate: InductivePredicate, root: str
) -> list[CandidateGroup]:
    """Partition surviving candidates into one group per spatial skeleton."""
    by_position: dict[int, list[int]] = {}
    for index, (candidate, _, _) in enumerate(prepared):
        by_position.setdefault(candidate.permutation.index(root), []).append(index)
    groups: list[CandidateGroup] = []
    for position, indices in by_position.items():
        skeleton = build_skeleton(predicate.name, predicate.arity, root, position)
        variants = tuple(
            _candidate_variant(prepared[index][0], prepared[index][2], position)
            for index in indices
        )
        groups.append(
            CandidateGroup(skeleton=skeleton, variants=variants, indices=tuple(indices))
        )
    return groups


def _candidate_variant(
    candidate: Candidate, formula: SymHeap, root_position: int
) -> PureVariant:
    """Express one candidate as pure slot deltas over its group's skeleton."""
    var_slots: list[tuple[int, str]] = []
    nil_slots: list[int] = []
    free_slots: list[tuple[int, str]] = []
    for position, name in enumerate(candidate.permutation):
        if position == root_position:
            continue
        if name in candidate.fresh:
            free_slots.append((position, name))
        elif name == NIL_NAME:
            nil_slots.append(position)
        else:
            var_slots.append((position, name))
    return PureVariant(
        formula=formula,
        var_slots=tuple(var_slots),
        nil_slots=tuple(nil_slots),
        free_slots=tuple(free_slots),
    )


def _type_consistent(
    permutation: Sequence[str],
    predicate: InductivePredicate,
    sub_models: Sequence[StackHeapModel],
    fresh: set[str],
) -> bool:
    """Algorithm 2, line 8: boundary arguments must match the parameter types."""
    for name, param_type in zip(permutation, predicate.param_types):
        if name in fresh:
            continue
        if name == NIL_NAME:
            # nil may instantiate any pointer parameter but not an integer one.
            if param_type is not None and not is_pointer_type(param_type):
                return False
            continue
        var_type = _var_type(name, sub_models)
        if param_type is None:
            # Integer-ish parameter: only fresh existentials may fill it;
            # boundary members are pointers by construction.
            return False
        if var_type is None:
            # Untyped stack variable (e.g. the ghost ``res``): allow it for
            # pointer parameters.
            continue
        if var_type != param_type:
            return False
    return True


# ---------------------------------------------------------------------------
# Singleton predicates
# ---------------------------------------------------------------------------


def _infer_singleton(
    root: str, sub_models: Sequence[StackHeapModel], boundary: Sequence[str]
) -> AtomResult | None:
    """Derive ``root |-> (k1, ..., kn)`` when every sub-model is one cell."""
    cells = []
    for model in sub_models:
        root_value = model.stack_dict.get(root)
        if root_value is None or root_value not in model.heap:
            return None
        cells.append(model.heap[root_value])
    type_names = {cell.type_name for cell in cells}
    if len(type_names) != 1:
        return None
    type_name = type_names.pop()
    field_count = len(cells[0].values)
    if any(len(cell.values) != field_count for cell in cells):
        return None

    args: list[Expr] = []
    exists: list[str] = []
    per_model_instantiations: list[dict[str, int]] = [dict() for _ in sub_models]
    for position in range(field_count):
        common = _common_variable_for_field(position, cells, sub_models, boundary)
        if common is not None:
            args.append(common)
            continue
        fresh_name = fresh_vars(1, prefix="u")[0]
        exists.append(fresh_name)
        args.append(Var(fresh_name))
        for index, cell in enumerate(cells):
            per_model_instantiations[index][fresh_name] = cell.values[position]

    atom = PointsTo(Var(root), type_name, args)
    residuals = []
    for model in sub_models:
        root_value = model.stack_dict[root]
        residuals.append(model.with_heap(model.heap.remove([root_value])))
    return AtomResult(
        atom=atom,
        exists=tuple(exists),
        residual_models=tuple(residuals),
        instantiations=tuple(per_model_instantiations),
    )


def _common_variable_for_field(
    position: int,
    cells: Sequence,
    sub_models: Sequence[StackHeapModel],
    boundary: Sequence[str],
) -> Expr | None:
    """A boundary variable (or nil) whose value matches this field in every model."""
    if all(cell.values[position] == 0 for cell in cells):
        return Nil()
    for name in boundary:
        if name == NIL_NAME:
            continue
        if all(
            name in model.stack_dict
            and model.stack_dict[name] == cell.values[position]
            for model, cell in zip(sub_models, cells)
        ):
            return Var(name)
    return None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _to_expr(name: str) -> Expr:
    return Nil() if name == NIL_NAME else Var(name)


def _var_type(name: str, models: Sequence[StackHeapModel]) -> str | None:
    for model in models:
        var_type = model.type_dict.get(name)
        if var_type is not None:
            return var_type
    return None


def _rank_and_prune(
    results: list[AtomResult],
    config: InferAtomConfig,
    weights: Sequence[int] | None = None,
) -> list[AtomResult]:
    """Prefer full-coverage results with the fewest fresh existentials."""

    def rank(result: AtomResult) -> tuple:
        if weights is None:
            residual = sum(len(model.heap) for model in result.residual_models)
        else:
            residual = sum(
                weight * len(model.heap)
                for weight, model in zip(weights, result.residual_models)
            )
        return (
            0 if result.covers_everything() else 1,
            residual,
            len(result.exists),
        )

    unique: list[AtomResult] = []
    seen: set[str] = set()
    for result in sorted(results, key=rank):
        key = repr(result.atom)
        if key in seen:
            continue
        seen.add(key)
        unique.append(result)
    return unique[: config.max_results]
