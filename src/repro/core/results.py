"""Result types produced by the SLING inference pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.sl.exprs import PureFormula
from repro.sl.model import StackHeapModel
from repro.sl.pretty import pretty
from repro.sl.spatial import PointsTo, PredApp, Spatial, SymHeap


@dataclass(frozen=True)
class AtomResult:
    """One accepted atomic formula for a root variable (Algorithm 2 output).

    ``atom`` is an inductive predicate application, a points-to or ``emp``
    (represented by ``None``); ``exists`` are the fresh existential variables
    introduced for unmatched parameters; ``residual_models`` and
    ``instantiations`` follow Definition 2, one entry per sub-model.
    """

    atom: Spatial | None
    exists: tuple[str, ...]
    residual_models: tuple[StackHeapModel, ...]
    instantiations: tuple[Mapping[str, int], ...]

    @property
    def is_emp(self) -> bool:
        """True when the result is the trivial ``emp`` fallback."""
        return self.atom is None

    def covers_everything(self) -> bool:
        """True when the atom consumed every cell of every sub-model."""
        return all(model.heap.is_empty() for model in self.residual_models)


@dataclass
class InferredResult:
    """A tuple ``(F, SH, I)`` of Algorithm 1, threaded through the iterations.

    ``atoms`` are the spatial conjuncts accumulated so far, ``exists`` their
    existential variables, ``models`` the residual stack-heap models (the
    part of the original heaps not yet described) and ``instantiations`` the
    accumulated existential instantiations (one per original model).
    """

    atoms: list[Spatial] = field(default_factory=list)
    exists: list[str] = field(default_factory=list)
    pure: list[PureFormula] = field(default_factory=list)
    models: list[StackHeapModel] = field(default_factory=list)
    instantiations: list[dict[str, int]] = field(default_factory=list)

    def residual_cells(self) -> int:
        """Total number of heap cells not yet described by the formula."""
        return sum(len(model.heap) for model in self.models)

    def spatial_atom_count(self) -> int:
        """Number of non-``emp`` spatial conjuncts."""
        return len(self.atoms)


@dataclass(frozen=True)
class Invariant:
    """A final inferred invariant at a program location."""

    location: str
    formula: SymHeap
    #: True when the invariant was inferred from traces containing freed
    #: cells (the paper conservatively reports such invariants as spurious).
    from_freed_traces: bool = False
    #: True when frame-rule validation rejected the enclosing specification.
    spurious: bool = False

    # -- metrics used by Table 1 -----------------------------------------------

    def singleton_count(self) -> int:
        """Number of points-to (singleton) atoms in the invariant."""
        return sum(1 for atom in self.formula.spatial_atoms() if isinstance(atom, PointsTo))

    def predicate_count(self) -> int:
        """Number of inductive predicate applications in the invariant."""
        return sum(1 for atom in self.formula.spatial_atoms() if isinstance(atom, PredApp))

    def pure_count(self) -> int:
        """Number of pure conjuncts (equalities) in the invariant."""
        from repro.sl.checker import _pure_conjuncts

        return len(_pure_conjuncts(self.formula.pure))

    def is_useful(self) -> bool:
        """True when the invariant says something beyond ``emp``/``true``."""
        return self.singleton_count() + self.predicate_count() + self.pure_count() > 0

    def pretty(self, field_names: Mapping[str, tuple[str, ...]] | None = None) -> str:
        """Human-readable rendering of the invariant."""
        return pretty(self.formula, field_names)


@dataclass
class Specification:
    """Pre/postconditions and loop invariants inferred for one function."""

    function: str
    preconditions: list[Invariant] = field(default_factory=list)
    #: Postconditions grouped by return location (``ret#0``, ``ret#1``, ...).
    postconditions: dict[str, list[Invariant]] = field(default_factory=dict)
    #: Loop invariants grouped by loop-head location (``loop#0``, ...).
    loop_invariants: dict[str, list[Invariant]] = field(default_factory=dict)
    #: Locations for which no traces were obtained (unreached by the tests).
    unreached_locations: list[str] = field(default_factory=list)
    #: Whether the frame-rule validation accepted the pre/post combination.
    validated: bool = True
    #: Wall-clock seconds spent on inference for this function.
    inference_seconds: float = 0.0

    def all_invariants(self) -> list[Invariant]:
        """Every invariant of the specification, in location order."""
        result = list(self.preconditions)
        for invariants in self.postconditions.values():
            result.extend(invariants)
        for invariants in self.loop_invariants.values():
            result.extend(invariants)
        return result

    def invariant_count(self) -> int:
        """Total number of inferred invariants."""
        return len(self.all_invariants())

    def spurious_count(self) -> int:
        """Number of invariants flagged as spurious."""
        return sum(1 for invariant in self.all_invariants() if invariant.spurious or invariant.from_freed_traces)

    def locations_with_invariants(self) -> list[str]:
        """Locations that received at least one invariant."""
        result = []
        if self.preconditions:
            result.append("entry")
        result.extend(loc for loc, invs in self.postconditions.items() if invs)
        result.extend(loc for loc, invs in self.loop_invariants.items() if invs)
        return result


def merge_instantiations(
    first: Sequence[Mapping[str, int]], second: Sequence[Mapping[str, int]]
) -> list[dict[str, int]]:
    """Pointwise union of two equal-length instantiation sequences (``I (+) I'``)."""
    merged = []
    for left, right in zip(first, second):
        combined = dict(left)
        combined.update(right)
        merged.append(combined)
    return merged
