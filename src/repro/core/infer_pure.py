"""Pure (heap-independent) inference: the ``InferPure`` step of Section 4.3.

The heap predicates inferred by Algorithm 2 relate variables only through the
arguments of the predicates; ``infer_pure_equalities`` recovers additional
equalities among stack variables, existential variables, ``nil`` and the
ghost variable ``res`` by checking which pairs agree in *every* observed
model and existential instantiation.  This is how, e.g., ``res = x`` and the
aliasing facts of the paper's running example are found.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.boundary import NIL_NAME
from repro.sl.exprs import Eq, Expr, Nil, PureFormula, Var
from repro.sl.model import StackHeapModel


def infer_pure_equalities(
    models: Sequence[StackHeapModel],
    instantiations: Sequence[Mapping[str, int]],
    stack_vars: Sequence[str] | None = None,
    existential_vars: Sequence[str] | None = None,
) -> list[PureFormula]:
    """Equalities that hold in every model between the tracked terms.

    ``models`` are the original (full) stack-heap models at the location;
    ``instantiations`` the accumulated existential instantiations, one per
    model.  Terms considered are the given stack variables (defaulting to
    every pointer variable plus ``res``), the existential variables that are
    instantiated in every model, and ``nil``.
    """
    if not models:
        return []
    if stack_vars is None:
        stack_vars = _default_stack_vars(models)
    if existential_vars is None:
        existential_vars = _commonly_instantiated(instantiations)

    terms: list[str] = list(dict.fromkeys([*stack_vars, *existential_vars, NIL_NAME]))
    values = _term_values(terms, models, instantiations)

    equalities: list[PureFormula] = []
    for index, left in enumerate(terms):
        for right in terms[index + 1 :]:
            left_values = values.get(left)
            right_values = values.get(right)
            if left_values is None or right_values is None:
                continue
            if left_values == right_values:
                equalities.append(Eq(_to_expr(left), _to_expr(right)))
    return equalities


def _default_stack_vars(models: Sequence[StackHeapModel]) -> list[str]:
    """Pointer-valued stack variables (plus ``res``) present in every model."""
    common: list[str] | None = None
    for model in models:
        names = [name for name in model.pointer_vars()]
        if model.has_var("res") and "res" not in names:
            names.append("res")
        if common is None:
            common = names
        else:
            common = [name for name in common if name in names]
    return common or []


def _commonly_instantiated(instantiations: Sequence[Mapping[str, int]]) -> list[str]:
    """Existential variables with a concrete value in every instantiation."""
    if not instantiations:
        return []
    common: set[str] | None = None
    for instantiation in instantiations:
        names = set(instantiation)
        common = names if common is None else common & names
    ordered = []
    for instantiation in instantiations:
        for name in instantiation:
            if common and name in common and name not in ordered:
                ordered.append(name)
    return ordered


def _term_values(
    terms: Sequence[str],
    models: Sequence[StackHeapModel],
    instantiations: Sequence[Mapping[str, int]],
) -> dict[str, tuple[int, ...]]:
    """The per-model value vector of every term that is defined everywhere."""
    values: dict[str, tuple[int, ...]] = {}
    padded_instantiations = list(instantiations) + [{}] * (len(models) - len(instantiations))
    for term in terms:
        vector: list[int] = []
        defined = True
        for model, instantiation in zip(models, padded_instantiations):
            if term == NIL_NAME:
                vector.append(0)
            elif model.has_var(term):
                vector.append(model.value_of(term))
            elif term in instantiation:
                vector.append(instantiation[term])
            else:
                defined = False
                break
        if not defined:
            continue
        # The paper restricts pure inference to equivalences among memory
        # addresses (Section 5.3); drop terms holding plain integer data.
        is_address_like = all(
            value == 0 or value in model.heap for value, model in zip(vector, models)
        )
        if is_address_like:
            values[term] = tuple(vector)
    return values


def _to_expr(name: str) -> Expr:
    return Nil() if name == NIL_NAME else Var(name)
