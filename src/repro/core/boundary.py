"""Heap partitioning: the ``SplitHeap`` procedure of Section 4.1.

Given a sequence of stack-heap models and a *root* pointer variable,
``split_heap`` computes for each model

* the sub-heap of cells reachable from the root, stopping at (and excluding)
  cells pointed to by other, non-aliasing stack pointer variables, and
* the remaining heap,

together with the *common boundary*: the root itself, ``nil`` when it is
reachable, and every stack variable whose value was encountered during the
traversal -- intersected across all models.  Boundary variables are the
candidate arguments for the atomic predicates inferred next (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.types import StructRegistry, is_pointer_type
from repro.sl.model import StackHeapModel

#: The name used for the ``nil`` constant in boundary sets.
NIL_NAME = "nil"


@dataclass(frozen=True)
class SplitResult:
    """The output of ``SplitHeap`` for a sequence of models."""

    sub_models: tuple[StackHeapModel, ...]
    rest_models: tuple[StackHeapModel, ...]
    boundary: tuple[str, ...]


def split_heap(
    models: Sequence[StackHeapModel],
    root: str,
    structs: StructRegistry | None = None,
) -> SplitResult:
    """Split every model around ``root`` and intersect the per-model boundaries."""
    sub_models: list[StackHeapModel] = []
    rest_models: list[StackHeapModel] = []
    boundaries: list[set[str]] = []
    for model in models:
        sub_heap_addrs, boundary = _split_one(model, root, structs)
        sub_models.append(model.with_heap(model.heap.restrict(sub_heap_addrs)))
        rest_models.append(model.with_heap(model.heap.remove(sub_heap_addrs)))
        boundaries.append(boundary)

    if boundaries:
        common = set.intersection(*boundaries)
    else:
        common = set()
    ordered = _order_boundary(common, root, models)
    return SplitResult(tuple(sub_models), tuple(rest_models), tuple(ordered))


def _split_one(
    model: StackHeapModel, root: str, structs: StructRegistry | None
) -> tuple[set[int], set[str]]:
    """Compute the sub-heap addresses and boundary variables for one model."""
    stack = model.stack_dict
    if root not in stack:
        return set(), {root}
    root_value = stack[root]
    pointer_vars = model.pointer_vars()

    # Variables aliasing the root do not stop the traversal; all others do.
    stoppers: dict[int, list[str]] = {}
    for var in pointer_vars:
        value = stack[var]
        if var != root and value != root_value and value != 0:
            stoppers.setdefault(value, []).append(var)

    boundary: set[str] = {root}
    for var in pointer_vars:
        if var != root and stack[var] == root_value:
            boundary.add(var)

    if root_value == 0:
        boundary.add(NIL_NAME)
        return set(), boundary

    visited: set[int] = set()
    saw_nil = False
    worklist = [root_value]
    while worklist:
        address = worklist.pop()
        if address == 0:
            saw_nil = True
            continue
        if address not in model.heap:
            # Dangling pointer: the cell is not part of the observed heap.
            continue
        if address in stoppers:
            boundary.update(stoppers[address])
            continue
        if address in visited:
            continue
        visited.add(address)
        for value in _successors(model, address, structs):
            if value == 0:
                saw_nil = True
            elif value in model.heap and value not in visited:
                worklist.append(value)

    if saw_nil:
        boundary.add(NIL_NAME)
    return visited, boundary


def _successors(
    model: StackHeapModel, address: int, structs: StructRegistry | None
) -> list[int]:
    """Values of the pointer fields of the cell at ``address``."""
    cell = model.heap[address]
    if structs is not None and cell.type_name in structs:
        struct = structs.get(cell.type_name)
        return [
            value
            for name, value in cell.fields
            if struct.has_field(name) and is_pointer_type(struct.field_type(name))
        ]
    # Without type information, treat any field holding a live address (or
    # nil) as a pointer field.
    return [value for _, value in cell.fields if value == 0 or value in model.heap]


def _order_boundary(
    boundary: set[str], root: str, models: Sequence[StackHeapModel]
) -> list[str]:
    """Deterministic boundary order: root first, stack variables, then ``nil``."""
    stack_order: list[str] = []
    for model in models:
        for name, _ in model.stack:
            if name not in stack_order:
                stack_order.append(name)
    ordered = [root]
    for name in stack_order:
        if name in boundary and name != root:
            ordered.append(name)
    if NIL_NAME in boundary:
        ordered.append(NIL_NAME)
    # Any remaining members (defensive; should not happen).
    for name in sorted(boundary):
        if name not in ordered:
            ordered.append(name)
    return ordered
