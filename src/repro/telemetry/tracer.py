"""The tracer: hierarchical spans over NDJSON, multiprocessing-safe.

Two classes split the job along the process boundary:

* :class:`Telemetry` is the *configuration* handle threaded through
  :class:`~repro.core.sling.SlingConfig`: picklable (it carries only the
  trace path and the origin pid), fork-friendly, and the factory for the
  per-process :class:`Tracer`.  The origin process writes the trace file
  itself; any other process (a forked engine worker) writes a per-pid
  segment file ``<path>.seg-<pid>`` that :meth:`Telemetry.merge_segments`
  folds back into the main file after the pool joins, re-parenting the
  workers' root spans under the origin's currently open span.
* :class:`Tracer` is process-local: a span stack, a monotonically increasing
  sequence number for span ids (``"<pid>:<seq>"``), and a line-buffered
  NDJSON writer.  Every record is flushed as soon as it is written, so a
  ``fork()`` never duplicates buffered records into child processes and
  segment files are complete the moment a worker's last job returns.

Timestamps come from :data:`monotime` (= ``time.perf_counter``), the one
sanctioned monotonic clock of this codebase: product code imports it from
here instead of calling ``time.perf_counter()`` directly (``make check``
lints for strays), so every duration in reports and traces is measured on
the same clock.
"""

from __future__ import annotations

import glob
import json
import os
import time
from contextlib import contextmanager

from repro.telemetry.records import TRACE_SCHEMA_VERSION

#: The project-wide monotonic clock.  On Linux ``perf_counter`` is
#: ``CLOCK_MONOTONIC``, which is boot-relative and therefore comparable
#: across the processes of one engine run (the property the Chrome export's
#: shared time axis relies on).
monotime = time.perf_counter


class Span:
    """One open span; closed (and written) by the owning tracer."""

    __slots__ = ("id", "parent", "kind", "name", "track", "start", "attrs")

    def __init__(self, span_id, parent, kind, name, track, start, attrs):
        self.id = span_id
        self.parent = parent
        self.kind = kind
        self.name = name
        self.track = track
        self.start = start
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes (e.g. counter deltas) before the span closes."""
        self.attrs.update(attrs)


class Tracer:
    """Process-local span stack writing one NDJSON file (see module doc)."""

    def __init__(self, path, pid: int | None = None, fresh: bool = True):
        self.path = str(path)
        self.pid = os.getpid() if pid is None else pid
        self._seq = 0
        self._stack: list[Span] = []
        self._file = open(self.path, "w" if fresh else "a", encoding="utf-8")
        self.write_record(
            {
                "type": "trace_meta",
                "version": TRACE_SCHEMA_VERSION,
                "pid": self.pid,
                "clock": "perf_counter",
                "unix_time": time.time(),
            }
        )

    # ------------------------------------------------------------- spans --

    @property
    def current_id(self) -> str | None:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._stack[-1].id if self._stack else None

    @contextmanager
    def span(self, kind: str, name: str | None = None, **attrs):
        """Open a child of the current span; closes (and writes) on exit."""
        span = self.begin(kind, name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def begin(self, kind: str, name: str | None = None, **attrs) -> Span:
        span = Span(
            span_id=self._next_id(),
            parent=self.current_id,
            kind=kind,
            name=name,
            track="main",
            start=monotime(),
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        dur = monotime() - span.start
        # Identity removal instead of a strict pop: a signal (the engine's
        # SIGALRM job timeout) can unwind several spans at once, and the
        # context managers then close them outermost-last.
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        self._write_span(span.id, span.parent, span.kind, span.name, span.track, span.start, dur, span.attrs)

    def emit_span(
        self,
        kind: str,
        name: str | None,
        ts: float,
        dur: float,
        track: str = "aux",
        parent: str | None = None,
        **attrs,
    ) -> None:
        """Write an already-measured span (aggregated side-channel spans).

        Used for time that was accumulated outside the stack discipline --
        the lazily interleaved ``stream_materialize`` pulls -- and therefore
        goes on the ``aux`` track: its duration is already contained in some
        main-track span, so main-track self-times stay additive.
        """
        self._write_span(self._next_id(), parent, kind, name, track, ts, dur, attrs)

    def counters(self, name: str, values: dict) -> None:
        """Write a point-in-time counter snapshot record."""
        self.write_record(
            {
                "type": "counters",
                "name": name,
                "pid": self.pid,
                "ts": monotime(),
                "values": values,
            }
        )

    # ---------------------------------------------------------- plumbing --

    def _next_id(self) -> str:
        span_id = f"{self.pid}:{self._seq}"
        self._seq += 1
        return span_id

    def _write_span(self, span_id, parent, kind, name, track, ts, dur, attrs) -> None:
        record = {
            "type": "span",
            "id": span_id,
            "parent": parent,
            "kind": kind,
            "name": name,
            "ts": round(ts, 9),
            "dur": round(dur, 9),
            "pid": self.pid,
            "track": track,
        }
        if attrs:
            record["attrs"] = attrs
        self.write_record(record)

    def write_record(self, record: dict) -> None:
        """Append one record and flush (fork-safety: no buffered lines)."""
        self._file.write(json.dumps(record, default=str) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class Telemetry:
    """Picklable tracing handle for :class:`~repro.core.sling.SlingConfig`.

    Holds only the trace path and the pid of the process that created it.
    :meth:`tracer` lazily builds (and caches) the process-local
    :class:`Tracer` -- the origin pid writes ``path`` itself, every other
    pid writes the segment file ``<path>.seg-<pid>`` for the engine to
    merge.  Pickling (and ``fork``) drops the cached tracer, so a worker
    that inherited or unpickled this handle always opens its own segment.
    """

    def __init__(self, path):
        self.path = str(path)
        self.origin_pid = os.getpid()
        self._tracer: Tracer | None = None

    def __getstate__(self):
        return {"path": self.path, "origin_pid": self.origin_pid}

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._tracer = None

    def tracer(self) -> Tracer:
        """The calling process's tracer (created on first use)."""
        pid = os.getpid()
        tracer = self._tracer
        if tracer is None or tracer.pid != pid:
            target = self.path if pid == self.origin_pid else self.segment_path(pid)
            tracer = Tracer(target, pid=pid)
            self._tracer = tracer
        return tracer

    def segment_path(self, pid: int) -> str:
        return f"{self.path}.seg-{pid}"

    def segment_paths(self) -> list[str]:
        return sorted(glob.glob(f"{self.path}.seg-*"))

    def merge_segments(self) -> int:
        """Fold worker segment files into the main trace file.

        Called by the engine after a pool joins.  Every segment record is
        appended to the main file except the segment's ``trace_meta``; the
        workers' *root* spans (``parent: null`` -- their job spans) are
        re-parented under the origin tracer's currently open span, which at
        engine merge time is the sweep span.  Segment files are deleted
        afterwards, so a later pool of the same run starts clean.  Returns
        the number of records merged.  No-op outside the origin process.
        """
        if os.getpid() != self.origin_pid:
            return 0
        segments = self.segment_paths()
        if not segments:
            return 0
        tracer = self.tracer()
        parent_id = tracer.current_id
        merged = 0
        for segment in segments:
            with open(segment, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    if record.get("type") == "trace_meta":
                        continue
                    if record.get("type") == "span" and record.get("parent") is None:
                        record["parent"] = parent_id
                    tracer.write_record(record)
                    merged += 1
            os.remove(segment)
        return merged

    def close(self) -> None:
        """Close this process's tracer (if one was ever created)."""
        if self._tracer is not None:
            self._tracer.close()
            self._tracer = None
