"""Trace analysis: per-phase summaries, Chrome export, regression diffs.

All functions here consume the parsed record lists of
:func:`repro.telemetry.records.read_trace`; nothing touches the tracer, so
traces from other machines (CI artifacts) analyse the same way as local
ones.
"""

from __future__ import annotations

from repro.telemetry.records import span_records


def self_times(records) -> dict[str, float]:
    """Per-span self time: duration minus the duration of main-track children.

    Only main-track spans participate -- they nest by construction (the
    tracer's stack), so within one process's span tree the self times are
    additive: they sum exactly to the root's duration.  ``aux``-track spans
    (aggregated ``stream_materialize`` time) are excluded on both sides;
    their time is already inside some main-track span.  Self times are
    clamped at zero: a parallel sweep's children overlap, so their summed
    duration may legitimately exceed the parent's wall time.
    """
    spans = [span for span in span_records(records) if span["track"] == "main"]
    child_totals: dict[str, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_totals[parent] = child_totals.get(parent, 0.0) + span["dur"]
    return {
        span["id"]: max(0.0, span["dur"] - child_totals.get(span["id"], 0.0))
        for span in spans
    }


def phase_summary(records) -> dict[str, dict]:
    """Aggregate spans per kind: count, total and self seconds.

    Main-track kinds report ``self_seconds`` (see :func:`self_times`);
    aux-track kinds report ``aux: true`` instead -- their total is a
    side-channel measurement already contained in main-track spans and must
    not be added to the main-track self times.
    """
    selfs = self_times(records)
    summary: dict[str, dict] = {}
    for span in span_records(records):
        entry = summary.setdefault(
            span["kind"], {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += span["dur"]
        if span["track"] == "main":
            entry["self_seconds"] += selfs[span["id"]]
        else:
            entry["aux"] = True
    for entry in summary.values():
        entry["total_seconds"] = round(entry["total_seconds"], 6)
        if entry.pop("aux", False):
            del entry["self_seconds"]
            entry["aux"] = True
        else:
            entry["self_seconds"] = round(entry["self_seconds"], 6)
    return summary


def hottest(records, kind: str, top: int = 10) -> list[dict]:
    """The ``top`` hottest span names of one kind by summed duration."""
    totals: dict[str, dict] = {}
    for span in span_records(records):
        if span["kind"] != kind:
            continue
        name = span.get("name") or "<unnamed>"
        entry = totals.setdefault(name, {"name": name, "count": 0, "total_seconds": 0.0})
        entry["count"] += 1
        entry["total_seconds"] += span["dur"]
    ranked = sorted(totals.values(), key=lambda entry: -entry["total_seconds"])
    for entry in ranked:
        entry["total_seconds"] = round(entry["total_seconds"], 6)
    return ranked[:top]


def to_chrome(records) -> dict:
    """Convert a trace to Chrome trace-event JSON (``about://tracing``).

    Spans become complete (``ph: "X"``) events with microsecond timestamps
    normalized to the earliest span; each (pid, track) pair gets its own
    thread row, so after a parallel sweep every worker pid is one track and
    the overlap is finally visible.  ``trace_meta``/``counters`` records
    become process metadata and counter (``ph: "C"``) events.
    """
    spans = span_records(records)
    if spans:
        origin = min(span["ts"] for span in spans)
    else:
        origin = 0.0
    events = []
    tids: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = len(tids) + 1
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"pid {pid} ({track})"},
                }
            )
        return tid

    for record in records:
        if record["type"] == "trace_meta":
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": record["pid"],
                    "tid": 0,
                    "args": {"name": f"repro pid {record['pid']}"},
                }
            )
        elif record["type"] == "span":
            events.append(
                {
                    "name": record.get("name") or record["kind"],
                    "cat": record["kind"],
                    "ph": "X",
                    "ts": round((record["ts"] - origin) * 1e6, 3),
                    "dur": round(record["dur"] * 1e6, 3),
                    "pid": record["pid"],
                    "tid": tid_for(record["pid"], record["track"]),
                    "args": record.get("attrs", {}),
                }
            )
        elif record["type"] == "counters":
            events.append(
                {
                    "name": record.get("name") or "counters",
                    "ph": "C",
                    "ts": round((record["ts"] - origin) * 1e6, 3),
                    "pid": record["pid"],
                    "args": {
                        key: value
                        for key, value in record["values"].items()
                        if isinstance(value, (int, float))
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def diff_summaries(old_records, new_records) -> dict[str, dict]:
    """Per-kind self/total time deltas between two traces (regression triage).

    Keys are span kinds present in either trace; each entry carries the old
    and new totals and the delta (new minus old, negative = faster).
    """
    old = phase_summary(old_records)
    new = phase_summary(new_records)
    diff: dict[str, dict] = {}
    for kind in sorted(set(old) | set(new)):
        old_entry = old.get(kind, {"count": 0, "total_seconds": 0.0})
        new_entry = new.get(kind, {"count": 0, "total_seconds": 0.0})
        entry = {
            "count_old": old_entry["count"],
            "count_new": new_entry["count"],
            "total_seconds_old": old_entry["total_seconds"],
            "total_seconds_new": new_entry["total_seconds"],
            "total_delta": round(
                new_entry["total_seconds"] - old_entry["total_seconds"], 6
            ),
        }
        if "self_seconds" in old_entry or "self_seconds" in new_entry:
            entry["self_seconds_old"] = old_entry.get("self_seconds", 0.0)
            entry["self_seconds_new"] = new_entry.get("self_seconds", 0.0)
            entry["self_delta"] = round(
                entry["self_seconds_new"] - entry["self_seconds_old"], 6
            )
        diff[kind] = entry
    return diff
