"""Structured tracing: NDJSON span streams and their analysis.

The subsystem has three layers (see ``docs/observability.md``):

* :mod:`repro.telemetry.tracer` -- the process-local :class:`Tracer`
  (hierarchical spans, monotonic timing) and the picklable
  :class:`Telemetry` handle threaded through ``SlingConfig``; also exports
  :data:`monotime`, the sanctioned monotonic clock for product timings.
* :mod:`repro.telemetry.records` -- the versioned NDJSON record schema and
  its reader/validator.
* :mod:`repro.telemetry.analyze` -- per-phase summaries, Chrome trace-event
  export and trace diffs, backing the ``repro trace`` CLI.

The default everywhere is ``telemetry=None``: no tracer exists, every
instrumented call site short-circuits on an ``is None`` check, and no code
path differs from an untraced build -- the same gating discipline as every
other ``SlingConfig`` knob.
"""

from repro.telemetry.analyze import (
    diff_summaries,
    hottest,
    phase_summary,
    self_times,
    to_chrome,
)
from repro.telemetry.records import (
    SPAN_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceError,
    read_trace,
    span_records,
    validate_record,
)
from repro.telemetry.tracer import Span, Telemetry, Tracer, monotime

__all__ = [
    "SPAN_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Telemetry",
    "TraceError",
    "Tracer",
    "diff_summaries",
    "hottest",
    "monotime",
    "phase_summary",
    "read_trace",
    "self_times",
    "span_records",
    "to_chrome",
    "validate_record",
]
