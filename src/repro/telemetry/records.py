"""NDJSON trace-record conventions: schema, reading, validation.

A trace file is a stream of JSON objects, one per line, append-only and
cat-able -- the same record conventions ROADMAP item 1's streaming serve
mode will reuse.  Three record types exist in schema version 1:

``trace_meta``
    Written once per producing process: schema ``version``, the producer's
    ``pid``, the ``clock`` the span timestamps come from (``perf_counter``,
    i.e. ``CLOCK_MONOTONIC`` on Linux -- boot-relative and therefore
    comparable across the processes of one machine) and a ``unix_time``
    wall-clock anchor.

``span``
    One closed span: ``id`` (``"<pid>:<seq>"``), ``parent`` (a span id or
    ``null`` for roots), ``kind`` (the taxonomy of ``docs/observability.md``:
    ``sweep``, ``job``, ``function``, ``location``, ``candidate_group``,
    ``checker_call``, ``stream_materialize``, ``disk_io``), an optional
    ``name``, ``ts``/``dur`` in clock seconds, ``pid``, ``track`` (``main``
    for stack-nested spans, ``aux`` for aggregated side-channel spans whose
    time is already contained in a main-track span) and an ``attrs`` object
    carrying counter deltas and labels.

``counters``
    A point-in-time snapshot of a counter dictionary (``name``, ``pid``,
    ``ts``, ``values``) -- the per-job cache counters, in engine traces.
"""

from __future__ import annotations

import json

#: Version stamped into every ``trace_meta`` record.  Bump on any change a
#: reader could misinterpret; readers reject versions they do not know.
TRACE_SCHEMA_VERSION = 1

RECORD_TYPES = ("trace_meta", "span", "counters")

#: The span taxonomy (outermost first; the last three are leaves).
SPAN_KINDS = (
    "sweep",
    "job",
    "function",
    "location",
    "candidate_group",
    "checker_call",
    "stream_materialize",
    "disk_io",
    # Resilience events emitted by the engine's pool supervisor (aux track,
    # zero-duration): a retry scheduled with backoff, and a healing round
    # (worker respawn, quarantine).  See docs/resilience.md.
    "retry",
    "pool_heal",
    # Serving-layer spans (repro.serve): one ``request`` per accepted
    # request, a ``queue_wait`` covering its time in the admission queue,
    # and one ``drain`` covering a SIGTERM graceful shutdown.  See
    # docs/serving.md.
    "request",
    "queue_wait",
    "drain",
)

_SPAN_REQUIRED = ("id", "kind", "ts", "dur", "pid", "track")


class TraceError(ValueError):
    """A trace file or record stream violates the schema."""


def read_trace(path) -> list[dict]:
    """Parse and validate one NDJSON trace file into a record list."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{number}: not valid JSON ({exc})") from exc
            try:
                validate_record(record)
            except TraceError as exc:
                raise TraceError(f"{path}:{number}: {exc}") from exc
            records.append(record)
    if not any(record["type"] == "trace_meta" for record in records):
        raise TraceError(f"{path}: no trace_meta record (not a trace file?)")
    return records


def validate_record(record) -> None:
    """Raise :class:`TraceError` unless ``record`` is a valid trace record."""
    if not isinstance(record, dict):
        raise TraceError(f"record is not an object: {record!r}")
    kind = record.get("type")
    if kind not in RECORD_TYPES:
        raise TraceError(f"unknown record type {kind!r}")
    if kind == "trace_meta":
        version = record.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceError(
                f"unsupported trace schema version {version!r} "
                f"(this reader knows {TRACE_SCHEMA_VERSION})"
            )
        if not isinstance(record.get("pid"), int):
            raise TraceError("trace_meta record has no integer pid")
    elif kind == "span":
        for field in _SPAN_REQUIRED:
            if field not in record:
                raise TraceError(f"span record is missing {field!r}")
        if not isinstance(record["ts"], (int, float)) or not isinstance(
            record["dur"], (int, float)
        ):
            raise TraceError("span ts/dur must be numbers")
        if record["dur"] < 0:
            raise TraceError(f"span {record['id']!r} has negative duration")
        if record["track"] not in ("main", "aux"):
            raise TraceError(f"span track must be main or aux, got {record['track']!r}")
    elif kind == "counters":
        if not isinstance(record.get("values"), dict):
            raise TraceError("counters record has no values object")


def span_records(records) -> list[dict]:
    """Just the span records of a parsed trace, in file order."""
    return [record for record in records if record["type"] == "span"]
