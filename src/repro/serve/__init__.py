"""The resilient inference service: ``repro serve`` and its client.

* :mod:`repro.serve.protocol` -- the NDJSON request/response schema shared
  by daemon and client (one record constructor set, hence bit-identical
  streams).
* :mod:`repro.serve.journal` -- the crash-safe journal of accepted-but-
  unfinished requests behind resume.
* :mod:`repro.serve.daemon` -- the daemon: bounded admission, deadlines,
  graceful drain, client-disconnect cancellation.
* :mod:`repro.serve.client` -- ``repro infer --connect`` and the
  in-process fallback that emits the identical record stream.
* :mod:`repro.serve.smoke` -- the end-to-end smoke drill behind
  ``make serve-smoke`` and the CI ``serve-smoke`` job.

See ``docs/serving.md`` for the protocol and lifecycle contract.
"""

from repro.serve.daemon import AdmissionQueue, ServeDaemon
from repro.serve.journal import RequestJournal
from repro.serve.protocol import (
    DONE_STATUSES,
    SERVE_PROTOCOL_VERSION,
    SERVE_RECORD_TYPES,
    ProtocolError,
    ServeRequest,
    parse_request,
    records_for_report,
)

__all__ = [
    "DONE_STATUSES",
    "SERVE_PROTOCOL_VERSION",
    "SERVE_RECORD_TYPES",
    "AdmissionQueue",
    "ProtocolError",
    "RequestJournal",
    "ServeDaemon",
    "ServeRequest",
    "parse_request",
    "records_for_report",
]
