"""Crash-safe journal of accepted-but-unfinished requests.

The daemon appends one NDJSON event per lifecycle transition -- ``accepted``
when a request passes admission control (before the client is told), and
``done`` when its terminal record has been written -- each line flushed and
fsynced, so the set of accepted-without-done requests survives any crash.
A restarted daemon replays :meth:`RequestJournal.unfinished` before
accepting new work; inference is deterministic per (benchmark, seed,
config), so the re-run produces bit-identical results to what the crashed
run would have delivered.

Periodically the journal is *checkpointed*: compacted down to just the
still-unfinished ``accepted`` events, written to a sibling temp file and
atomically ``os.replace``d over the journal.  A failed checkpoint (disk
full, or the ``serve_checkpoint`` fault site firing) leaves the
uncompacted journal in place -- larger, never less correct.  A torn final
line (the crash happened mid-append) is ignored on load; everything before
it is intact by the flush-then-fsync ordering.
"""

from __future__ import annotations

import json
import logging
import os
import threading

from repro.serve.protocol import ServeRequest

log = logging.getLogger("repro.serve")


class RequestJournal:
    """Append-only request journal with atomic checkpoint compaction.

    Appends come from the daemon's reader threads while checkpoints (which
    close and reopen the file) run on the executor thread, so every file
    operation holds one reentrant lock -- reentrant because ``checkpoint``
    reads the pending set through :meth:`unfinished`.
    """

    def __init__(self, path, fault_plan=None):
        self.path = os.fspath(path)
        self.fault_plan = fault_plan
        #: Events appended since the last checkpoint (compaction cadence).
        self.events_since_checkpoint = 0
        self._lock = threading.RLock()
        directory = os.path.dirname(os.path.abspath(self.path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------- append --

    def _append(self, event: dict) -> None:
        with self._lock:
            self._file.write(json.dumps(event, sort_keys=True) + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
            self.events_since_checkpoint += 1

    def record_accepted(self, request: ServeRequest) -> None:
        """Journal an admission; durable before the client sees 'accepted'."""
        self._append({"event": "accepted", "request": request.as_dict()})

    def record_done(self, request_id: str) -> None:
        """Journal a terminal record; the request will not be resumed."""
        self._append({"event": "done", "id": request_id})

    # --------------------------------------------------------- checkpoint --

    def checkpoint(self) -> bool:
        """Compact to the still-unfinished requests; atomic, best-effort.

        Returns whether the compaction happened.  Any failure (including an
        injected ``serve_checkpoint`` fault) is absorbed: the uncompacted
        journal keeps every event, so resume stays correct either way.
        """
        with self._lock:
            pending = self.unfinished()
            temp_path = self.path + ".tmp"
            try:
                if self.fault_plan is not None:
                    from repro.faults import maybe_inject

                    maybe_inject(self.fault_plan, "serve_checkpoint", qualifier=self.path)
                with open(temp_path, "w", encoding="utf-8") as handle:
                    for request in pending:
                        handle.write(
                            json.dumps(
                                {"event": "accepted", "request": request.as_dict()},
                                sort_keys=True,
                            )
                            + "\n"
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                self._file.close()
                os.replace(temp_path, self.path)
                self._file = open(self.path, "a", encoding="utf-8")
                self.events_since_checkpoint = 0
                return True
            except Exception as exc:  # noqa: BLE001 -- journal must never raise
                log.warning(
                    "request journal %s: checkpoint failed (%s: %s); keeping the "
                    "uncompacted journal",
                    self.path,
                    type(exc).__name__,
                    exc,
                )
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                if self._file.closed:
                    self._file = open(self.path, "a", encoding="utf-8")
                return False

    # --------------------------------------------------------------- load --

    def unfinished(self) -> list[ServeRequest]:
        """Accepted-without-done requests, in admission order.

        Tolerates a torn final line (crash mid-append) and skips anything
        undecodable with a warning -- a damaged journal line costs at most
        one lost resume, never a daemon that refuses to start.
        """
        pending: dict[str, ServeRequest] = {}
        try:
            with self._lock, open(self.path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return []
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                if event["event"] == "accepted":
                    data = event["request"]
                    request = ServeRequest(
                        id=data["id"],
                        benchmarks=tuple(data["benchmarks"]),
                        seed=data["seed"],
                        deadline=data["deadline"],
                    )
                    pending[request.id] = request
                elif event["event"] == "done":
                    pending.pop(event["id"], None)
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if number == len(lines):
                    log.info(
                        "request journal %s: ignoring torn final line", self.path
                    )
                else:
                    log.warning(
                        "request journal %s:%d: undecodable event (%s); skipped",
                        self.path,
                        number,
                        exc,
                    )
        return list(pending.values())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()
