"""Client side of the inference service: connect, submit, stream.

``repro infer --connect SOCKET`` goes through :func:`submit`: one request
line up the Unix socket, response records relayed to the output stream as
they arrive -- the first ``result`` record lands while later benchmarks are
still running, which is the point of serving over batching.

When no daemon answers, :func:`run_local` computes the same request
in-process and emits the *same* record stream (both sides render through
:func:`repro.serve.protocol.records_for_report`), so pipelines built on the
NDJSON output cannot tell the difference -- except that ``done.counters``
are all zero, because no serving layer was involved.
"""

from __future__ import annotations

import json
import socket

from repro.serve.protocol import (
    ServeRequest,
    accepted_record,
    done_record,
    encode,
    records_for_report,
)


class ServeUnavailable(ConnectionError):
    """No daemon is answering on the socket (caller may fall back)."""


def submit(
    socket_path,
    request: ServeRequest,
    out,
    connect_timeout: float = 2.0,
) -> dict:
    """Send one request to a live daemon, relaying records to ``out``.

    Every response line is written to ``out`` verbatim (and flushed, to
    preserve the incremental-streaming property through a pipe).  Returns
    the terminal record -- ``done`` or ``rejected`` -- as a dict.  Raises
    :class:`ServeUnavailable` when nothing is listening.
    """
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(connect_timeout)
    try:
        conn.connect(str(socket_path))
    except OSError as exc:
        conn.close()
        raise ServeUnavailable(f"no daemon on {socket_path}: {exc}") from exc
    conn.settimeout(None)
    try:
        conn.sendall((encode(request.as_dict()) + "\n").encode("utf-8"))
        reader = conn.makefile("r", encoding="utf-8")
        for line in reader:
            line = line.rstrip("\n")
            if not line:
                continue
            out.write(line + "\n")
            out.flush()
            record = json.loads(line)
            if record.get("type") in ("done", "rejected"):
                return record
        raise ServeUnavailable(
            f"daemon on {socket_path} hung up before a terminal record"
        )
    finally:
        conn.close()


def run_local(
    request: ServeRequest,
    out,
    jobs: int = 1,
    cache_file=None,
    telemetry=None,
) -> dict:
    """The in-process fallback: same request, same record stream, no daemon.

    Builds the same engine configuration the daemon uses (crash discard on,
    incremental cache flushing when a cache file is given) and streams each
    benchmark's records as its job finalizes.  The request ``deadline`` is
    honoured as the per-job timeout budget, measured from this call.
    """
    from repro.core.engine import CacheStats, EngineJob, InferenceEngine
    from repro.core.sling import SlingConfig
    from repro.telemetry import monotime

    def emit(record: dict) -> None:
        out.write(encode(record) + "\n")
        out.flush()

    started = monotime()
    emit(accepted_record(request.id))
    config = SlingConfig(
        discard_crashed_runs=True,
        persistent_cache=cache_file,
        incremental_flush=cache_file is not None,
        telemetry=telemetry,
    )
    engine = InferenceEngine(jobs=jobs)
    deadline_at = started + request.deadline if request.deadline is not None else None

    def cancel():
        if deadline_at is not None and monotime() > deadline_at:
            return "deadline"
        return None

    def on_report(index, report):
        for record in records_for_report(request.id, report):
            emit(record)

    reports = engine.run(
        [
            EngineJob(
                kind="spec",
                benchmark=name,
                seed=request.seed,
                config=config,
                timeout=request.deadline,
            )
            for name in request.benchmarks
        ],
        on_report=on_report,
        cancel=cancel,
    )
    stats = CacheStats()
    for report in reports:
        stats.merge(report.cache)
    status = "complete"
    if deadline_at is not None and (
        monotime() > deadline_at
        or any(
            (report.error or "").startswith("cancelled: deadline") or report.timed_out
            for report in reports
            if not report.ok
        )
    ):
        status = "deadline_expired"
    record = done_record(
        request.id,
        status,
        jobs=len(reports),
        counters={
            key: value for key, value in stats.as_dict().items() if key.startswith("serve_")
        },
        seconds=monotime() - started,
    )
    emit(record)
    return record
