"""The NDJSON wire protocol of the inference service.

One request per line in, one record per line out -- the same pipeline
idiom as ``jn``-style NDJSON tools, so ``repro infer --connect`` composes
in a shell pipeline.  The protocol is shared verbatim between the daemon
(:mod:`repro.serve.daemon`) and the in-process client fallback
(:mod:`repro.serve.client`): both sides render their streams through
:func:`records_for_report`, which is what makes daemon-served and locally
computed results bit-identical by construction.

Request (client -> daemon), one JSON object per line::

    {"id": "r1", "benchmarks": ["sll/insertFront"], "seed": 0,
     "deadline": 5.0}

``id`` names the request in every response record; ``deadline`` (optional,
seconds from admission) bounds the request's wall clock.  Response records
(daemon -> client), one JSON object per line, all carrying the request
``id``:

``accepted``
    The request passed admission control and was journaled.
``rejected``
    Admission control refused it (``reason``: ``queue full``, ``draining``
    or a parse error); nothing was run and nothing stays journaled (a
    queue-full rejection is journaled before the offer and immediately
    compensated, so a restart never resumes it).
``result``
    One per (function, location) as it resolves: the invariants inferred
    at that location.
``job``
    One per benchmark as its job finalizes: ok/error and validation.
``done``
    Terminal record: ``status`` is ``complete``, ``deadline_expired`` or
    ``cancelled``, plus a serving-counter snapshot.

Records are rendered with sorted keys and no run-dependent fields outside
``done.counters``/``done.seconds``, so two streams for the same request
are byte-comparable after dropping ``done`` (the equivalence suite pins
exactly that).  See ``docs/serving.md`` for the full schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Version stamped into every ``accepted``/``rejected``/``done`` record.
#: Bump on any change a client could misinterpret.
SERVE_PROTOCOL_VERSION = 1

#: Response record types, in lifecycle order.
SERVE_RECORD_TYPES = ("accepted", "rejected", "result", "job", "done")

#: Terminal ``done.status`` values.
DONE_STATUSES = ("complete", "deadline_expired", "cancelled")


class ProtocolError(ValueError):
    """A request line violates the schema (rejected, never crashes)."""


@dataclass(frozen=True)
class ServeRequest:
    """One parsed inference request."""

    id: str
    benchmarks: tuple[str, ...]
    seed: int = 0
    deadline: float | None = None

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "benchmarks": list(self.benchmarks),
            "seed": self.seed,
            "deadline": self.deadline,
        }


def parse_request(line: str) -> ServeRequest:
    """Parse one request line, raising :class:`ProtocolError` on any flaw."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"expected a JSON object, got {type(data).__name__}")
    request_id = data.get("id")
    if not isinstance(request_id, str) or not request_id or "\n" in request_id:
        raise ProtocolError("'id' must be a non-empty string")
    benchmarks = data.get("benchmarks")
    if (
        not isinstance(benchmarks, list)
        or not benchmarks
        or not all(isinstance(name, str) and name for name in benchmarks)
    ):
        raise ProtocolError("'benchmarks' must be a non-empty list of names")
    seed = data.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("'seed' must be an integer")
    deadline = data.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            raise ProtocolError("'deadline' must be a number of seconds")
        if deadline <= 0:
            raise ProtocolError("'deadline' must be positive")
        deadline = float(deadline)
    unknown = set(data) - {"id", "benchmarks", "seed", "deadline"}
    if unknown:
        raise ProtocolError(f"unknown field(s): {sorted(unknown)}")
    return ServeRequest(
        id=request_id, benchmarks=tuple(benchmarks), seed=seed, deadline=deadline
    )


def encode(record: dict) -> str:
    """One record as its canonical wire line (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def accepted_record(request_id: str) -> dict:
    return {"type": "accepted", "id": request_id, "version": SERVE_PROTOCOL_VERSION}


def rejected_record(request_id: str | None, reason: str) -> dict:
    return {
        "type": "rejected",
        "id": request_id,
        "reason": reason,
        "version": SERVE_PROTOCOL_VERSION,
    }


def done_record(
    request_id: str, status: str, jobs: int, counters: dict, seconds: float
) -> dict:
    if status not in DONE_STATUSES:
        raise ValueError(f"unknown done status {status!r} (expected one of {DONE_STATUSES})")
    return {
        "type": "done",
        "id": request_id,
        "status": status,
        "jobs": jobs,
        "counters": counters,
        "seconds": round(seconds, 4),
        "version": SERVE_PROTOCOL_VERSION,
    }


def records_for_report(request_id: str, report) -> list[dict]:
    """The response records of one finalized :class:`EngineReport`.

    One ``result`` record per (function, location) -- entry first, then the
    return locations, then the loop heads, each in specification order --
    followed by the benchmark's ``job`` record.  Every field is a pure
    function of the inference result (no timing, pids or paths), which is
    what makes the daemon's stream and the in-process fallback's stream
    bit-identical for a deterministic workload.
    """
    if not report.ok:
        return [
            {
                "type": "job",
                "id": request_id,
                "benchmark": report.job.benchmark,
                "ok": False,
                "error": report.error,
            }
        ]
    payload = report.payload
    specification = payload.specification

    def result(location: str, invariants) -> dict:
        return {
            "type": "result",
            "id": request_id,
            "benchmark": payload.benchmark,
            "function": payload.function,
            "location": location,
            "invariants": [
                {"formula": invariant.pretty(), "spurious": bool(invariant.spurious)}
                for invariant in invariants
            ],
        }

    records = [result("entry", specification.preconditions)]
    for location, invariants in specification.postconditions.items():
        records.append(result(location, invariants))
    for location, invariants in specification.loop_invariants.items():
        records.append(result(location, invariants))
    records.append(
        {
            "type": "job",
            "id": request_id,
            "benchmark": payload.benchmark,
            "ok": True,
            "validated": specification.validated,
            "unreached": list(specification.unreached_locations),
        }
    )
    return records
