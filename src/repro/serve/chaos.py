"""Chaos scenarios for the serving layer: the daemon under abuse.

Three scenarios, shaped like the engine scenarios of
:mod:`repro.faults.chaos` and dispatched through the same ``repro chaos``
CLI and ``make chaos-smoke`` target:

``queue_overflow``
    Fill a one-slot admission queue while a request is in flight and
    submit one more: it must be rejected immediately (``queue full``),
    the ``serve_rejections`` counter must increment, and everything that
    *was* admitted must still complete.
``deadline_expiry``
    Submit a multi-benchmark request with a deadline shorter than the
    work: the stream must end ``deadline_expired`` carrying whatever
    partial results finished in time, and ``serve_deadline_expiries``
    must increment.
``client_disconnect``
    Hang up mid-stream: the daemon must detect the vanished reader,
    cancel the in-flight request and count it in
    ``serve_client_disconnects`` -- never run a sweep nobody is reading.

Every scenario runs a real daemon (on a background thread, with real Unix
sockets) and ends the same way: the daemon must still be alive and a
follow-up request must stream results **bit-identical** to an in-process
reference run -- abuse may cost the abused request, never the next one.
"""

from __future__ import annotations

import io
import json
import os
import socket
import tempfile
import threading
import time

from repro.faults.chaos import JobRow, ScenarioReport
from repro.serve.client import run_local
from repro.serve.client import submit as client_submit
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import ServeRequest, encode
from repro.telemetry import monotime

#: The long request the scenarios keep in flight: DLL benchmarks are the
#: slowest of the list suites (50-200ms each), so there is always a window
#: to overflow the queue or hang up within.
WORKLOAD = ("dll/concat", "dll/midDelMid", "dll/midDelStar", "dll/insertBack", "dll/append")

#: The follow-up request proving the daemon survived unharmed.
FOLLOWUP = ("sll/insertFront", "sll/append")

_WAIT = 30.0


class _ServeDrill:
    """One scenario's daemon plus the bookkeeping the checks need."""

    def __init__(self, queue_limit: int = 16):
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-chaos-")
        self.socket_path = os.path.join(self._tmp.name, "serve.sock")
        self.daemon = ServeDaemon(self.socket_path, jobs=1, queue_limit=queue_limit)
        self.exit_code: int | None = None

        def host():
            self.exit_code = self.daemon.serve(install_signals=False)

        self._thread = threading.Thread(target=host, daemon=True)
        self._thread.start()
        deadline = monotime() + _WAIT
        while not os.path.exists(self.socket_path):
            if monotime() > deadline:
                raise RuntimeError("serve chaos daemon never bound its socket")
            time.sleep(0.02)

    def counters(self) -> dict:
        with self.daemon._stats_lock:
            return {
                key: value
                for key, value in self.daemon.stats.as_dict().items()
                if key.startswith("serve_")
            }

    def close(self, failures: list[str]) -> None:
        try:
            self.daemon.stop()
            self._thread.join(timeout=_WAIT)
            if self._thread.is_alive():
                failures.append("daemon did not drain after stop()")
            elif self.exit_code != 0:
                failures.append(f"daemon drain exited {self.exit_code}, not 0")
        finally:
            self._tmp.cleanup()


def _connect(socket_path: str) -> tuple[socket.socket, io.TextIOBase]:
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(_WAIT)
    conn.connect(socket_path)
    return conn, conn.makefile("r", encoding="utf-8")


def _send(conn: socket.socket, request: ServeRequest) -> None:
    conn.sendall((encode(request.as_dict()) + "\n").encode("utf-8"))


def _read_until(reader, *types: str) -> list[dict]:
    """Read records until one of ``types`` arrives (inclusive)."""
    records = []
    for line in reader:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        records.append(record)
        if record.get("type") in types:
            return records
    raise RuntimeError(f"stream ended before any of {types} arrived")


def _payload_lines(stream_text: str) -> list[str]:
    return [
        line
        for line in stream_text.splitlines()
        if '"type":"result"' in line or '"type":"job"' in line
    ]


def _followup_rows(drill: _ServeDrill, failures: list[str]) -> list[JobRow]:
    """Submit the follow-up request; its stream must match run_local's."""
    request = ServeRequest(id="followup", benchmarks=FOLLOWUP)
    served_out = io.StringIO()
    terminal = client_submit(drill.socket_path, request, served_out)
    if terminal.get("type") != "done" or terminal.get("status") != "complete":
        failures.append(f"follow-up request did not complete: {terminal}")
    reference_out = io.StringIO()
    run_local(request, reference_out, jobs=1)
    identical = _payload_lines(served_out.getvalue()) == _payload_lines(
        reference_out.getvalue()
    )
    if not identical:
        failures.append("follow-up stream diverged from the in-process reference")
    return [
        JobRow(benchmark=name, ok=True, error=None, identical=identical, counters={})
        for name in request.benchmarks
    ]


def _scenario_queue_overflow(drill: _ServeDrill, failures: list[str]) -> None:
    in_flight = ServeRequest(id="overflow-inflight", benchmarks=WORKLOAD)
    conn_a, reader_a = _connect(drill.socket_path)
    _send(conn_a, in_flight)
    # Wait for the first result: the executor is now busy with this request,
    # so the next admission sits in the (one-slot) queue deterministically.
    _read_until(reader_a, "result")
    conn_b, reader_b = _connect(drill.socket_path)
    _send(conn_b, ServeRequest(id="overflow-queued", benchmarks=FOLLOWUP[:1]))
    accepted = _read_until(reader_b, "accepted", "rejected")[-1]
    if accepted["type"] != "accepted":
        failures.append(f"queued request was not admitted: {accepted}")
    conn_c, reader_c = _connect(drill.socket_path)
    _send(conn_c, ServeRequest(id="overflow-extra", benchmarks=FOLLOWUP[:1]))
    verdict = _read_until(reader_c, "accepted", "rejected")[-1]
    if verdict["type"] != "rejected" or verdict.get("reason") != "queue full":
        failures.append(f"overflow submission was not rejected with 'queue full': {verdict}")
    conn_c.close()
    # Both admitted requests must still run to completion.
    for reader, conn, request_id in (
        (reader_a, conn_a, "overflow-inflight"),
        (reader_b, conn_b, "overflow-queued"),
    ):
        done = _read_until(reader, "done")[-1]
        if done.get("status") != "complete":
            failures.append(f"request {request_id} ended {done.get('status')!r}")
        conn.close()
    counters = drill.counters()
    if counters["serve_rejections"] < 1:
        failures.append("serve_rejections did not increment")
    if counters["serve_queue_high_water"] < 1:
        failures.append("serve_queue_high_water stayed 0 despite a queued request")


def _scenario_deadline_expiry(drill: _ServeDrill, failures: list[str]) -> None:
    request = ServeRequest(id="deadline", benchmarks=WORKLOAD, deadline=0.05)
    conn, reader = _connect(drill.socket_path)
    _send(conn, request)
    records = _read_until(reader, "done")
    conn.close()
    done = records[-1]
    if done.get("status") != "deadline_expired":
        failures.append(f"expected done.status deadline_expired, got {done.get('status')!r}")
    job_records = [record for record in records if record.get("type") == "job"]
    expired = [
        record
        for record in job_records
        if not record.get("ok")
        and str(record.get("error", "")).startswith(("cancelled: deadline", "timeout"))
    ]
    if not expired:
        failures.append("no job was cut off by the deadline (it never bound anything)")
    if drill.counters()["serve_deadline_expiries"] < 1:
        failures.append("serve_deadline_expiries did not increment")


def _scenario_client_disconnect(drill: _ServeDrill, failures: list[str]) -> None:
    request = ServeRequest(id="vanisher", benchmarks=WORKLOAD)
    conn, reader = _connect(drill.socket_path)
    _send(conn, request)
    _read_until(reader, "result")
    # Hang up mid-stream, ungracefully.  shutdown() actually sends the FIN;
    # close() alone would keep the fd alive through the makefile() reader.
    conn.shutdown(socket.SHUT_RDWR)
    reader.close()
    conn.close()
    deadline = monotime() + _WAIT
    while drill.counters()["serve_client_disconnects"] < 1:
        if monotime() > deadline:
            failures.append("serve_client_disconnects never incremented after hangup")
            return
        time.sleep(0.05)


SERVE_SCENARIOS = {
    "queue_overflow": (
        "overflow a one-slot admission queue; the extra submission must be "
        "rejected immediately and everything admitted must still complete",
        _scenario_queue_overflow,
        1,  # queue limit
    ),
    "deadline_expiry": (
        "give a multi-benchmark request a too-short deadline; the stream "
        "must end deadline_expired with the partial results that made it",
        _scenario_deadline_expiry,
        16,
    ),
    "client_disconnect": (
        "hang up mid-stream; the daemon must cancel the abandoned request "
        "and keep serving",
        _scenario_client_disconnect,
        16,
    ),
}


def run_serve_scenario(name: str, seed: int = 0, telemetry=None) -> ScenarioReport:
    """Run one serving-layer scenario; returns an engine-style verdict.

    ``seed``/``telemetry`` are accepted for CLI symmetry with the engine
    scenarios; the drills are seed-free (the daemon's determinism contract
    is per-request) and trace their daemons internally.
    """
    entry = SERVE_SCENARIOS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown serve chaos scenario {name!r} (known: {sorted(SERVE_SCENARIOS)})"
        )
    _, drill_fn, queue_limit = entry
    failures: list[str] = []
    rows: list[JobRow] = []
    counters: dict = {}
    drill = _ServeDrill(queue_limit=queue_limit)
    try:
        try:
            drill_fn(drill, failures)
            rows = _followup_rows(drill, failures)
        except Exception as exc:  # noqa: BLE001 -- a crash is a verdict, not an abort
            failures.append(f"scenario crashed: {type(exc).__name__}: {exc}")
        counters = drill.counters()
    finally:
        drill.close(failures)
    return ScenarioReport(
        scenario=name,
        target=drill.socket_path,
        passed=not failures,
        failures=failures,
        rows=rows,
        totals=counters,
    )
