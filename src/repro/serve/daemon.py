"""The long-lived inference daemon behind ``python -m repro serve``.

One Unix-domain socket, NDJSON in and out (:mod:`repro.serve.protocol`),
one warm :class:`~repro.core.engine.InferenceEngine` shared by every
request -- interned canonical forms, compiled predicate screens and the
persistent cache tier stay hot across requests instead of being rebuilt
per CLI invocation.  The robustness contract:

* **Bounded admission.**  A fixed-capacity FIFO queue; a submission that
  would overflow it is rejected immediately with a structured ``rejected``
  record, never buffered unboundedly.
* **Deadlines.**  A request's optional ``deadline`` (seconds from
  admission) is enforced three ways: each job is stamped, at the moment
  the engine submits it, with the budget still remaining then as its
  in-process alarm timeout, the engine's cancel hook is polled
  between jobs and on every pool poll (in-flight pool jobs are killed
  through the claim-slot machinery), and the terminal record is marked
  ``deadline_expired`` with whatever partial results were streamed.
* **Graceful drain.**  SIGTERM (or SIGINT) stops admission -- new
  submissions get ``rejected: draining`` -- finishes the in-flight
  request, checkpoints the still-queued ones (they are already journaled,
  so a restart re-runs them), flushes and exits 0.
* **Crash-safe resume.**  Admissions are journaled before they are
  acknowledged (:mod:`repro.serve.journal`); a restarted daemon re-runs
  accepted-but-unfinished requests first, appending their record streams
  to ``<journal>.recovered.ndjson`` -- bit-identical to what the crashed
  run would have produced, by the engine's determinism guarantee.
* **Client-disconnect detection.**  A vanished reader (EOF on its
  connection, or a failed record write) cancels its in-flight request
  instead of leaking a running sweep.

Threading: the calling thread (the process main thread, under the CLI)
runs resume and the executor loop -- keeping it the main thread is what
makes ``SIGALRM`` job timeouts and signal-based drain work -- while one
background thread accepts connections and one short-lived thread per
connection reads submissions.  The state shared across threads -- the
admission queue, the counters, the journal -- is lock-guarded; a pending
request's disconnect/done flags are ``threading.Event``s.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.engine import CacheStats, EngineJob, InferenceEngine
from repro.core.sling import SlingConfig
from repro.serve.journal import RequestJournal
from repro.serve.protocol import (
    ProtocolError,
    ServeRequest,
    accepted_record,
    done_record,
    encode,
    parse_request,
    records_for_report,
    rejected_record,
)
from repro.telemetry import monotime

log = logging.getLogger("repro.serve")

#: Default admission-queue capacity (requests, not jobs).
DEFAULT_QUEUE_LIMIT = 16

#: Journal events between checkpoint compactions.
DEFAULT_CHECKPOINT_EVERY = 8

#: Accept-loop poll period; bounds both drain latency and socket teardown.
ACCEPT_POLL_SECONDS = 0.2


class AdmissionQueue:
    """Bounded FIFO with a high-water mark; the admission-control core.

    ``offer`` is atomic accept-or-reject (no blocking producers: backpressure
    is an immediate structured rejection, not a stalled client), ``pop``
    blocks the single consumer with a timeout, and ``high_water`` records
    the deepest the queue ever got (the ``serve_queue_high_water`` counter).
    FIFO order is the admission contract the hypothesis suite pins: items
    pop in exactly the order their offers succeeded.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self.high_water = 0
        self.closed = False
        self._items: deque = deque()
        self._condition = threading.Condition()

    def offer(self, item) -> bool:
        """Append atomically; ``False`` when full or closed (rejected)."""
        with self._condition:
            if self.closed or len(self._items) >= self.limit:
                return False
            self._items.append(item)
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._condition.notify()
            return True

    def pop(self, timeout: float):
        """The oldest item, or ``None`` after ``timeout`` seconds idle."""
        with self._condition:
            if not self._items:
                self._condition.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def close(self) -> list:
        """Stop admitting and return whatever was still queued."""
        with self._condition:
            self.closed = True
            remaining = list(self._items)
            self._items.clear()
            return remaining

    def depth(self) -> int:
        with self._condition:
            return len(self._items)

    def high_water_mark(self) -> int:
        """The high-water mark, read under the queue's lock."""
        with self._condition:
            return self.high_water


class _ClientGone(Exception):
    """The request's client vanished mid-stream (write failed or EOF)."""


class _Connection:
    """One client connection: a locked record writer over the socket."""

    def __init__(self, conn: socket.socket):
        self.conn = conn
        self.lock = threading.Lock()
        self.alive = True

    def write(self, record: dict, fault_plan=None, request_id: str = "") -> None:
        payload = (encode(record) + "\n").encode("utf-8")
        with self.lock:
            if not self.alive:
                raise _ClientGone
            try:
                if fault_plan is not None:
                    from repro.faults import maybe_inject

                    maybe_inject(fault_plan, "serve_client_write", qualifier=request_id)
                self.conn.sendall(payload)
            except Exception as exc:  # noqa: BLE001 -- any failure = client gone
                self.alive = False
                raise _ClientGone from exc

    def close(self) -> None:
        with self.lock:
            self.alive = False
            try:
                self.conn.close()
            except OSError:
                pass


class _FileSink:
    """Record writer used for resumed requests (no client to stream to)."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._file = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict, fault_plan=None, request_id: str = "") -> None:
        self._file.write(encode(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


@dataclass
class _PendingRequest:
    """One admitted request travelling from reader to executor."""

    request: ServeRequest
    sink: object  # _Connection | _FileSink
    enqueued_at: float
    resumed: bool = False
    #: Set by the reader thread on EOF, or by a failed record write; the
    #: executor's cancel hook polls it.  An Event, not a bool: it crosses
    #: from reader to executor thread.
    disconnected: threading.Event = field(default_factory=threading.Event)
    #: Set by the executor once the terminal record is written; the reader
    #: thread checks it on client hang-up to skip cancelling finished work.
    done: threading.Event = field(default_factory=threading.Event)


class ServeDaemon:
    """See the module docstring.  Construct, then call :meth:`serve`."""

    def __init__(
        self,
        socket_path,
        jobs: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        journal_path=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        cache_file=None,
        request_timeout: float | None = None,
        telemetry=None,
        fault_plan=None,
    ):
        self.socket_path = os.fspath(socket_path)
        self.jobs = jobs
        self.journal_path = (
            os.fspath(journal_path) if journal_path is not None else self.socket_path + ".journal"
        )
        self.recovered_path = self.journal_path + ".recovered.ndjson"
        self.checkpoint_every = checkpoint_every
        self.request_timeout = request_timeout
        self.telemetry = telemetry
        self.fault_plan = fault_plan
        self.queue = AdmissionQueue(queue_limit)
        self.engine = InferenceEngine(jobs=jobs, warm_pool=True)
        self.config = SlingConfig(
            discard_crashed_runs=True,
            persistent_cache=cache_file,
            incremental_flush=cache_file is not None,
            telemetry=telemetry,
            fault_plan=fault_plan,
        )
        #: Aggregated counters of everything served (the serve_* fields are
        #: this daemon's own; the rest accumulate from job reports).
        self.stats = CacheStats()
        self._stats_lock = threading.Lock()
        self.journal = RequestJournal(self.journal_path, fault_plan=fault_plan)
        self.tracer = telemetry.tracer() if telemetry is not None else None
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._listener: socket.socket | None = None
        self._connections: list[_Connection] = []
        self._conn_lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle --

    def serve(self, install_signals: bool = True) -> int:
        """Resume, accept and execute until drained; returns the exit code.

        Run this on the process main thread when ``install_signals`` is
        true (SIGTERM/SIGINT drain) or when job timeouts must interrupt
        in-flight inline jobs (``SIGALRM``).  Tests and the chaos harness
        run it on a background thread with ``install_signals=False`` and
        drain via :meth:`stop`.
        """
        previous_handlers = {}
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(
                    signum, lambda *_: self._draining.set()
                )
        try:
            # Bind before resuming: the socket probe in _listen doubles as
            # the exclusivity check, so a second daemon pointed at a live
            # socket fails here without replaying the live daemon's journal.
            self._listen()
            self._resume_journaled()
            accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-serve-accept", daemon=True
            )
            accept_thread.start()
            log.info("serving on %s (queue limit %d)", self.socket_path, self.queue.limit)
            self._executor_loop()
            self._drain()
            accept_thread.join(timeout=2 * ACCEPT_POLL_SECONDS)
            return 0
        finally:
            self._teardown()
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)

    def stop(self) -> None:
        """Programmatic SIGTERM equivalent (thread-hosted daemons)."""
        self._draining.set()

    def _listen(self) -> None:
        if os.path.exists(self.socket_path):
            # A previous daemon's socket file: refuse if it answers, else
            # it is stale (crash leftovers) and safe to replace.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)
            else:
                probe.close()
                raise RuntimeError(f"socket {self.socket_path} already has a live daemon")
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen()
        listener.settimeout(ACCEPT_POLL_SECONDS)
        self._listener = listener

    def _teardown(self) -> None:
        self._stopping.set()
        # Unlink the socket file only if *this* instance bound it
        # (_listener is set right after bind): when _listen refused because
        # a live daemon answered, that daemon's socket must stay reachable.
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        self.journal.close()
        if self.telemetry is not None:
            self.telemetry.merge_segments()
            self.telemetry.close()

    # -------------------------------------------------------------- resume --

    def _resume_journaled(self) -> None:
        """Re-run accepted-but-unfinished requests from a previous life."""
        pending = self.journal.unfinished()
        if not pending:
            return
        log.info(
            "resuming %d journaled request(s) into %s",
            len(pending),
            self.recovered_path,
        )
        sink = _FileSink(self.recovered_path)
        try:
            for request in pending:
                with self._stats_lock:
                    self.stats.serve_requests_resumed += 1
                self._run_request(
                    _PendingRequest(
                        request=request,
                        sink=sink,
                        enqueued_at=monotime(),
                        resumed=True,
                    )
                )
        finally:
            sink.close()

    # ------------------------------------------------------------ admission --

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                if self.fault_plan is not None:
                    from repro.faults import maybe_inject

                    maybe_inject(
                        self.fault_plan, "serve_accept", qualifier=self.socket_path
                    )
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stopping.is_set():
                    return
                continue
            except Exception as exc:  # noqa: BLE001 -- injected accept fault
                log.warning("accept failed (%s: %s); continuing", type(exc).__name__, exc)
                continue
            connection = _Connection(conn)
            with self._conn_lock:
                self._connections.append(connection)
            threading.Thread(
                target=self._reader_loop,
                args=(connection,),
                name="repro-serve-reader",
                daemon=True,
            ).start()

    def _reader_loop(self, connection: _Connection) -> None:
        """Read submissions off one connection until its client hangs up."""
        submitted: list[_PendingRequest] = []
        try:
            reader = connection.conn.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                pending = self._admit(connection, line)
                if pending is not None:
                    submitted.append(pending)
        except (OSError, ValueError):
            pass
        finally:
            # EOF (or a broken read): the client is gone.  Whatever it
            # submitted and has not finished is cancelled, not leaked.
            for pending in submitted:
                if not pending.done.is_set():
                    pending.disconnected.set()
            connection.close()
            with self._conn_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _admit(self, connection: _Connection, line: str) -> _PendingRequest | None:
        """Parse + admission-control one submission; returns it if accepted."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self._safe_write(connection, rejected_record(None, f"bad request: {exc}"))
            with self._stats_lock:
                self.stats.serve_rejections += 1
            return None
        if self._draining.is_set():
            self._safe_write(connection, rejected_record(request.id, "draining"))
            with self._stats_lock:
                self.stats.serve_rejections += 1
            return None
        pending = _PendingRequest(
            request=request, sink=connection, enqueued_at=monotime()
        )
        # Journal *before* the queue: the executor can pop and finish an
        # offered request at any moment, and its 'done' event must land
        # after the 'accepted' one -- and before the client is acknowledged,
        # so a crash cannot lose a request the client saw accepted.
        self.journal.record_accepted(request)
        if not self.queue.offer(pending):
            # Never admitted: compensate so the journal does not resume it.
            self.journal.record_done(request.id)
            self._safe_write(connection, rejected_record(request.id, "queue full"))
            with self._stats_lock:
                self.stats.serve_rejections += 1
            return None
        with self._stats_lock:
            self.stats.serve_requests += 1
            high_water = self.queue.high_water_mark()
            if high_water > self.stats.serve_queue_high_water:
                self.stats.serve_queue_high_water = high_water
        self._safe_write(connection, accepted_record(request.id))
        return pending

    @staticmethod
    def _safe_write(sink, record: dict) -> bool:
        try:
            sink.write(record)
            return True
        except _ClientGone:
            return False

    # ------------------------------------------------------------- executor --

    def _executor_loop(self) -> None:
        while True:
            pending = self.queue.pop(ACCEPT_POLL_SECONDS)
            if self._draining.is_set():
                # A popped-but-unserved request stays journaled as accepted,
                # so the restarted daemon re-runs it (checkpointed, not lost).
                return
            if pending is None:
                continue
            self._run_request(pending)
            if self.journal.events_since_checkpoint >= self.checkpoint_every:
                self.journal.checkpoint()

    def _run_request(self, pending: _PendingRequest) -> None:
        request = pending.request
        started = monotime()
        if self.tracer is not None:
            self.tracer.emit_span(
                "queue_wait",
                request.id,
                ts=pending.enqueued_at,
                dur=started - pending.enqueued_at,
                track="aux",
                parent=self.tracer.current_id,
            )
        span = (
            self.tracer.span(
                "request",
                name=request.id,
                benchmarks=len(request.benchmarks),
                resumed=pending.resumed,
            )
            if self.tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            status, reports = self._execute(pending, started)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        with self._stats_lock:
            for report in reports:
                self.stats.merge(report.cache)
            if status == "deadline_expired":
                self.stats.serve_deadline_expiries += 1
            elif status == "cancelled":
                self.stats.serve_client_disconnects += 1
            counters = {
                key: value
                for key, value in self.stats.as_dict().items()
                if key.startswith("serve_")
            }
        self._safe_write(
            pending.sink,
            done_record(
                request.id,
                status,
                jobs=len(reports),
                counters=counters,
                seconds=monotime() - started,
            ),
        )
        pending.done.set()
        self.journal.record_done(request.id)

    def _execute(self, pending: _PendingRequest, started: float):
        """Run one request's jobs, streaming records; returns (status, reports)."""
        request = pending.request
        deadline_at = (
            pending.enqueued_at + request.deadline if request.deadline is not None else None
        )
        if deadline_at is not None and started >= deadline_at:
            # Expired while queued: nothing runs, every job is reported.
            for name in request.benchmarks:
                self._stream_record(
                    pending,
                    {
                        "type": "job",
                        "id": request.id,
                        "benchmark": name,
                        "ok": False,
                        "error": "cancelled: deadline",
                    },
                )
            return "deadline_expired", []

        def cancel() -> str | None:
            if pending.disconnected.is_set():
                return "client disconnected"
            if deadline_at is not None and monotime() > deadline_at:
                return "deadline"
            return None

        def timeout_for(job: EngineJob) -> float | None:
            # Called by the engine when the job is submitted, so each job of
            # a multi-benchmark request gets only the budget still left at
            # that moment -- not the request-start remainder.  The floor
            # covers the race where the deadline passes between the cancel
            # poll and this stamp: the job then times out immediately.
            timeout = self.request_timeout
            if deadline_at is not None:
                remaining = max(deadline_at - monotime(), 0.001)
                timeout = remaining if timeout is None else min(timeout, remaining)
            return timeout

        def on_report(index: int, report) -> None:
            for record in records_for_report(request.id, report):
                self._stream_record(pending, record, request_id=request.id)

        jobs = [
            EngineJob(kind="spec", benchmark=name, seed=request.seed, config=self.config)
            for name in request.benchmarks
        ]
        reports = self.engine.run(
            jobs, on_report=on_report, cancel=cancel, timeout_for=timeout_for
        )

        errors = [report.error or "" for report in reports if not report.ok]
        if pending.disconnected.is_set() or any(
            error.startswith("cancelled: client disconnected") for error in errors
        ):
            return "cancelled", reports
        if deadline_at is not None and (
            monotime() > deadline_at
            or any(error.startswith("cancelled: deadline") for error in errors)
            or any(report.timed_out for report in reports)
        ):
            return "deadline_expired", reports
        return "complete", reports

    def _stream_record(self, pending: _PendingRequest, record: dict, request_id: str = "") -> None:
        """Write one response record; a failed write cancels the request."""
        try:
            pending.sink.write(record, fault_plan=self.fault_plan, request_id=request_id)
        except _ClientGone:
            pending.disconnected.set()

    # ---------------------------------------------------------------- drain --

    def _drain(self) -> None:
        """Stop admitting, checkpoint the backlog, flush -- then exit 0."""
        drain_started = monotime()
        remaining = self.queue.close()
        # Already journaled as accepted; the checkpoint compacts them into
        # the journal a restarted daemon resumes from.
        self.journal.checkpoint()
        log.info(
            "drained: %d queued request(s) checkpointed for resume", len(remaining)
        )
        if self.tracer is not None:
            self.tracer.emit_span(
                "drain",
                self.socket_path,
                ts=drain_started,
                dur=monotime() - drain_started,
                track="aux",
                parent=self.tracer.current_id,
                checkpointed=len(remaining),
            )
