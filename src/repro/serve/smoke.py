"""End-to-end serve smoke drill: ``python -m repro.serve.smoke``.

The drill behind ``make serve-smoke`` and the CI ``serve-smoke`` job.  It
exercises the daemon the way an operator would -- real subprocesses, real
Unix sockets, real signals -- and asserts the resilience contract:

1. **Incremental streaming.**  ``repro infer --connect`` against a live
   daemon; the first ``result`` record must arrive while the client
   process is still running (streamed, not batched), and the record
   stream must be bit-identical to an in-process run of the same request.
2. **Graceful drain.**  A second request is submitted while the first is
   in flight, then the daemon gets SIGTERM.  It must finish the in-flight
   request, checkpoint the queued one, and exit 0.
3. **Crash-safe resume.**  A restarted daemon (same journal) must re-run
   the checkpointed request into ``<journal>.recovered.ndjson``,
   bit-identical to what a fresh run produces, then drain cleanly again.

Exit status 0 means every check passed.  On failure the work directory
(daemon logs, journal, trace) is kept and its path printed, so CI can
upload it as an artifact.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

from repro.serve.client import run_local
from repro.serve.protocol import ServeRequest, encode
from repro.telemetry import monotime

#: Benchmarks of the drill's first (streamed) request: a fast job first
#: (its records land early) followed by slower DLL jobs, so the first
#: record arrives well before the client exits.
STREAM_BENCHMARKS = ("sll/insertFront", "dll/concat", "dll/midDelStar")

#: The request left queued at SIGTERM and resumed by the restarted daemon.
RESUME_BENCHMARKS = ("sll/reverse", "dll/append")

#: Generous bound on any single wait in the drill.
WAIT_SECONDS = 60.0


class SmokeFailure(AssertionError):
    """One drill check failed (the message says which)."""


def _subprocess_env() -> dict:
    """Child env with this checkout's ``src`` on PYTHONPATH, cwd-independent."""
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _wait_for(predicate, what: str, timeout: float = WAIT_SECONDS) -> None:
    deadline = monotime() + timeout
    while monotime() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise SmokeFailure(f"timed out after {timeout:.0f}s waiting for {what}")


def _payload_lines(lines) -> list[str]:
    """Just the ``result``/``job`` records -- the bit-comparable payload."""
    keep = []
    for line in lines:
        try:
            kind = json.loads(line).get("type")
        except json.JSONDecodeError:
            continue
        if kind in ("result", "job"):
            keep.append(line)
    return keep


def _expected_stream(request: ServeRequest) -> list[str]:
    """The reference record stream: the same request computed in-process."""
    sink = io.StringIO()
    run_local(request, sink, jobs=1)
    return _payload_lines(sink.getvalue().splitlines())


def _start_daemon(python: str, socket_path: str, journal: str, log_path: str, trace: str):
    process = subprocess.Popen(
        [
            python,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--journal",
            journal,
            "--trace-out",
            trace,
        ],
        stdout=open(log_path, "a"),
        stderr=subprocess.STDOUT,
        env=_subprocess_env(),
    )

    def answering() -> bool:
        if process.poll() is not None:
            raise SmokeFailure(
                f"daemon exited with {process.returncode} before answering "
                f"(log: {log_path})"
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.connect(socket_path)
            return True
        except OSError:
            return False
        finally:
            probe.close()

    _wait_for(answering, f"daemon socket {socket_path}")
    return process


def _check_streaming(python: str, socket_path: str, request: ServeRequest) -> None:
    """Drill step 1: --connect streams incrementally and bit-identically."""
    client = subprocess.Popen(
        [python, "-m", "repro", "infer", "--connect", socket_path]
        + [arg for name in request.benchmarks for arg in ("--benchmark", name)]
        + ["--seed", str(request.seed), "--request-id", request.id],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=_subprocess_env(),
        text=True,
    )
    lines = []
    first_result_while_running = False
    for line in client.stdout:
        line = line.rstrip("\n")
        if not line:
            continue
        if '"type":"result"' in line and not any('"type":"result"' in l for l in lines):
            first_result_while_running = client.poll() is None
        lines.append(line)
    client.wait(timeout=WAIT_SECONDS)
    if client.returncode != 0:
        raise SmokeFailure(f"infer --connect exited {client.returncode}")
    if not first_result_while_running:
        raise SmokeFailure(
            "no result record arrived while the client was still running "
            "(stream was batched, not incremental)"
        )
    served = _payload_lines(lines)
    expected = _expected_stream(request)
    if served != expected:
        raise SmokeFailure(
            "daemon-served stream differs from the in-process reference "
            f"({len(served)} vs {len(expected)} payload records)"
        )
    done = json.loads(lines[-1])
    if done["type"] != "done" or done["status"] != "complete":
        raise SmokeFailure(f"unexpected terminal record: {lines[-1]}")
    if done["counters"]["serve_requests"] < 1:
        raise SmokeFailure("serve_requests counter did not increment")


def _submit_raw(socket_path: str, request: ServeRequest) -> socket.socket:
    """Submit a request and wait for 'accepted', keeping the socket open."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(socket_path)
    conn.sendall((encode(request.as_dict()) + "\n").encode("utf-8"))
    reader = conn.makefile("r", encoding="utf-8")
    line = reader.readline()
    record = json.loads(line)
    if record.get("type") != "accepted":
        raise SmokeFailure(f"expected an accepted record, got: {line.strip()}")
    return conn


def _check_drain_and_resume(
    python: str, workdir: str, socket_path: str, journal: str
) -> None:
    """Drill steps 2+3: SIGTERM drain, then restart-and-resume."""
    log_path = os.path.join(workdir, "daemon.log")
    trace = os.path.join(workdir, "trace.ndjson")
    daemon = _start_daemon(python, socket_path, journal, log_path, trace)

    in_flight = ServeRequest(id="drain-inflight", benchmarks=STREAM_BENCHMARKS)
    queued = ServeRequest(id="drain-queued", benchmarks=RESUME_BENCHMARKS)
    conn_a = _submit_raw(socket_path, in_flight)
    conn_b = _submit_raw(socket_path, queued)
    daemon.send_signal(signal.SIGTERM)
    try:
        daemon.wait(timeout=WAIT_SECONDS)
    except subprocess.TimeoutExpired:
        daemon.kill()
        raise SmokeFailure("daemon did not drain within the wait budget")
    finally:
        conn_a.close()
        conn_b.close()
    if daemon.returncode != 0:
        raise SmokeFailure(
            f"drain exited {daemon.returncode}, not 0 (log: {log_path})"
        )
    if not os.path.exists(journal):
        raise SmokeFailure("drain left no journal behind")

    # Restart on the same journal: the queued request must be resumed into
    # the recovered stream, bit-identical to a fresh in-process run.
    recovered_path = journal + ".recovered.ndjson"
    expected = _expected_stream(queued)
    daemon = _start_daemon(python, socket_path, journal, log_path, trace)

    def recovered() -> bool:
        if not os.path.exists(recovered_path):
            return False
        with open(recovered_path, encoding="utf-8") as handle:
            return len(_payload_lines(handle.read().splitlines())) >= len(expected)

    try:
        _wait_for(recovered, f"resumed stream in {recovered_path}")
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=WAIT_SECONDS)
    if daemon.returncode != 0:
        raise SmokeFailure(f"post-resume drain exited {daemon.returncode}")
    with open(recovered_path, encoding="utf-8") as handle:
        resumed = _payload_lines(handle.read().splitlines())
    if resumed != expected:
        raise SmokeFailure(
            "resumed stream differs from the in-process reference "
            f"({len(resumed)} vs {len(expected)} payload records)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="working directory (kept on failure; default: a temp dir)",
    )
    parser.add_argument("--keep", action="store_true", help="keep the workdir even on success")
    arguments = parser.parse_args(argv)

    python = sys.executable
    workdir = arguments.workdir or tempfile.mkdtemp(prefix="repro-serve-smoke-")
    os.makedirs(workdir, exist_ok=True)
    socket_path = os.path.join(workdir, "repro.sock")
    journal = os.path.join(workdir, "repro.journal")
    failed = False
    try:
        print(f"# serve smoke: workdir {workdir}", file=sys.stderr)
        daemon = _start_daemon(
            python,
            socket_path,
            journal,
            os.path.join(workdir, "daemon.log"),
            os.path.join(workdir, "trace.ndjson"),
        )
        try:
            request = ServeRequest(id="smoke-stream", benchmarks=STREAM_BENCHMARKS)
            _check_streaming(python, socket_path, request)
            print("# serve smoke: incremental streaming OK", file=sys.stderr)
        finally:
            daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=WAIT_SECONDS)
        if daemon.returncode != 0:
            raise SmokeFailure(f"idle drain exited {daemon.returncode}")
        print("# serve smoke: idle SIGTERM drain OK (exit 0)", file=sys.stderr)
        _check_drain_and_resume(python, workdir, socket_path, journal)
        print("# serve smoke: mid-request drain + resume OK", file=sys.stderr)
    except SmokeFailure as failure:
        failed = True
        print(f"serve smoke FAILED: {failure}", file=sys.stderr)
        print(f"artifacts kept in {workdir}", file=sys.stderr)
        return 1
    finally:
        if not failed and not arguments.keep and arguments.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)
    print("serve smoke: all checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
