"""Generators that build concrete data structures inside a runtime heap.

Section 5.2 of the paper explains the test-input protocol: each program is
run on the empty structure plus randomly generated structures of a fixed
size (10).  These helpers construct those inputs directly in a
:class:`~repro.lang.heap.RuntimeHeap` and return the root address(es), so a
benchmark's test cases are small closures of the form
``lambda heap: [make_dll(heap, rng, 10), make_dll(heap, rng, 10)]``.

All generators take an explicit :class:`random.Random` so test inputs are
reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.lang.heap import RuntimeHeap

#: Type of the per-structure generator callables used by the benchmarks.
StructureGenerator = Callable[[RuntimeHeap, random.Random, int], int]


# ---------------------------------------------------------------------------
# Linked lists
# ---------------------------------------------------------------------------


def make_sll(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A nil-terminated singly-linked list of ``SllNode`` cells."""
    head = 0
    for _ in range(size):
        head = heap.alloc("SllNode", {"next": head})
    return head


def make_sll_data(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A nil-terminated singly-linked list of ``SNode`` cells with random data."""
    head = 0
    for _ in range(size):
        head = heap.alloc("SNode", {"next": head, "data": rng.randrange(0, 100)})
    return head


def make_sorted_sll(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """An ascending sorted singly-linked list of ``SNode`` cells."""
    values = sorted(rng.randrange(0, 100) for _ in range(size))
    head = 0
    for value in reversed(values):
        head = heap.alloc("SNode", {"next": head, "data": value})
    return head


def make_glib_sll(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A glib-style singly-linked list of ``GSNode`` cells with random data."""
    head = 0
    for _ in range(size):
        head = heap.alloc("GSNode", {"next": head, "data": rng.randrange(0, 100)})
    return head


def make_dll(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A nil-terminated doubly-linked list of ``DllNode`` cells."""
    return _make_doubly_linked(heap, size, "DllNode", with_data=False, rng=rng)


def make_glib_dll(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A glib-style doubly-linked list of ``GNode`` cells with random data."""
    return _make_doubly_linked(heap, size, "GNode", with_data=True, rng=rng)


def make_mem_chunk_list(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A doubly-linked list of ``MemChunk`` cells with random sizes."""
    if size == 0:
        return 0
    nodes = [
        heap.alloc("MemChunk", {"size": rng.choice([16, 32, 64, 128, 256])})
        for _ in range(size)
    ]
    _link_doubly(heap, nodes)
    return nodes[0]


def _make_doubly_linked(
    heap: RuntimeHeap, size: int, type_name: str, with_data: bool, rng: random.Random
) -> int:
    if size == 0:
        return 0
    nodes = []
    for _ in range(size):
        inits = {"data": rng.randrange(0, 100)} if with_data else {}
        nodes.append(heap.alloc(type_name, inits))
    _link_doubly(heap, nodes)
    return nodes[0]


def _link_doubly(heap: RuntimeHeap, nodes: Sequence[int]) -> None:
    for index, address in enumerate(nodes):
        heap.write(address, "next", nodes[index + 1] if index + 1 < len(nodes) else 0)
        heap.write(address, "prev", nodes[index - 1] if index > 0 else 0)


def make_circular_list(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A circular singly-linked list of ``CNode`` cells (last node points to the head)."""
    if size == 0:
        return 0
    nodes = [
        heap.alloc("CNode", {"data": rng.randrange(0, 100)}) for _ in range(size)
    ]
    for index, address in enumerate(nodes):
        heap.write(address, "next", nodes[(index + 1) % len(nodes)])
    return nodes[0]


def make_nested_list(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A list of ``NlNode`` cells, each owning a small singly-linked child list."""
    head = 0
    for _ in range(size):
        child = make_sll(heap, rng, rng.randrange(0, 4))
        head = heap.alloc("NlNode", {"next": head, "child": child})
    return head


def make_queue(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """An OpenBSD-style queue: a ``Queue`` header plus a chain of ``QNode`` cells."""
    nodes = [heap.alloc("QNode") for _ in range(size)]
    for index, address in enumerate(nodes):
        heap.write(address, "next", nodes[index + 1] if index + 1 < len(nodes) else 0)
    head = nodes[0] if nodes else 0
    tail = nodes[-1] if nodes else 0
    return heap.alloc("Queue", {"head": head, "tail": tail})


# ---------------------------------------------------------------------------
# Trees
# ---------------------------------------------------------------------------


def make_tree(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A random binary tree of ``TNode`` cells with ``size`` nodes."""
    if size == 0:
        return 0
    left_size = rng.randrange(0, size)
    left = make_tree(heap, rng, left_size)
    right = make_tree(heap, rng, size - 1 - left_size)
    return heap.alloc("TNode", {"left": left, "right": right})


def make_sw_tree(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A random binary tree of unmarked ``SwNode`` cells (Schorr-Waite input)."""
    if size == 0:
        return 0
    left_size = rng.randrange(0, size)
    left = make_sw_tree(heap, rng, left_size)
    right = make_sw_tree(heap, rng, size - 1 - left_size)
    return heap.alloc("SwNode", {"left": left, "right": right, "mark": 0})


def make_bst(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A binary search tree of ``BstNode`` cells over distinct random keys."""
    root = 0
    keys = rng.sample(range(0, 1000), size)
    for key in keys:
        root = _bst_insert(heap, root, key)
    return root


def _bst_insert(heap: RuntimeHeap, root: int, key: int) -> int:
    if root == 0:
        return heap.alloc("BstNode", {"data": key})
    if key < heap.read(root, "data"):
        heap.write(root, "left", _bst_insert(heap, heap.read(root, "left"), key))
    else:
        heap.write(root, "right", _bst_insert(heap, heap.read(root, "right"), key))
    return root


def make_avl(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A height-balanced AVL tree of ``AvlNode`` cells with correct height fields."""
    keys = sorted(rng.sample(range(0, 1000), size))
    return _avl_from_sorted(heap, keys)


def _avl_from_sorted(heap: RuntimeHeap, keys: Sequence[int]) -> int:
    if not keys:
        return 0
    middle = len(keys) // 2
    left = _avl_from_sorted(heap, keys[:middle])
    right = _avl_from_sorted(heap, keys[middle + 1 :])
    height = 1 + max(_avl_height(heap, left), _avl_height(heap, right))
    return heap.alloc(
        "AvlNode", {"left": left, "right": right, "data": keys[middle], "height": height}
    )


def _avl_height(heap: RuntimeHeap, node: int) -> int:
    return 0 if node == 0 else heap.read(node, "height")


def make_max_heap_tree(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A max-heap-ordered binary tree of ``PNode`` cells (priority tree)."""
    values = sorted((rng.randrange(0, 1000) for _ in range(size)), reverse=True)
    return _pheap_from_sorted(heap, values)


def _pheap_from_sorted(heap: RuntimeHeap, values: Sequence[int]) -> int:
    if not values:
        return 0
    # The largest value becomes the root; remaining values are split between
    # subtrees, preserving the heap order because they are all smaller.
    rest = values[1:]
    middle = len(rest) // 2
    left = _pheap_from_sorted(heap, rest[:middle])
    right = _pheap_from_sorted(heap, rest[middle:])
    return heap.alloc("PNode", {"left": left, "right": right, "data": values[0]})


def make_red_black_tree(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A valid red-black tree of ``RbNode`` cells (0 = black, 1 = red)."""
    keys = sorted(rng.sample(range(0, 1000), size))
    root = _rbt_from_sorted(heap, keys, _perfect_black_height(size))
    if root != 0:
        heap.write(root, "color", 0)
    return root


def _perfect_black_height(size: int) -> int:
    height = 0
    while (1 << (height + 1)) - 1 <= size:
        height += 1
    return max(height, 1)


def _rbt_from_sorted(heap: RuntimeHeap, keys: Sequence[int], black_budget: int) -> int:
    """Build a balanced tree and colour the deepest over-full levels red."""
    if not keys:
        return 0
    middle = len(keys) // 2
    depth_is_black = black_budget > 0
    left = _rbt_from_sorted(heap, keys[:middle], black_budget - 1)
    right = _rbt_from_sorted(heap, keys[middle + 1 :], black_budget - 1)
    color = 0 if depth_is_black else 1
    # Red nodes must have black children: when this node is red, repaint the
    # children black (they are leaves at this depth by construction).
    if color == 1:
        for child in (left, right):
            if child != 0:
                heap.write(child, "color", 0)
    return heap.alloc("RbNode", {"left": left, "right": right, "data": keys[middle], "color": color})


def make_binomial_heap(heap: RuntimeHeap, rng: random.Random, size: int) -> int:
    """A forest of binomial trees (child/sibling representation) of ``size`` nodes."""
    roots: list[int] = []
    remaining = size
    order = 0
    while remaining > 0:
        if remaining & 1:
            roots.append(_binomial_tree(heap, rng, order))
        remaining >>= 1
        order += 1
    head = 0
    for root in reversed(roots):
        heap.write(root, "sibling", head)
        head = root
    return head


def _binomial_tree(heap: RuntimeHeap, rng: random.Random, order: int) -> int:
    node = heap.alloc(
        "BinNode", {"degree": order, "data": rng.randrange(0, 1000)}
    )
    child_head = 0
    for child_order in range(order - 1, -1, -1):
        child = _binomial_tree(heap, rng, child_order)
        heap.write(child, "sibling", child_head)
        child_head = child
    heap.write(node, "child", child_head)
    return node
