"""Static-analysis baselines used for the Table 2 comparison."""

from repro.baselines.s2 import S2Analyzer, S2Result

__all__ = ["S2Analyzer", "S2Result"]
