"""A simplified stand-in for the S2 static shape analyser (Table 2 baseline).

The paper compares SLING against S2 (Le et al., CAV 2014), a static analyser
that uses second-order bi-abduction to infer shape specifications.  A
faithful re-implementation of S2 is far outside the scope of this
reproduction; what Table 2 needs is the *capability profile* the paper
describes:

* S2 succeeds on simple recursive programs over singly-linked lists and
  binary trees (it finds the documented specification);
* it does not infer invariants at arbitrary locations -- only whole-function
  specifications and loop invariants;
* it struggles or produces much weaker results on doubly-linked lists with
  back-pointer updates, circular lists, nested/custom structures, programs
  mixing several structures, data-sensitive (sorted / balanced / heap
  ordered) properties and loop-heavy code over such structures;
* it diverges on a few programs (the paper mentions the GRASShopper
  ``concat`` functions).

:class:`S2Analyzer` implements that profile as a *static capability
analysis*: it inspects the heaplang AST of a benchmark, determines which
language and data-structure features the program exercises, and decides per
documented property whether the simplified bi-abduction fragment covers it.
DESIGN.md documents this substitution; the resulting Table 2 reproduces the
qualitative structure of the paper's comparison (SLING-only >> S2-only)
without claiming to re-implement S2's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchsuite.registry import BenchmarkProgram, DocumentedProperty
from repro.lang.ast import (
    Alloc,
    BinOp,
    Call,
    Expr,
    FieldAccess,
    Free,
    Function,
    If,
    Label,
    Program,
    Return,
    Stmt,
    Store,
    UnOp,
    While,
)

#: Structure types inside the fragment the simplified bi-abduction handles:
#: singly-linked list cells and plain binary tree cells.
_SIMPLE_TYPES = {"SllNode", "SNode", "GSNode", "TNode", "BstNode"}

#: Predicates whose documented properties require data-sensitive reasoning
#: (sortedness, balance, heap order) that the baseline does not track.
_DATA_SENSITIVE_PREDICATES = {"sls", "slseg", "bst", "avl", "pheap", "rbt", "binheap"}


@dataclass
class S2Features:
    """Feature profile of a benchmark program, extracted from its AST."""

    struct_types: set[str] = field(default_factory=set)
    has_loops: bool = False
    has_recursion: bool = False
    writes_prev_pointers: bool = False
    uses_free: bool = False
    multiple_structures: bool = False
    statement_count: int = 0


@dataclass
class S2Result:
    """Per-benchmark outcome of the baseline."""

    benchmark: str
    supported: bool
    diverged: bool
    found_properties: list[DocumentedProperty] = field(default_factory=list)
    missed_properties: list[DocumentedProperty] = field(default_factory=list)

    @property
    def found_count(self) -> int:
        return len(self.found_properties)


class S2Analyzer:
    """Decide, per documented property, whether the S2-like baseline finds it."""

    def analyze(self, benchmark: BenchmarkProgram) -> S2Result:
        """Run the capability analysis on one benchmark."""
        features = self._extract_features(benchmark.program)
        diverged = self._diverges(benchmark, features)
        result = S2Result(benchmark=benchmark.name, supported=False, diverged=diverged)
        if diverged:
            result.missed_properties = list(benchmark.documented)
            return result

        supported = self._fragment_supported(benchmark, features)
        result.supported = supported
        for documented in benchmark.documented:
            if supported and self._property_supported(documented, features):
                result.found_properties.append(documented)
            else:
                result.missed_properties.append(documented)
        return result

    # ------------------------------------------------------------------ internals --

    def _extract_features(self, program: Program) -> S2Features:
        features = S2Features()
        for function in program.functions.values():
            features.statement_count += function.statement_count()
            self._scan_statements(function.body, function, features)
        features.multiple_structures = len(features.struct_types) > 1
        return features

    def _scan_statements(self, stmts, function: Function, features: S2Features) -> None:
        for stmt in stmts:
            if isinstance(stmt, While):
                features.has_loops = True
                self._scan_statements(stmt.body, function, features)
            elif isinstance(stmt, If):
                self._scan_statements(stmt.then, function, features)
                self._scan_statements(stmt.els, function, features)
            elif isinstance(stmt, Alloc):
                features.struct_types.add(stmt.type_name)
            elif isinstance(stmt, Store):
                if stmt.field in ("prev",):
                    features.writes_prev_pointers = True
                self._scan_expr(stmt.obj, function, features)
                self._scan_expr(stmt.expr, function, features)
            elif isinstance(stmt, Free):
                features.uses_free = True
            elif isinstance(stmt, Return) and stmt.expr is not None:
                self._scan_expr(stmt.expr, function, features)
            elif isinstance(stmt, Label):
                continue
            if hasattr(stmt, "expr") and isinstance(getattr(stmt, "expr"), Expr):
                self._scan_expr(stmt.expr, function, features)
        # Parameter types also contribute structure types.
        for _, type_name in function.params:
            if type_name.endswith("*"):
                features.struct_types.add(type_name[:-1])

    def _scan_expr(self, expr: Expr, function: Function, features: S2Features) -> None:
        if isinstance(expr, Call):
            if expr.func == function.name:
                features.has_recursion = True
            for arg in expr.args:
                self._scan_expr(arg, function, features)
        elif isinstance(expr, FieldAccess):
            self._scan_expr(expr.obj, function, features)
        elif isinstance(expr, BinOp):
            self._scan_expr(expr.left, function, features)
            self._scan_expr(expr.right, function, features)
        elif isinstance(expr, UnOp):
            self._scan_expr(expr.operand, function, features)

    def _diverges(self, benchmark: BenchmarkProgram, features: S2Features) -> bool:
        """The paper reports S2 hanging on the GRASShopper concat programs."""
        return benchmark.name.startswith("gh_") and benchmark.name.endswith("/concat")

    def _fragment_supported(self, benchmark: BenchmarkProgram, features: S2Features) -> bool:
        if benchmark.has_bug:
            # Static analysis does not need traces; buggy programs are still
            # analysable, but their broken shapes fall outside the fragment.
            return False
        if not features.struct_types <= _SIMPLE_TYPES:
            return False
        if features.writes_prev_pointers:
            return False
        if features.multiple_structures:
            return False
        return True

    def _property_supported(self, documented: DocumentedProperty, features: S2Features) -> bool:
        description = documented.description.lower()
        if any(pred in description for pred in _DATA_SENSITIVE_PREDICATES):
            # Sortedness / balance / heap-order facts are outside the
            # simplified fragment (S2 has no arithmetic reasoning either,
            # matching the paper's characterisation of FBInfer-style tools).
            if "bst" in description or "sls" in description or "avl" in description:
                return False
        if documented.kind == "loop" and features.has_loops and features.multiple_structures:
            return False
        if documented.kind == "loop" and not features.has_recursion and features.has_loops:
            # Loop invariants over simple list traversals are within reach.
            return True
        if documented.kind == "spec" and features.has_recursion:
            # Whole-function specs of simple recursive programs: the sweet
            # spot the paper credits S2 with.
            return True
        if documented.kind == "spec" and not features.has_loops:
            return True
        return False
