"""Deterministic fault injection and chaos scenarios (see ``plan.py``).

Only the plan/injector layer is exported here: the engine imports this
package at module load, and the chaos runner (:mod:`repro.faults.chaos`)
imports the engine -- keeping it a submodule import breaks the cycle.
"""

from repro.faults.plan import (
    FAULT_ACTIONS,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    backoff_delays,
    enable_lethal_faults,
    injection_count,
    injector_for,
    lethal_faults_enabled,
    maybe_inject,
    reset_injector,
    set_current_attempt,
)

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "backoff_delays",
    "enable_lethal_faults",
    "injection_count",
    "injector_for",
    "lethal_faults_enabled",
    "maybe_inject",
    "reset_injector",
    "set_current_attempt",
]
