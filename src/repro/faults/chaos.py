"""Named chaos scenarios and the harness that verifies the resilience contract.

Each :class:`ChaosScenario` packages one fault plan (parameterized by a
target benchmark), the engine settings it needs, and the scenario-specific
expectations.  :func:`run_scenario` runs the Table 1 smoke workload twice --
once fault-free inline as the reference, once under the scenario -- and
checks:

* the generic contract: every job that reports ``ok`` produced invariants
  **bit-identical** to the fault-free reference (healing may change *how*
  a result was computed, never *what* was computed), and the plan provably
  fired (injections or healing counters are non-zero);
* the scenario's own expectations (e.g. ``worker_kill``: all jobs ok,
  ``workers_respawned >= 1``, zero ``worker lost`` reports).

This module is what ``repro chaos`` and ``make chaos-smoke`` drive; the
scenarios double as the integration fixtures of ``tests/faults/``.
See ``docs/resilience.md`` for the taxonomy and policies being exercised.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.engine import EngineJob, InferenceEngine
from repro.core.sling import SlingConfig
from repro.faults.plan import FaultPlan, FaultRule, reset_injector

#: Counters aggregated per job row and summed into the scenario totals.
COUNTER_FIELDS = (
    "jobs_retried",
    "workers_respawned",
    "jobs_poisoned",
    "pool_rebuilds",
    "degraded_sequential",
    "faults_injected",
    "disk_load_errors",
)

#: Default smoke workload: the first two programs of each list category
#: (same shape as ``make smoke``'s ``table1 --category SLL --limit 2``).
DEFAULT_CATEGORIES = ("SLL", "DLL")
DEFAULT_LIMIT = 2


@dataclass
class JobRow:
    """One benchmark's outcome under a scenario."""

    benchmark: str
    ok: bool
    error: str | None
    identical: bool | None  # vs. the fault-free reference; None if not ok
    counters: dict[str, int]

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "ok": self.ok,
            "error": self.error,
            "identical": self.identical,
            **self.counters,
        }


@dataclass
class ScenarioReport:
    """The verdict of one :func:`run_scenario` call."""

    scenario: str
    target: str
    passed: bool
    failures: list[str]
    rows: list[JobRow]
    totals: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "target": self.target,
            "passed": self.passed,
            "failures": self.failures,
            "totals": self.totals,
            "jobs": [row.as_dict() for row in self.rows],
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"{self.scenario}: {verdict} (target {self.target})"]
        for row in self.rows:
            status = "ok" if row.ok else f"failed: {row.error}"
            extras = {k: v for k, v in row.counters.items() if v}
            suffix = f"  {extras}" if extras else ""
            lines.append(f"  {row.benchmark:24s} {status}{suffix}")
        for failure in self.failures:
            lines.append(f"  !! {failure}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault plan plus the contract it must uphold."""

    name: str
    description: str
    build_plan: Callable[[str, int], FaultPlan]
    check: Callable[[ScenarioReport], list[str]]
    jobs: int = 4
    max_retries: int = 2
    retry_timeouts: bool = False
    job_timeout: float | None = None
    needs_cache: bool = False
    #: Whether jobs the scenario leaves failed are tolerated by the generic
    #: all-ok expectation (the poison scenario *wants* one failed job).
    expect_failures: bool = False


def _expect(report: ScenarioReport, condition: bool, message: str) -> None:
    if not condition:
        report.failures.append(message)


def _check_worker_kill(report: ScenarioReport) -> list[str]:
    failures: list[str] = []
    respawned = report.totals["workers_respawned"]
    if respawned < 1:
        failures.append(f"expected workers_respawned >= 1, got {respawned}")
    lost = [row.benchmark for row in report.rows if row.error and "worker lost" in row.error]
    if lost:
        failures.append(f"jobs wrongly reported 'worker lost': {lost}")
    target_row = next(row for row in report.rows if row.benchmark == report.target)
    if target_row.counters["jobs_retried"] < 1:
        failures.append(f"target {report.target} was never retried")
    return failures


def _check_job_hang(report: ScenarioReport) -> list[str]:
    failures: list[str] = []
    target_row = next(row for row in report.rows if row.benchmark == report.target)
    if target_row.counters["jobs_retried"] < 1:
        failures.append(f"hung target {report.target} was never retried after its timeout")
    return failures


def _check_cache_fault(report: ScenarioReport) -> list[str]:
    failures: list[str] = []
    if report.totals["faults_injected"] < 1:
        failures.append("no cache fault was injected (plan never fired)")
    if report.totals["disk_load_errors"] < 1:
        failures.append("injected cache fault was not absorbed into disk_load_errors")
    return failures


def _check_poison(report: ScenarioReport) -> list[str]:
    failures: list[str] = []
    target_row = next(row for row in report.rows if row.benchmark == report.target)
    if target_row.ok:
        failures.append(f"poison target {report.target} unexpectedly succeeded")
    elif not (target_row.error or "").startswith("poisoned"):
        failures.append(f"poison target failed with {target_row.error!r}, expected 'poisoned...'")
    if report.totals["jobs_poisoned"] != 1:
        failures.append(f"expected jobs_poisoned == 1, got {report.totals['jobs_poisoned']}")
    others = [row for row in report.rows if row.benchmark != report.target]
    not_ok = [row.benchmark for row in others if not row.ok]
    if not_ok:
        failures.append(f"non-target jobs failed alongside the poison job: {not_ok}")
    return failures


SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="worker_kill",
            description=(
                "kill the worker running the target benchmark (first attempt "
                "only); the pool must heal and retry exactly that job"
            ),
            build_plan=lambda target, seed: FaultPlan(
                rules=(FaultRule("job_exec", "exit", match=target, attempt=0),),
                seed=seed,
            ),
            check=_check_worker_kill,
        ),
        ChaosScenario(
            name="job_hang",
            description=(
                "hang the target benchmark past its timeout (first attempt "
                "only); with retry_timeouts the retry must succeed"
            ),
            build_plan=lambda target, seed: FaultPlan(
                rules=(
                    FaultRule("job_exec", "hang", match=target, attempt=0, seconds=30.0),
                ),
                seed=seed,
            ),
            check=_check_job_hang,
            retry_timeouts=True,
            job_timeout=5.0,
        ),
        ChaosScenario(
            name="cache_corrupt",
            description=(
                "corrupt the persistent cache mid-run (second sqlite read); "
                "the store must absorb it and the sweep must finish cold"
            ),
            build_plan=lambda target, seed: FaultPlan(
                rules=(FaultRule("cache_read", "corrupt", at=2),),
                seed=seed,
            ),
            check=_check_cache_fault,
            jobs=1,
            needs_cache=True,
        ),
        ChaosScenario(
            name="disk_full",
            description=(
                "fail a persistent-cache write with a disk-full error; the "
                "flush must degrade without touching the in-memory results"
            ),
            build_plan=lambda target, seed: FaultPlan(
                rules=(FaultRule("cache_write", "disk_full"),),
                seed=seed,
            ),
            check=_check_cache_fault,
            jobs=1,
            needs_cache=True,
        ),
        ChaosScenario(
            name="poison",
            description=(
                "kill every worker that runs the target benchmark; after two "
                "kills the job must be quarantined, never fed a third worker"
            ),
            build_plan=lambda target, seed: FaultPlan(
                rules=(FaultRule("job_exec", "exit", match=target),),
                seed=seed,
            ),
            check=_check_poison,
            expect_failures=True,
        ),
    )
}


def scenario_catalog() -> dict[str, str]:
    """Every runnable scenario name -> description, engine and serve alike.

    The serve scenarios live in :mod:`repro.serve.chaos` (imported lazily:
    the serving layer must stay un-imported for engine-only chaos runs) but
    dispatch through the same :func:`run_scenario` entry point.
    """
    from repro.serve.chaos import SERVE_SCENARIOS

    catalog = {name: SCENARIOS[name].description for name in sorted(SCENARIOS)}
    for name in sorted(SERVE_SCENARIOS):
        catalog[name] = SERVE_SCENARIOS[name][0]
    return catalog


def select_workload(
    categories: Sequence[str] | None = None, limit: int | None = None
) -> list[str]:
    """Benchmark names of the smoke workload, in registry order."""
    from repro.benchsuite.registry import benchmarks_by_category

    categories = tuple(categories) if categories else DEFAULT_CATEGORIES
    limit = DEFAULT_LIMIT if limit is None else limit
    names: list[str] = []
    for category, benchmarks in benchmarks_by_category().items():
        if category not in categories:
            continue
        names.extend(benchmark.name for benchmark in benchmarks[:limit])
    if not names:
        raise ValueError(f"no benchmarks selected for categories {categories!r}")
    return names


def invariant_fingerprint(specification) -> str:
    """A stable digest of a specification's invariants (order-independent
    within a location, location-ordered overall) for bit-identity checks."""
    if specification is None:
        return "no-spec"
    rendered = sorted(
        (inv.location, inv.pretty(), inv.spurious)
        for inv in specification.all_invariants()
    )
    payload = json.dumps(rendered, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def _payload_fingerprint(report) -> str:
    return invariant_fingerprint(getattr(report.payload, "specification", None))


def _run_sweep(benchmarks, config, seed, jobs, **engine_kwargs):
    engine = InferenceEngine(jobs=jobs, **engine_kwargs)
    return engine.run(
        [
            EngineJob(kind="table1", benchmark=name, seed=seed, config=config)
            for name in benchmarks
        ]
    )


def run_scenario(
    name: str,
    categories: Sequence[str] | None = None,
    limit: int | None = None,
    jobs: int | None = None,
    seed: int = 0,
    telemetry=None,
) -> ScenarioReport:
    """Run one named scenario over the smoke workload; returns its verdict.

    The fault plan targets the *second* benchmark of the workload (so the
    healing machinery also has unaffected jobs to keep intact), and the
    fault-free inline reference sweep supplies the invariants every ok job
    must reproduce bit-identically.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        from repro.serve.chaos import SERVE_SCENARIOS, run_serve_scenario

        if name in SERVE_SCENARIOS:
            return run_serve_scenario(name, seed=seed, telemetry=telemetry)
        raise ValueError(
            f"unknown chaos scenario {name!r} (known: {sorted(scenario_catalog())})"
        )
    benchmarks = select_workload(categories, limit)
    target = benchmarks[1] if len(benchmarks) > 1 else benchmarks[0]
    plan = scenario.build_plan(target, seed)

    reference = _run_sweep(benchmarks, SlingConfig(), seed, jobs=1)
    broken_reference = [r.job.benchmark for r in reference if not r.ok]
    if broken_reference:
        raise RuntimeError(
            f"fault-free reference sweep failed for {broken_reference}; "
            "fix the workload before injecting faults into it"
        )
    expected = {r.job.benchmark: _payload_fingerprint(r) for r in reference}

    # Fresh per-plan matching state: repeated run_scenario calls in one
    # process (the test suite, `repro chaos --scenario all`) must each see
    # the plan fire from its first matching hit again.
    reset_injector(plan)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache_file = str(Path(tmp) / "chaos-cache.sqlite") if scenario.needs_cache else None
        config = SlingConfig(
            fault_plan=plan, persistent_cache=cache_file, telemetry=telemetry
        )
        reports = _run_sweep(
            benchmarks,
            config,
            seed,
            jobs=scenario.jobs if jobs is None else jobs,
            max_retries=scenario.max_retries,
            retry_timeouts=scenario.retry_timeouts,
            job_timeout=scenario.job_timeout,
        )

    rows = []
    for engine_report in reports:
        counters = {
            counter: getattr(engine_report.cache, counter, 0)
            for counter in COUNTER_FIELDS
        }
        identical = None
        if engine_report.ok:
            identical = (
                _payload_fingerprint(engine_report) == expected[engine_report.job.benchmark]
            )
        rows.append(
            JobRow(
                benchmark=engine_report.job.benchmark,
                ok=engine_report.ok,
                error=engine_report.error,
                identical=identical,
                counters=counters,
            )
        )
    totals = {
        counter: sum(row.counters[counter] for row in rows) for counter in COUNTER_FIELDS
    }
    report = ScenarioReport(
        scenario=name, target=target, passed=True, failures=[], rows=rows, totals=totals
    )

    # Generic contract first, then the scenario's own expectations.
    if not scenario.expect_failures:
        failed = [row.benchmark for row in rows if not row.ok]
        _expect(report, not failed, f"jobs failed under {name}: {failed}")
    divergent = [row.benchmark for row in rows if row.identical is False]
    _expect(report, not divergent, f"ok jobs diverged from the fault-free reference: {divergent}")
    fired = totals["faults_injected"] + sum(
        totals[counter] for counter in ("jobs_retried", "workers_respawned", "jobs_poisoned")
    )
    _expect(report, fired > 0, "the fault plan never fired (scenario exercised nothing)")
    report.failures.extend(scenario.check(report))
    report.passed = not report.failures
    return report


def run_scenarios(
    names: Sequence[str] | None = None,
    categories: Sequence[str] | None = None,
    limit: int | None = None,
    jobs: int | None = None,
    seed: int = 0,
    telemetry=None,
) -> list[ScenarioReport]:
    """Run several scenarios (all of them by default), collecting verdicts."""
    return [
        run_scenario(
            name, categories=categories, limit=limit, jobs=jobs, seed=seed, telemetry=telemetry
        )
        for name in (names or sorted(scenario_catalog()))
    ]
