"""Deterministic fault injection: plans, rules and the per-process injector.

A :class:`FaultPlan` is a seeded, frozen, picklable description of *which*
failures to inject *where*.  It travels on ``SlingConfig.fault_plan``
exactly like the ``telemetry`` handle: the default ``None`` keeps every
instrumented site a single ``is None`` branch away from the untouched code
path (the search-guard baselines pin the resulting counters at zero), and a
set plan crosses the engine's fork boundary by pickling while the mutable
injection state stays process-local.

Sites (``FAULT_SITES``) are the places the stack consults the injector:

``worker_start``
    Pool-worker bootstrap, before the first job is taken.
``job_exec``
    Inside the executing process, under the per-job SIGALRM timer, just
    before the job's payload is computed.  The qualifier is the benchmark
    name, so plans can target one job of a sweep.
``cache_open`` / ``cache_read`` / ``cache_write``
    Inside :class:`repro.cache.store.CacheStore`, *within* the existing
    ``sqlite3.Error`` try blocks -- an injected ``OperationalError`` or
    corruption error exercises the real absorb-and-disable path.
``stream_materialize``
    The checker's stream-miss path (``ModelChecker._get_stream``), before a
    skeleton stream is built or loaded from disk.
``serve_accept`` / ``serve_checkpoint`` / ``serve_client_write``
    The serving layer (:mod:`repro.serve`): the daemon's accept loop
    (qualifier: the socket path), the request-journal checkpoint write
    (qualifier: the journal path) and the per-record client socket write
    (qualifier: the request id).  Each sits inside the daemon's defensive
    handling, so an injected failure exercises the real recovery path:
    a failed accept is logged and the loop continues, a failed checkpoint
    leaves the uncompacted journal in place, and a failed client write is
    treated as a client disconnect.

Actions (``FAULT_ACTIONS``):

``raise`` / ``raise_permanent``
    Raise :class:`InjectedFault`; the engine classifies the former as
    transient (retried) and the latter as permanent (reported).
``hang``
    Sleep for ``rule.seconds`` -- long past any sane job timeout, so the
    in-worker SIGALRM timer is what resolves it.
``exit``
    ``os._exit(rule.exit_code)``: the process dies without cleanup, the
    closest a test can get to a segfault or an OOM kill.  Lethal only
    inside pool workers (:func:`enable_lethal_faults`); everywhere else --
    inline runs, the engine's degraded sequential mode -- it is downgraded
    to a transient ``raise`` so an injected "segfault" can never take down
    the parent process.
``operational_error`` / ``disk_full`` / ``corrupt``
    Raise the matching ``sqlite3`` exception (only meaningful at the
    ``cache_*`` sites, where the store's defensive handling absorbs them).

Rule matching is *counted*, per process and per rule: the ``at``-th hit
that passes the rule's ``match``/``attempt`` filters fires, and keeps
firing for ``times`` consecutive hits (``times=0`` means forever).  Because
counters are process-local, a retried job running in a freshly respawned
worker sees the counters start over -- which is exactly what makes
"kill the first attempt, let the retry succeed" expressible: constrain the
rule with ``attempt=0``.
"""

from __future__ import annotations

import os
import random
import sqlite3
import time
from dataclasses import dataclass

FAULT_SITES = (
    "worker_start",
    "job_exec",
    "cache_open",
    "cache_read",
    "cache_write",
    "stream_materialize",
    "serve_accept",
    "serve_checkpoint",
    "serve_client_write",
)

FAULT_ACTIONS = (
    "raise",
    "raise_permanent",
    "hang",
    "exit",
    "operational_error",
    "disk_full",
    "corrupt",
)


class InjectedFault(RuntimeError):
    """A failure raised by the fault injector (never by real code).

    ``transient`` steers the engine's retry classification; it is encoded
    into the message because worker failures cross the process boundary as
    strings (``EngineReport.error``), not exception objects.
    """

    def __init__(self, site: str, action: str, transient: bool, detail: str = ""):
        self.site = site
        self.action = action
        self.transient = transient
        tag = "transient" if transient else "permanent"
        message = f"injected {action} at {site} [{tag}]"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a :class:`FaultPlan` (see the module docstring).

    ``at`` is 1-based: ``at=1`` fires on the first matching hit.  ``match``
    filters on a substring of the site qualifier (e.g. a benchmark name for
    ``job_exec``); ``attempt`` restricts to one retry attempt of the
    current job (``None`` matches every attempt -- that is what makes a
    poison job: it kills *every* worker it lands on).
    """

    site: str
    action: str
    at: int = 1
    times: int = 1
    match: str | None = None
    attempt: int | None = None
    #: ``hang`` duration; far beyond any test's job timeout by default.
    seconds: float = 30.0
    #: ``exit`` status; 137 is the conventional SIGKILL/OOM-kill code.
    exit_code: int = 137

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} (expected one of {FAULT_SITES})")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (expected one of {FAULT_ACTIONS})"
            )
        if self.at < 1:
            raise ValueError(f"FaultRule.at is 1-based, got {self.at}")
        if self.times < 0:
            raise ValueError(f"FaultRule.times must be >= 0, got {self.times}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of injection rules (frozen, hashable).

    The ``seed`` also feeds the engine's retry backoff jitter
    (:func:`backoff_delays`), so a whole chaos run -- injections *and* the
    healing response -- is reproducible from the plan alone.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        # Accept lists for convenience but store a hashable tuple.
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))


class FaultInjector:
    """Process-local matching state for one plan: hit counters per rule.

    Never instantiated directly -- :func:`maybe_inject` resolves the
    process's injector through a module-global registry, mirroring how the
    telemetry handle resolves its per-process tracer.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.hits = [0] * len(plan.rules)
        #: Rules actually fired in this process (the ``faults_injected``
        #: counter is derived from deltas of this).
        self.injected = 0

    def hit(self, site: str, qualifier: str, attempt: int | None) -> None:
        """Record one site hit; perform the first rule that fires, if any."""
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.match is not None and rule.match not in qualifier:
                continue
            if rule.attempt is not None and attempt != rule.attempt:
                continue
            self.hits[index] += 1
            count = self.hits[index]
            fires = count >= rule.at and (rule.times == 0 or count < rule.at + rule.times)
            if fires:
                self.injected += 1
                _perform(rule)

    def state(self) -> tuple[tuple[int, ...], int]:
        """The observable matching state (hit counters, faults fired)."""
        return tuple(self.hits), self.injected


#: Per-process injectors, keyed by plan.  Keyed on the plan value (frozen,
#: hashable), so equal plans share one injector; the table is process-local
#: state and forked children start from whatever the parent had -- which is
#: why the engine resets it in freshly spawned pool workers.
_INJECTORS: dict[FaultPlan, FaultInjector] = {}

#: True only in engine pool workers: the one place an ``exit`` action is
#: allowed to actually kill the process (see :func:`enable_lethal_faults`).
_LETHAL = False

#: Retry attempt of the job currently executing in this process, consulted
#: by rules with an ``attempt`` filter at sites that do not know the job
#: (the cache store, the checker).  Set by the engine around each job.
_CURRENT_ATTEMPT: int | None = None


def injector_for(plan: FaultPlan) -> FaultInjector:
    """This process's injector for ``plan`` (created on first use)."""
    injector = _INJECTORS.get(plan)
    if injector is None:
        injector = _INJECTORS[plan] = FaultInjector(plan)
    return injector


def maybe_inject(
    plan: FaultPlan | None,
    site: str,
    qualifier: str = "",
    attempt: int | None = None,
) -> None:
    """The one entry point of every instrumented site.

    ``plan=None`` returns immediately -- callers guard with ``is None``
    anyway, so a default run never even builds an injector.  ``attempt``
    defaults to the process-wide current job attempt (see
    :func:`set_current_attempt`).
    """
    if plan is None:
        return
    if attempt is None:
        attempt = _CURRENT_ATTEMPT
    injector_for(plan).hit(site, qualifier, attempt)


def reset_injector(plan: FaultPlan | None) -> None:
    """Start ``plan``'s matching state over in this process.

    Called from the engine's pool-worker bootstrap (and the chaos runner
    between scenario sweeps): per-*worker-lifetime* rule counters are what
    make respawn-and-retry scenarios deterministic, regardless of whatever
    the forked parent process already counted.
    """
    if plan is not None:
        _INJECTORS[plan] = FaultInjector(plan)


def injection_count(plan: FaultPlan | None) -> int:
    """Faults fired by ``plan`` in this process so far (0 for ``None``)."""
    if plan is None:
        return 0
    injector = _INJECTORS.get(plan)
    return injector.injected if injector is not None else 0


def set_current_attempt(attempt: int | None) -> None:
    """Record which retry attempt is executing in this process."""
    global _CURRENT_ATTEMPT
    _CURRENT_ATTEMPT = attempt


def enable_lethal_faults(enabled: bool = True) -> None:
    """Allow ``exit`` actions to really kill this process.

    Called (with ``True``) only from the engine's pool-worker bootstrap.
    Everywhere else an ``exit`` rule downgrades to a transient raise, so
    inline and degraded-sequential execution survive plans written for
    pool workers -- the degradation guarantee depends on this.
    """
    global _LETHAL
    _LETHAL = enabled


def lethal_faults_enabled() -> bool:
    return _LETHAL


def _perform(rule: FaultRule) -> None:
    if rule.action == "raise":
        raise InjectedFault(rule.site, rule.action, transient=True)
    if rule.action == "raise_permanent":
        raise InjectedFault(rule.site, rule.action, transient=False)
    if rule.action == "hang":
        # Interrupted by the in-worker SIGALRM job timer; without one the
        # sleep runs its (bounded) course.
        time.sleep(rule.seconds)
        return
    if rule.action == "exit":
        if lethal_faults_enabled():
            os._exit(rule.exit_code)
        raise InjectedFault(
            rule.site, rule.action, transient=True, detail="downgraded: not a pool worker"
        )
    if rule.action == "operational_error":
        raise sqlite3.OperationalError(f"injected operational error at {rule.site}")
    if rule.action == "disk_full":
        raise sqlite3.OperationalError(f"database or disk is full (injected at {rule.site})")
    if rule.action == "corrupt":
        raise sqlite3.DatabaseError(
            f"database disk image is malformed (injected at {rule.site})"
        )
    raise AssertionError(f"unreachable: validated action {rule.action!r}")


def backoff_delays(
    seed: int,
    key: str,
    retries: int,
    base: float = 0.05,
    cap: float = 2.0,
) -> list[float]:
    """The engine's retry-delay schedule: seeded exponential backoff + jitter.

    A pure function of ``(seed, key, retries, base, cap)``: attempt ``i``
    waits ``min(cap, base * 2**i)`` scaled by a jitter factor in
    ``[0.5, 1.5)`` drawn from ``random.Random(f"{seed}:{key}")``.  Keying
    the RNG on the job makes concurrent retries of different jobs
    decorrelated while keeping every schedule reproducible -- the
    hypothesis suite asserts exactly this determinism.
    """
    rng = random.Random(f"{seed}:{key}")
    delays = []
    for i in range(retries):
        delay = min(cap, base * (2**i))
        delays.append(min(cap, delay * (0.5 + rng.random())))
    return delays
