"""pytest-benchmark configuration shared by the benchmark harnesses.

Each benchmark runs its workload exactly once per round (the workloads are
whole-program analyses, not micro-kernels), so rounds/iterations are pinned
to keep the suite's wall-clock time proportional to one evaluation pass.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the benchmarked callable exactly once (single round, single iteration)."""

    def run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
