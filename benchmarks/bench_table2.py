"""Benchmark harness for Table 2 (SLING vs the S2-like static baseline).

The reproduction target is the qualitative structure of the paper's Table 2:
properties found only by SLING vastly outnumber those found only by the
static baseline, and the properties found by both sit in the simple
recursive singly-linked-list/tree programs.

The comparisons are produced by the batch-inference engine; set
``REPRO_BENCH_JOBS=N`` to fan each group out over N worker processes.
Run the complete table outside of pytest with
``python -m repro table2 --jobs N``.
"""

import os

import pytest

from repro.evaluation.table2 import run_table2

_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

_BENCH_GROUPS = {
    "simple-lists": ["SLL", "GRASShopper_SLL (Recursive)", "AFWP_SLL"],
    "doubly-linked": ["DLL", "glib/glist_DLL", "GRASShopper_DLL"],
    "trees-and-heaps": ["Binary Search Tree", "AVL Tree", "Priority Tree", "Binomial Heap"],
    "sorted-lists": ["Sorted List", "GRASShopper_SortedList"],
}


@pytest.mark.parametrize("group", sorted(_BENCH_GROUPS))
def test_table2_group(once, group):
    """Regenerate Table 2 rows for a group of categories and check its shape."""
    result = once(run_table2, categories=_BENCH_GROUPS[group], jobs=_JOBS)
    summary = result.summary()
    assert summary.total > 0
    # The headline result of the comparison: SLING covers at least as many
    # documented properties as the static baseline in every group.
    assert summary.both + summary.sling_only >= summary.both + summary.s2_only
    if group in ("doubly-linked", "sorted-lists"):
        # Categories outside the baseline's fragment are SLING-only territory.
        assert summary.s2_only == 0
        assert summary.sling_only > 0
