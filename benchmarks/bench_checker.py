"""Ablation A2: cost of the symbolic-heap model checker (Section 4.5).

The paper notes the checking problem is EXPTIME in general but cheap on the
small traces SLING collects.  These benchmarks measure how the checker's cost
grows with structure size and with the number of traces, which is the
empirical justification for the "few traces of size 10" input protocol.
"""

import itertools
import random

import pytest

from repro.core.infer_atom import Candidate, _candidate_variant
from repro.datagen import make_avl, make_bst, make_dll, make_sll
from repro.lang import RuntimeHeap, standard_structs
from repro.sl.checker import ModelChecker, build_skeleton
from repro.sl.exprs import Nil, Var
from repro.sl.model import Heap, HeapCell, StackHeapModel
from repro.sl.parser import parse_formula
from repro.sl.spatial import PredApp, SymHeap
from repro.sl.stdpreds import standard_predicates

_STRUCTS = standard_structs()
_CHECKER = ModelChecker(standard_predicates())


def _model(generator, size, var_type, seed=0):
    rng = random.Random(seed)
    heap = RuntimeHeap(_STRUCTS)
    root = generator(heap, rng, size)
    cells = {}
    for address in heap.reachable([root]):
        struct = _STRUCTS.get(heap.type_of(address))
        values = heap.cell(address)
        cells[address] = HeapCell(struct.name, [(n, values[n]) for n in struct.field_names])
    return StackHeapModel({"x": root}, Heap(cells), {"x": var_type})


_SCENARIOS = {
    "sll": (make_sll, "SllNode*", "sll(x)"),
    "dll": (make_dll, "DllNode*", "exists p, t. dll(x, p, t, nil)"),
    "bst": (make_bst, "BstNode*", "exists lo, hi. bst(x, lo, hi)"),
    "avl": (make_avl, "AvlNode*", "exists h. avl(x, h)"),
}


@pytest.mark.parametrize("structure", sorted(_SCENARIOS))
@pytest.mark.parametrize("size", [10, 30, 80])
def test_checker_scales_with_structure_size(benchmark, structure, size):
    """One reduction over a single model of growing size."""
    generator, var_type, formula_text = _SCENARIOS[structure]
    model = _model(generator, size, var_type)
    formula = parse_formula(formula_text)

    result = benchmark.pedantic(_CHECKER.check, args=(model, formula), rounds=3, iterations=1)
    assert result is not None and result.covers_everything()


@pytest.mark.parametrize("trace_count", [1, 5, 25])
def test_checker_scales_with_trace_count(benchmark, trace_count):
    """Checking one candidate against many traces (Algorithm 2, line 10)."""
    models = [_model(make_dll, 10, "DllNode*", seed=seed) for seed in range(trace_count)]
    formula = parse_formula("exists p, t. dll(x, p, t, nil)")

    results = benchmark.pedantic(_CHECKER.check_all, args=(models, formula), rounds=3, iterations=1)
    assert results is not None and len(results) == trace_count


def test_checker_rejection_cost(benchmark):
    """Refuting a wrong candidate (the common case during enumeration)."""
    model = _model(make_dll, 30, "DllNode*")
    wrong = parse_formula("sll(x)")
    result = benchmark.pedantic(_CHECKER.check, args=(model, wrong), rounds=3, iterations=1)
    assert result is None


# ---------------------------------------------------------------------------
# Columnar kernel vs legacy per-variant scan (PR 8)
# ---------------------------------------------------------------------------
#
# Group decision over synthetic streams of varying entry counts: an sll of
# ``size`` nodes gives the lseg skeleton a stream of size+1 entries (one per
# suffix hole), and the full candidate lattice of lseg supplies a realistic
# mix of pinned and pin-free variants.  The kernel resolves the pinned ones
# through the slot indexes and memoizes the pin-free scan; the legacy path
# re-scans the stream once per variant.

_FRESH = ("u91", "u92")


def _lseg_batch(size: int):
    """(models, skeleton, variants) for one lseg group over an sll chain."""
    cells = {
        addr: HeapCell("SllNode", {"next": addr + 1 if addr < size else 0})
        for addr in range(1, size + 1)
    }
    model = StackHeapModel(
        {"x": 1, "y": size // 2 or 0},
        Heap(cells),
        {"x": "SllNode*", "y": "SllNode*"},
    )
    fresh = set(_FRESH)
    pool = ["x", "y", "nil", *_FRESH[:1]]
    variants = []
    seen = set()
    for permutation in itertools.permutations(pool, 2):
        if permutation[0] != "x":
            continue
        signature = tuple("?" if name in fresh else name for name in permutation)
        if signature in seen:
            continue
        seen.add(signature)
        candidate = Candidate(permutation, fresh)
        used_fresh = tuple(n for n in permutation if n in fresh)
        formula = SymHeap(
            exists=used_fresh,
            spatial=PredApp(
                "lseg",
                [Nil() if n == "nil" else Var(n) for n in permutation],
            ),
        )
        variants.append(_candidate_variant(candidate, formula, 0))
    skeleton = build_skeleton("lseg", 2, "x", 0)
    return [model], skeleton, variants


@pytest.mark.parametrize("entries", [8, 32, 128])
@pytest.mark.parametrize("path", ["kernel", "scan"])
def test_group_decision_kernel_vs_scan(benchmark, entries, path):
    """One candidate group settled against a stream of ``entries`` entries.

    Run via ``make bench-micro``; compare the ``kernel`` and ``scan`` rows
    at equal entry counts.  A fresh checker per round keeps the stream memo
    and the settle-record cache cold, so the timing covers the stream solve
    plus the decision pass itself.
    """
    models, skeleton, variants = _lseg_batch(entries - 1)

    def setup():
        checker = ModelChecker(
            standard_predicates(), columnar_kernels=(path == "kernel")
        )
        return (checker,), {}

    def run(checker):
        return checker.check_batch(models, skeleton, variants, drop_vacuous=False)

    outcomes = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert len(outcomes) == len(variants)


def _outcome_key(outcomes):
    key = []
    for outcome in outcomes:
        if outcome is None or not isinstance(outcome, list):
            key.append(outcome)
        else:
            key.append(
                [
                    r if r is None else (r.residual, dict(r.instantiation), set(r.consumed))
                    for r in outcome
                ]
            )
    return key


@pytest.mark.parametrize("entries", [64])
def test_group_decision_paths_agree(entries):
    """The two paths must produce identical outcomes on the same batch
    (cheap end-to-end identity check riding along with the micro-bench)."""
    models, skeleton, variants = _lseg_batch(entries - 1)
    outcomes = {}
    for path in ("kernel", "scan"):
        checker = ModelChecker(
            standard_predicates(), columnar_kernels=(path == "kernel")
        )
        outcomes[path] = checker.check_batch(
            models, skeleton, variants, drop_vacuous=False
        )
    assert _outcome_key(outcomes["kernel"]) == _outcome_key(outcomes["scan"])
