"""Ablation A2: cost of the symbolic-heap model checker (Section 4.5).

The paper notes the checking problem is EXPTIME in general but cheap on the
small traces SLING collects.  These benchmarks measure how the checker's cost
grows with structure size and with the number of traces, which is the
empirical justification for the "few traces of size 10" input protocol.
"""

import random

import pytest

from repro.datagen import make_avl, make_bst, make_dll, make_sll
from repro.lang import RuntimeHeap, standard_structs
from repro.sl.checker import ModelChecker
from repro.sl.model import Heap, HeapCell, StackHeapModel
from repro.sl.parser import parse_formula
from repro.sl.stdpreds import standard_predicates

_STRUCTS = standard_structs()
_CHECKER = ModelChecker(standard_predicates())


def _model(generator, size, var_type, seed=0):
    rng = random.Random(seed)
    heap = RuntimeHeap(_STRUCTS)
    root = generator(heap, rng, size)
    cells = {}
    for address in heap.reachable([root]):
        struct = _STRUCTS.get(heap.type_of(address))
        values = heap.cell(address)
        cells[address] = HeapCell(struct.name, [(n, values[n]) for n in struct.field_names])
    return StackHeapModel({"x": root}, Heap(cells), {"x": var_type})


_SCENARIOS = {
    "sll": (make_sll, "SllNode*", "sll(x)"),
    "dll": (make_dll, "DllNode*", "exists p, t. dll(x, p, t, nil)"),
    "bst": (make_bst, "BstNode*", "exists lo, hi. bst(x, lo, hi)"),
    "avl": (make_avl, "AvlNode*", "exists h. avl(x, h)"),
}


@pytest.mark.parametrize("structure", sorted(_SCENARIOS))
@pytest.mark.parametrize("size", [10, 30, 80])
def test_checker_scales_with_structure_size(benchmark, structure, size):
    """One reduction over a single model of growing size."""
    generator, var_type, formula_text = _SCENARIOS[structure]
    model = _model(generator, size, var_type)
    formula = parse_formula(formula_text)

    result = benchmark.pedantic(_CHECKER.check, args=(model, formula), rounds=3, iterations=1)
    assert result is not None and result.covers_everything()


@pytest.mark.parametrize("trace_count", [1, 5, 25])
def test_checker_scales_with_trace_count(benchmark, trace_count):
    """Checking one candidate against many traces (Algorithm 2, line 10)."""
    models = [_model(make_dll, 10, "DllNode*", seed=seed) for seed in range(trace_count)]
    formula = parse_formula("exists p, t. dll(x, p, t, nil)")

    results = benchmark.pedantic(_CHECKER.check_all, args=(models, formula), rounds=3, iterations=1)
    assert results is not None and len(results) == trace_count


def test_checker_rejection_cost(benchmark):
    """Refuting a wrong candidate (the common case during enumeration)."""
    model = _model(make_dll, 30, "DllNode*")
    wrong = parse_formula("sll(x)")
    result = benchmark.pedantic(_CHECKER.check, args=(model, wrong), rounds=3, iterations=1)
    assert result is None
