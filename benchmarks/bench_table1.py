"""Benchmark harness for Table 1 (per-category invariant inference).

Each benchmark analyses one full category of the suite with SLING and reports
the aggregated row; the measured time corresponds to the Time(s) column of
the paper's Table 1 (absolute values differ -- interpreter + pure-Python
checker instead of compiled C + Z3 -- but the per-category ordering and the
counts of locations/traces/invariants are the reproduction targets).

The rows are produced by the batch-inference engine; set
``REPRO_BENCH_JOBS=N`` to fan each category out over N worker processes
(the measured results are identical, per the engine's determinism
guarantee).  Run the complete table outside of pytest with
``python -m repro table1 --jobs N``.
"""

import os

import pytest

from repro.evaluation.table1 import run_table1
from repro.benchsuite import categories

_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: A representative subset of categories keeps the pytest-benchmark run
#: short; pass ``--all-categories`` behaviour by invoking the module instead.
_BENCH_CATEGORIES = [
    "SLL",
    "Sorted List",
    "DLL",
    "Circular List",
    "Binary Search Tree",
    "AVL Tree",
    "Tree Traversal",
    "glib/glist_SLL",
    "OpenBSD Queue",
    "GRASShopper_SLL (Recursive)",
    "AFWP_SLL",
    "Cyclist",
]


@pytest.mark.parametrize("category", _BENCH_CATEGORIES)
def test_table1_category(once, category):
    """Regenerate one Table 1 row and sanity-check its aggregate counts."""
    result = once(run_table1, categories=[category], jobs=_JOBS)
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.program_count > 0
    assert row.locations > 0
    # Every category that is not entirely made of crashing programs yields
    # traces and invariants.
    crashing_only = all(r.classification == "X" for r in row.programs)
    if not crashing_only:
        assert row.traces > 0
        assert row.invariants > 0


def test_table1_category_list_is_current():
    """The subset benchmarked above must remain valid category names."""
    known = set(categories())
    assert set(_BENCH_CATEGORIES) <= known
