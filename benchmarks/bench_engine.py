#!/usr/bin/env python3
"""Benchmark the batch-inference engine: parallelism, batching, screening.

Runs up to three sweeps over the Table 1 suite (sequential with skeleton
batching and the checker memo disabled, sequential with all accelerations,
parallel with all accelerations), checks that every sweep reproduces the
same invariants exactly, and records wall times, speedups, cache hit rates
and candidate-screening/batching counters as JSON.  With ``--jobs 1`` the
parallel sweep is skipped (``parallel_skipped`` in the report); on a
single-CPU machine it still runs -- preserving the full-suite parallel
determinism assertion -- but its wall time is reported as ``null`` with a
``parallel_note`` rather than recording a meaningless fork-overhead
"speedup".  Unless ``--out`` is given, the
report is written to ``benchmarks/BENCH_engine.json`` so successive runs
accumulate a performance trajectory in the repository.

``--compare BENCH_prev.json`` loads a previous report and exits with status
1 when the sequential wall time regressed by more than 20% -- wire it into
CI against the last committed ``BENCH_engine.json``.

Examples::

    PYTHONPATH=src python benchmarks/bench_engine.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_engine.py --category SLL --out engine.json
    PYTHONPATH=src python benchmarks/bench_engine.py --compare benchmarks/BENCH_engine.json

This is the ``python -m repro bench`` subcommand (see ``repro.cli``); the
wrapper exists so the performance harnesses live together under
``benchmarks/`` and simply delegates, flags and all (adding only the
default ``--out`` path above).
"""

import os
import sys

from repro.cli import main

def _is_full_sweep(arguments: list[str]) -> bool:
    """True when no --limit/--category restriction narrows the run.

    Only full sweeps are comparable trajectory points; a restricted run must
    never overwrite the committed ``BENCH_engine.json`` baseline.
    """
    narrowing = ("--limit", "--category", "--warm-start")
    return not any(
        arg in narrowing or arg.startswith(tuple(f"{flag}=" for flag in narrowing))
        for arg in arguments
    )


if __name__ == "__main__":
    arguments = sys.argv[1:]
    has_out = any(arg == "--out" or arg.startswith("--out=") for arg in arguments)
    if not has_out and _is_full_sweep(arguments):
        default_out = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_engine.json")
        arguments = [*arguments, "--out", default_out]
    main(["bench", *arguments])
