#!/usr/bin/env python3
"""Benchmark the batch-inference engine: parallelism and memoization.

Runs three sweeps over the Table 1 suite (sequential with the checker memo
disabled, sequential with caches, parallel with caches), checks that the
parallel sweep reproduces the sequential invariants exactly, and records
wall times, speedups and cache hit rates as JSON.

Examples::

    PYTHONPATH=src python benchmarks/bench_engine.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_engine.py --category SLL --out engine.json

This is the ``python -m repro bench`` subcommand (see ``repro.cli``); the
wrapper exists so the performance harnesses live together under
``benchmarks/`` and simply delegates, flags and all.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    main(["bench", *sys.argv[1:]])
