"""Ablation A1: the variable-ordering heuristic of Section 2.3.

The paper argues that analysing variables in an order that follows
reachability from already-analysed variables avoids weaker results caused by
residual-heap propagation.  This harness runs SLING on representative
programs under the paper's ordering ("reachability") and two baselines
("stack" declaration order, "reverse") and compares the quality of the
outcome: how many heap cells the best invariant leaves undescribed and how
many documented properties are still found.
"""

import pytest

from repro.benchsuite import get_benchmark
from repro.core.sling import Sling, SlingConfig

_PROGRAMS = ["dll/concat", "sll/reverse", "gh_dll/reverse", "glist_dll/find"]
_ORDERS = ["reachability", "stack", "reverse"]


def _run(benchmark_name: str, order: str):
    entry = get_benchmark(benchmark_name)
    config = SlingConfig(variable_order=order)
    sling = Sling(entry.program, entry.predicates, config)
    specification = sling.infer_function(entry.function, entry.test_cases(seed=1))
    found = sum(1 for documented in entry.documented if documented.check(specification))
    return specification, found, len(entry.documented)


@pytest.mark.parametrize("order", _ORDERS)
@pytest.mark.parametrize("program", _PROGRAMS)
def test_variable_order_ablation(once, program, order):
    """Measure inference under each variable-analysis order."""
    specification, found, total = once(_run, program, order)
    assert specification.invariant_count() > 0
    if order == "reachability":
        # The paper's heuristic must not lose any documented property on
        # these programs (it is the configuration used for Tables 1 and 2).
        assert found == total


def test_reachability_order_is_at_least_as_good():
    """Across the ablation programs, the paper's ordering finds at least as
    many documented properties as either baseline ordering."""
    scores = {order: 0 for order in _ORDERS}
    for program in _PROGRAMS:
        for order in _ORDERS:
            _, found, _ = _run(program, order)
            scores[order] += found
    assert scores["reachability"] >= scores["stack"]
    assert scores["reachability"] >= scores["reverse"]
