"""Packaging for the SLING reproduction.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  Metadata therefore lives here (not in ``pyproject.toml``),
keeping ``pip install -e . --no-build-isolation`` and ``python setup.py
develop`` working offline.  The package also runs uninstalled with
``PYTHONPATH=src`` (that is what the test suite and the Makefile use).
"""

from setuptools import find_packages, setup

setup(
    name="sling-repro",
    version="0.2.0",
    description=(
        "Reproduction of SLING (PLDI 2019): dynamic inference of "
        "separation-logic invariants, with a parallel batch-inference engine"
    ),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ]
    },
)
