"""Legacy setup shim.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim keeps ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` working offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
