# Development targets. Everything runs offline with the in-tree sources.

PYTHON ?= python
PYTHONPATH := src

.PHONY: check test smoke bench bench-smoke docs table1 table2

# Tier-1 gate: the full test suite plus a CLI smoke test, one command.
check: test smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --category SLL --limit 2 --json > /dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro docs --stdout > /dev/null
	@echo "CLI smoke test OK"

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --jobs 4 --limit 2

# Quick performance gate: the deterministic search-space guard (exact
# candidate counts, no timing flakiness) plus a two-programs-per-category
# engine bench as an end-to-end smoke.  Timing comparisons against the
# committed trajectory need the full sweep: run
#   benchmarks/bench_engine.py --compare benchmarks/BENCH_engine.json
# (a --limit run is not comparable to the full-sweep baseline).
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/core/test_search_guard.py -q
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --jobs 2 --limit 2 \
		--quiet --out /tmp/bench_smoke.json
	@echo "bench smoke OK (report: /tmp/bench_smoke.json)"

docs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro docs

table1:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --jobs 4

table2:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table2 --jobs 4
