# Development targets. Everything runs offline with the in-tree sources.

PYTHON ?= python
PYTHONPATH := src

.PHONY: check test smoke trace-smoke chaos-smoke serve-smoke lint-timing bench bench-micro bench-smoke bench-smoke-engine bench-compare bench-warm docs table1 table2

# Tier-1 gate: the full test suite (which includes the deterministic
# search-space guard), a CLI smoke test, the micro/ablation benchmark
# harnesses (run once each, as correctness smoke), a small engine bench and
# the full engine bench gated against the committed trajectory -- one
# command.  (bench-smoke-engine, not bench-smoke: `test` already ran the
# guard.)
check: lint-timing test smoke trace-smoke bench-micro bench-smoke-engine bench-compare

# The pytest-benchmark harnesses (checker scaling, variable-order ablation)
# exercised as plain tests: their assertions catch API or counter drift that
# the unit suite does not touch, long before anyone reads their timings.
bench-micro:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_checker.py \
		benchmarks/bench_ablation.py -q -p no:cacheprovider
	@echo "micro/ablation bench smoke OK"

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --category SLL --limit 2 --json > /dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro docs --stdout > /dev/null
	@echo "CLI smoke test OK"

# Produce a real trace end to end and prove every consumer of it works:
# a traced table1 run writes the NDJSON stream (parsed and schema-checked
# by `trace summary`), the Chrome export must be loadable JSON, and `trace
# diff` must accept the file against itself.  CI uploads the artifacts.
trace-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --category SLL --limit 2 --json \
		--trace-out /tmp/trace_smoke.ndjson > /dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace summary /tmp/trace_smoke.ndjson
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace export --format chrome \
		--out /tmp/trace_smoke.chrome.json /tmp/trace_smoke.ndjson
	$(PYTHON) -c "import json; d = json.load(open('/tmp/trace_smoke.chrome.json')); \
		assert d['traceEvents'], 'empty chrome export'"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace diff \
		/tmp/trace_smoke.ndjson /tmp/trace_smoke.ndjson > /dev/null
	@echo "trace smoke OK (trace: /tmp/trace_smoke.ndjson)"

# Chaos gate: every named fault-injection scenario -- the engine ones
# (worker kills, hangs, cache corruption, disk-full, poison jobs) and the
# serving-layer ones (queue overflow, deadline expiry, client disconnect)
# -- verifying the self-healing contract end to end (see docs/resilience.md
# and docs/serving.md).  The traced run leaves retry/pool_heal spans in
# /tmp/chaos_smoke.ndjson; the CI chaos job uploads it as an artifact when
# the gate fails.
chaos-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro chaos \
		--trace-out /tmp/chaos_smoke.ndjson
	@echo "chaos smoke OK (trace: /tmp/chaos_smoke.ndjson)"

# Serve gate: the end-to-end daemon drill -- real subprocesses, sockets and
# signals.  Asserts incremental streaming through `repro infer --connect`,
# a clean exit-0 SIGTERM drain (idle and mid-request), and a bit-identical
# restart-resume of the checkpointed backlog (see docs/serving.md).  On
# failure the drill keeps its workdir (daemon log, journal, trace) in
# /tmp/serve_smoke for the CI job to upload.
serve-smoke:
	rm -rf /tmp/serve_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.serve.smoke --workdir /tmp/serve_smoke
	@echo "serve smoke OK (artifacts: /tmp/serve_smoke)"

# There is exactly one sanctioned clock: repro.telemetry.monotime.  Bare
# time.perf_counter() calls outside the telemetry package bypass the tracer
# and creep back into ad-hoc timing -- fail the gate if any appear.
lint-timing:
	@if grep -rn "perf_counter" --include='*.py' src/repro benchmarks \
		| grep -v "^src/repro/telemetry/"; then \
		echo "error: bare perf_counter outside src/repro/telemetry/;" \
			"import monotime from repro.telemetry instead"; \
		exit 1; \
	fi
	@echo "timing lint OK"

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --jobs 4 --limit 2

# Quick performance gate: the deterministic search-space guard (exact
# candidate counts, no timing flakiness) plus a two-programs-per-category
# engine bench as an end-to-end smoke.  Timing comparisons against the
# committed trajectory need the full sweep: see bench-compare (a --limit
# run is not comparable to the full-sweep baseline).
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/core/test_search_guard.py -q
	$(MAKE) bench-smoke-engine

bench-smoke-engine:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --jobs 2 --limit 2 \
		--quiet --out /tmp/bench_smoke.json
	@echo "bench smoke OK (report: /tmp/bench_smoke.json)"

# Full-sweep regression gate, two checks in one run:
#  * --assert-accel 1.3 -- the tight, machine- and load-independent gate:
#    the accelerated and unaccelerated sequential sweeps run back to back in
#    the same process, so their ratio is immune to co-tenant load and
#    hardware speed.  A drop below 1.3x means the batching/screening
#    pipeline itself regressed.
#  * --compare (threshold 0.60) -- the absolute wall-time trajectory against
#    the committed benchmarks/BENCH_engine.json, loosened because the
#    committed baseline is an idle-box measurement and shared machines swing
#    well past the default 20%; it still catches catastrophic slowdowns.
# The report goes to /tmp so CI never touches the committed baseline;
# refresh the baseline deliberately (PYTHONPATH=src python
# benchmarks/bench_engine.py --jobs 4) on an idle machine.
bench-compare:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --jobs 4 --quiet \
		--compare benchmarks/BENCH_engine.json --compare-threshold 0.60 \
		--assert-accel 1.3 --out /tmp/bench_compare.json
	@echo "bench compare OK (report: /tmp/bench_compare.json)"

# Warm-start gate: a cold sweep writes the persistent cache, a warm sweep
# re-reads it, and the run fails unless the warm disk hit rate is >= 0.9
# and both sweeps reproduce the cache-less reference bit-identically.
# WARM_CACHE defaults to a throwaway file; point it at a kept path (as the
# CI warm-start job does, via actions/cache keyed on the predicate-registry
# fingerprint) to measure warm starts across invocations.
bench-warm:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --warm-start \
		--limit 2 --quiet --assert-warm-hit 0.9 \
		$(if $(WARM_CACHE),--cache-file $(WARM_CACHE),) \
		--out /tmp/bench_warm.json
	@echo "warm-start bench OK (report: /tmp/bench_warm.json)"

docs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro docs

table1:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --jobs 4

table2:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table2 --jobs 4
