# Development targets. Everything runs offline with the in-tree sources.

PYTHON ?= python
PYTHONPATH := src

.PHONY: check test smoke bench docs table1 table2

# Tier-1 gate: the full test suite plus a CLI smoke test, one command.
check: test smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --category SLL --limit 2 --json > /dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro docs --stdout > /dev/null
	@echo "CLI smoke test OK"

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_engine.py --jobs 4 --limit 2

docs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro docs

table1:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table1 --jobs 4

table2:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro table2 --jobs 4
