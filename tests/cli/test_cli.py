"""Smoke tests for the ``repro`` CLI (``python -m repro ...``)."""

import json
import os
import subprocess
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[2]


def _run(*args: str, timeout: float = 120.0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=_ROOT,
    )


def test_table1_json_parses():
    process = _run("table1", "--category", "SLL", "--limit", "2", "--json")
    assert process.returncode == 0, process.stderr
    data = json.loads(process.stdout)
    assert data["totals"]["programs"] == 2
    assert data["rows"][0]["category"] == "SLL"
    programs = data["rows"][0]["programs"]
    assert all(p["classification"] in "ASX" for p in programs)
    assert data["cache"]["checker_misses"] > 0


def test_table2_json_parses():
    process = _run("table2", "--category", "SLL", "--limit", "2", "--json")
    assert process.returncode == 0, process.stderr
    data = json.loads(process.stdout)
    assert data["summary"]["total"] > 0


def test_table1_parallel_jobs_flag():
    process = _run("table1", "--category", "SLL", "--limit", "2", "--jobs", "2", "--json")
    assert process.returncode == 0, process.stderr
    parallel = json.loads(process.stdout)
    sequential = json.loads(
        _run("table1", "--category", "SLL", "--limit", "2", "--json").stdout
    )
    # Drop the timing/cache fields; every counted column must agree.
    for data in (parallel, sequential):
        del data["cache"]
        data["totals"].pop("seconds")
        for row in data["rows"]:
            for program in row["programs"]:
                for key in (
                    "seconds",
                    "checker_cache_hits",
                    "checker_cache_misses",
                    "unfold_cache_hits",
                    "unfold_cache_misses",
                ):
                    program.pop(key)
    assert parallel == sequential


def test_infer_json():
    process = _run("infer", "--benchmark", "sll/insertFront", "--json")
    assert process.returncode == 0, process.stderr
    [report] = json.loads(process.stdout)
    assert report["ok"] is True
    assert report["benchmark"] == "sll/insertFront"
    assert any(inv["formula"] for inv in report["invariants"])


def test_infer_list():
    process = _run("infer", "--list")
    assert process.returncode == 0, process.stderr
    assert "sll/insertFront" in process.stdout


def test_infer_without_selection_errors():
    process = _run("infer")
    assert process.returncode != 0


def test_docs_stdout():
    process = _run("docs", "--stdout")
    assert process.returncode == 0, process.stderr
    assert process.stdout.startswith("# Inductive predicate reference")
    assert "## `sll(x: SllNode*)`" in process.stdout
    assert "Example model" in process.stdout


def test_generated_docs_are_in_sync():
    """docs/predicates.md must match what ``python -m repro docs`` produces."""
    committed = (_ROOT / "docs" / "predicates.md").read_text(encoding="utf-8")
    process = _run("docs", "--stdout")
    assert process.stdout == committed, (
        "docs/predicates.md is stale; regenerate it with `python -m repro docs`"
    )
