"""Tests for the data-structure generators: every generated structure must
satisfy its defining predicate (they feed the trace-collection phase, so a
broken generator would silently invalidate the whole evaluation)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import (
    make_avl,
    make_binomial_heap,
    make_bst,
    make_circular_list,
    make_dll,
    make_glib_dll,
    make_glib_sll,
    make_max_heap_tree,
    make_mem_chunk_list,
    make_nested_list,
    make_queue,
    make_red_black_tree,
    make_sll,
    make_sll_data,
    make_sorted_sll,
    make_sw_tree,
    make_tree,
)
from repro.lang import RuntimeHeap, standard_structs
from repro.sl.model import Heap, HeapCell, StackHeapModel
from repro.sl.parser import parse_formula
from repro.sl.checker import ModelChecker
from repro.sl.stdpreds import standard_predicates

_STRUCTS = standard_structs()
_CHECKER = ModelChecker(standard_predicates())


def _model_of(heap: RuntimeHeap, root: int, var: str, var_type: str) -> StackHeapModel:
    cells = {}
    for address in heap.reachable([root]):
        struct = _STRUCTS.get(heap.type_of(address))
        values = heap.cell(address)
        cells[address] = HeapCell(struct.name, [(name, values[name]) for name in struct.field_names])
    return StackHeapModel({var: root}, Heap(cells), {var: var_type})


_CASES = [
    (make_sll, "SllNode*", "sll(x)"),
    (make_sll_data, "SNode*", "slldata(x)"),
    (make_sorted_sll, "SNode*", "exists m. sls(x, m)"),
    (make_dll, "DllNode*", "exists p, t. dll(x, p, t, nil)"),
    (make_glib_sll, "GSNode*", "gsll(x)"),
    (make_glib_dll, "GNode*", "exists p, t. gdll(x, p, t, nil)"),
    (make_circular_list, "CNode*", "cll(x)"),
    (make_tree, "TNode*", "tree(x)"),
    (make_sw_tree, "SwNode*", "swtree(x)"),
    (make_bst, "BstNode*", "exists lo, hi. bst(x, lo, hi)"),
    (make_avl, "AvlNode*", "exists h. avl(x, h)"),
    (make_max_heap_tree, "PNode*", "exists ub. pheap(x, ub)"),
    (make_red_black_tree, "RbNode*", "exists c, bh. rbt(x, c, bh)"),
    (make_binomial_heap, "BinNode*", "binheap(x)"),
    (make_nested_list, "NlNode*", "nll(x)"),
    (make_mem_chunk_list, "MemChunk*", "exists p, t. memdll(x, p, t, nil)"),
]


@pytest.mark.parametrize("generator, var_type, formula", _CASES, ids=[c[0].__name__ for c in _CASES])
@pytest.mark.parametrize("size", [0, 1, 5, 10])
def test_generated_structure_satisfies_predicate(generator, var_type, formula, size):
    rng = random.Random(99)
    heap = RuntimeHeap(_STRUCTS)
    root = generator(heap, rng, size)
    model = _model_of(heap, root, "x", var_type)
    result = _CHECKER.check(model, parse_formula(formula))
    assert result is not None, f"{generator.__name__}({size}) does not satisfy {formula}"
    assert result.covers_everything()


def test_queue_generator_satisfies_queue_predicate():
    rng = random.Random(3)
    heap = RuntimeHeap(_STRUCTS)
    root = make_queue(heap, rng, 4)
    model = _model_of(heap, root, "q", "Queue*")
    result = _CHECKER.check(model, parse_formula("queue(q)"))
    assert result is not None and result.covers_everything()


def test_structure_sizes():
    rng = random.Random(5)
    heap = RuntimeHeap(_STRUCTS)
    make_sll(heap, rng, 7)
    assert heap.live_count() == 7
    heap2 = RuntimeHeap(_STRUCTS)
    make_bst(heap2, rng, 10)
    assert heap2.live_count() == 10


@settings(max_examples=15, deadline=None)
@given(size=st.integers(min_value=0, max_value=12), seed=st.integers(min_value=0, max_value=1000))
def test_bst_generator_property(size, seed):
    rng = random.Random(seed)
    heap = RuntimeHeap(_STRUCTS)
    root = make_bst(heap, rng, size)
    model = _model_of(heap, root, "x", "BstNode*")
    result = _CHECKER.check(model, parse_formula("exists lo, hi. bst(x, lo, hi)"))
    assert result is not None and result.covers_everything()


@settings(max_examples=15, deadline=None)
@given(size=st.integers(min_value=0, max_value=12), seed=st.integers(min_value=0, max_value=1000))
def test_dll_generator_property(size, seed):
    rng = random.Random(seed)
    heap = RuntimeHeap(_STRUCTS)
    root = make_dll(heap, rng, size)
    model = _model_of(heap, root, "x", "DllNode*")
    result = _CHECKER.check(model, parse_formula("exists p, t. dll(x, p, t, nil)"))
    assert result is not None and result.covers_everything()
