"""Admission-queue properties: FIFO order, bounded capacity, determinism.

The ``AdmissionQueue`` is the whole of the daemon's admission control, so
it gets property-level scrutiny: a sequential hypothesis model check, a
deterministically-interleaved concurrent check (hypothesis picks the
interleaving, a turnstile makes real threads follow it exactly), and a
free-running stress check for the invariants that survive nondeterminism.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.daemon import AdmissionQueue


class TestSequentialModel:
    @given(
        limit=st.integers(min_value=1, max_value=4),
        ops=st.lists(
            st.one_of(st.integers(min_value=0, max_value=99), st.just("pop")),
            max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_fifo_model(self, limit, ops):
        queue = AdmissionQueue(limit)
        model: list[int] = []
        high_water = 0
        for op in ops:
            if op == "pop":
                expected = model.pop(0) if model else None
                assert queue.pop(timeout=0.0) == expected
            else:
                accepted = queue.offer(op)
                assert accepted == (len(model) < limit)
                if accepted:
                    model.append(op)
                    high_water = max(high_water, len(model))
        assert queue.depth() == len(model)
        assert queue.high_water == high_water

    def test_close_rejects_and_returns_backlog(self):
        queue = AdmissionQueue(4)
        assert queue.offer("a") and queue.offer("b")
        assert queue.close() == ["a", "b"]
        assert queue.offer("c") is False
        assert queue.pop(timeout=0.0) is None

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestConcurrentAdmission:
    @given(
        data=st.data(),
        limit=st.integers(min_value=1, max_value=3),
        counts=st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_admission_is_fifo_and_deterministic(self, data, limit, counts):
        """Real threads, hypothesis-chosen arrival order, model-checked outcome.

        A turnstile forces the producer threads to hit ``offer`` in exactly
        the drawn interleaving, so the set of admitted items -- and the pop
        order -- must equal what the sequential FIFO model predicts.  This
        is the determinism contract: admission depends only on arrival
        order and capacity, never on which thread carried the submission.
        """
        # Each producer's items, then a drawn interleaving of producer turns.
        items = {
            producer: [(producer, index) for index in range(count)]
            for producer, count in enumerate(counts)
        }
        turn_pool = [producer for producer, count in enumerate(counts) for _ in range(count)]
        order = data.draw(st.permutations(turn_pool))

        queue = AdmissionQueue(limit)
        outcomes: dict[tuple[int, int], bool] = {}
        turn = {"index": 0}
        condition = threading.Condition()

        def produce(producer: int) -> None:
            for item in items[producer]:
                with condition:
                    while order[turn["index"]] != producer:
                        condition.wait()
                    outcomes[item] = queue.offer(item)
                    turn["index"] += 1
                    condition.notify_all()

        threads = [
            threading.Thread(target=produce, args=(producer,)) for producer in items
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)

        # Replay the same arrival order against the sequential model.
        expected_accepted = []
        position = {producer: 0 for producer in items}
        for producer in order:
            item = items[producer][position[producer]]
            position[producer] += 1
            if len(expected_accepted) < limit:
                expected_accepted.append(item)
        # (The model never pops, so exactly the first `limit` arrivals fit.)
        for item, accepted in outcomes.items():
            assert accepted == (item in expected_accepted), (item, accepted)
        popped = []
        while True:
            item = queue.pop(timeout=0.0)
            if item is None:
                break
            popped.append(item)
        assert popped == expected_accepted

    def test_free_running_stress_keeps_invariants(self):
        """Unconstrained concurrency: FIFO per producer, bounded high water."""
        queue = AdmissionQueue(8)
        producers, per_producer = 4, 50
        popped: list[tuple[int, int]] = []
        accepted: dict[int, list[tuple[int, int]]] = {p: [] for p in range(producers)}
        done = threading.Event()

        def produce(producer: int) -> None:
            for index in range(per_producer):
                if queue.offer((producer, index)):
                    accepted[producer].append((producer, index))

        def consume() -> None:
            while not done.is_set() or queue.depth():
                item = queue.pop(timeout=0.01)
                if item is not None:
                    popped.append(item)

        consumer = threading.Thread(target=consume)
        consumer.start()
        threads = [threading.Thread(target=produce, args=(p,)) for p in range(producers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        done.set()
        consumer.join(timeout=10.0)
        assert not consumer.is_alive()

        assert queue.high_water <= 8
        assert sorted(popped) == sorted(
            item for items in accepted.values() for item in items
        )
        for producer in range(producers):
            # FIFO per producer: the consumer saw this producer's accepted
            # items in exactly the order it offered them.
            seen = [item for item in popped if item[0] == producer]
            assert seen == accepted[producer]
