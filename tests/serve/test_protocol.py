"""Wire-protocol unit tests: parsing, canonical encoding, record streams."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import EngineJob, InferenceEngine
from repro.serve.protocol import (
    DONE_STATUSES,
    ProtocolError,
    ServeRequest,
    done_record,
    encode,
    parse_request,
    records_for_report,
)


class TestParseRequest:
    def test_minimal_request(self):
        request = parse_request('{"id": "r1", "benchmarks": ["sll/append"]}')
        assert request == ServeRequest(id="r1", benchmarks=("sll/append",))
        assert request.seed == 0
        assert request.deadline is None

    def test_full_request(self):
        request = parse_request(
            '{"id": "r2", "benchmarks": ["a", "b"], "seed": 7, "deadline": 2.5}'
        )
        assert request.benchmarks == ("a", "b")
        assert request.seed == 7
        assert request.deadline == 2.5

    def test_round_trips_through_as_dict(self):
        request = ServeRequest(id="r3", benchmarks=("x",), seed=3, deadline=1.0)
        assert parse_request(encode(request.as_dict())) == request

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"benchmarks": ["a"]}',  # no id
            '{"id": "", "benchmarks": ["a"]}',
            '{"id": "r", "benchmarks": []}',
            '{"id": "r", "benchmarks": "a"}',
            '{"id": "r", "benchmarks": [""]}',
            '{"id": "r", "benchmarks": ["a"], "seed": "0"}',
            '{"id": "r", "benchmarks": ["a"], "seed": true}',
            '{"id": "r", "benchmarks": ["a"], "deadline": 0}',
            '{"id": "r", "benchmarks": ["a"], "deadline": -1}',
            '{"id": "r", "benchmarks": ["a"], "deadline": "fast"}',
            '{"id": "r", "benchmarks": ["a"], "surprise": 1}',
        ],
    )
    def test_rejects_malformed_lines(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)


class TestRecords:
    def test_encode_is_canonical(self):
        # Same dict, any insertion order -> the same wire line.
        assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})
        assert "\n" not in encode({"a": "x"})

    def test_done_record_validates_status(self):
        for status in DONE_STATUSES:
            record = done_record("r", status, jobs=1, counters={}, seconds=0.5)
            assert record["status"] == status
        with pytest.raises(ValueError):
            done_record("r", "exploded", jobs=1, counters={}, seconds=0.5)

    def test_failed_report_yields_single_job_record(self):
        engine = InferenceEngine(jobs=1)
        [report] = engine.run([EngineJob(kind="spec", benchmark="no/such")])
        assert not report.ok
        records = records_for_report("r9", report)
        assert len(records) == 1
        assert records[0]["type"] == "job"
        assert records[0]["ok"] is False
        assert records[0]["error"] == report.error

    def test_ok_report_streams_results_then_job(self):
        engine = InferenceEngine(jobs=1)
        [report] = engine.run([EngineJob(kind="spec", benchmark="sll/insertFront")])
        assert report.ok
        records = records_for_report("r1", report)
        kinds = [record["type"] for record in records]
        assert kinds[-1] == "job"
        assert set(kinds[:-1]) == {"result"}
        assert records[0]["location"] == "entry"
        # Every record is pure data: encodable, id-stamped, no timing.
        for record in records:
            assert record["id"] == "r1"
            assert "seconds" not in record
            json.loads(encode(record))
        assert records[-1]["ok"] is True
        assert isinstance(records[-1]["validated"], bool)
