"""Daemon equivalence suite: served results are bit-identical, always.

The serving layer must never change *what* is computed -- only where and
when.  These tests pin that three ways: a daemon-served stream against the
in-process fallback, a pooled daemon against an inline one, and a
kill-and-resume restart against a fresh run.  A subprocess test closes the
loop against the one-shot CLI (``repro infer --json``).
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.client import run_local, submit
from repro.serve.daemon import ServeDaemon
from repro.serve.journal import RequestJournal
from repro.serve.protocol import ServeRequest

#: Small smoke workload (one fast SLL job, one slower DLL job).
WORKLOAD = ("sll/insertFront", "dll/append")

_WAIT = 30.0


class _DaemonHost:
    """A thread-hosted daemon for tests; also its exit-code witness."""

    def __init__(self, tmp_path, **kwargs):
        self.socket_path = str(tmp_path / "serve.sock")
        self.daemon = ServeDaemon(self.socket_path, **kwargs)
        self.exit_code = None

        def host():
            self.exit_code = self.daemon.serve(install_signals=False)

        self.thread = threading.Thread(target=host, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + _WAIT
        while not os.path.exists(self.socket_path):
            assert time.monotonic() < deadline, "daemon never bound its socket"
            time.sleep(0.02)

    def stop(self) -> None:
        self.daemon.stop()
        self.thread.join(timeout=_WAIT)
        assert not self.thread.is_alive(), "daemon did not drain"
        assert self.exit_code == 0


def _payload(lines) -> list[str]:
    return [
        line for line in lines if '"type":"result"' in line or '"type":"job"' in line
    ]


def _by_benchmark(lines) -> dict[str, list[str]]:
    grouped: dict[str, list[str]] = {}
    for line in _payload(lines):
        grouped.setdefault(json.loads(line)["benchmark"], []).append(line)
    return grouped


def _reference(request: ServeRequest) -> list[str]:
    out = io.StringIO()
    run_local(request, out, jobs=1)
    return _payload(out.getvalue().splitlines())


class TestServedEquivalence:
    def test_daemon_stream_matches_in_process_run(self, tmp_path):
        host = _DaemonHost(tmp_path, jobs=1)
        try:
            request = ServeRequest(id="eq", benchmarks=WORKLOAD, seed=0)
            out = io.StringIO()
            terminal = submit(host.socket_path, request, out)
            assert terminal["type"] == "done"
            assert terminal["status"] == "complete"
            assert terminal["counters"]["serve_requests"] == 1
            assert _payload(out.getvalue().splitlines()) == _reference(request)
        finally:
            host.stop()

    def test_pool_daemon_matches_inline_per_benchmark(self, tmp_path):
        """--jobs 2 may reorder job completion, never change any job's records."""
        host = _DaemonHost(tmp_path, jobs=2)
        try:
            request = ServeRequest(
                id="pool", benchmarks=WORKLOAD + ("sll/reverse", "dll/concat"), seed=0
            )
            out = io.StringIO()
            terminal = submit(host.socket_path, request, out)
            assert terminal["status"] == "complete"
            assert _by_benchmark(out.getvalue().splitlines()) == _by_benchmark(
                _reference(request)
            )
        finally:
            host.stop()

    def test_request_isolation_keeps_streams_identical(self, tmp_path):
        """A warm daemon serves the same request identically every time."""
        host = _DaemonHost(tmp_path, jobs=1)
        try:
            request = ServeRequest(id="warm", benchmarks=WORKLOAD)
            streams = []
            for _ in range(2):
                out = io.StringIO()
                submit(host.socket_path, request, out)
                streams.append(_payload(out.getvalue().splitlines()))
            assert streams[0] == streams[1] == _reference(request)
        finally:
            host.stop()


class TestKillAndResume:
    def test_restart_resumes_journaled_requests_bit_identically(self, tmp_path):
        journal_path = str(tmp_path / "crashed.journal")
        requests = [
            ServeRequest(id="lost-1", benchmarks=WORKLOAD[:1], seed=0),
            ServeRequest(id="lost-2", benchmarks=WORKLOAD[1:], seed=0),
        ]
        # A daemon that crashed mid-flight: requests journaled as accepted,
        # never marked done (the journal is exactly what survives a kill -9).
        journal = RequestJournal(journal_path)
        for request in requests:
            journal.record_accepted(request)
        journal.close()

        host = _DaemonHost(tmp_path, jobs=1, journal_path=journal_path)
        try:
            recovered_path = journal_path + ".recovered.ndjson"
            expected = [line for request in requests for line in _reference(request)]
            deadline = time.monotonic() + _WAIT
            while True:
                if os.path.exists(recovered_path):
                    lines = _payload(
                        open(recovered_path, encoding="utf-8").read().splitlines()
                    )
                    if len(lines) >= len(expected):
                        break
                assert time.monotonic() < deadline, "resume never completed"
                time.sleep(0.05)
            assert lines == expected
            with host.daemon._stats_lock:
                assert host.daemon.stats.serve_requests_resumed == 2
        finally:
            host.stop()
        # After the resumed runs were journaled done, nothing is pending.
        reopened = RequestJournal(journal_path)
        assert reopened.unfinished() == []
        reopened.close()


class _RecordingSink:
    """A stand-in connection for direct _admit calls; collects records."""

    def __init__(self):
        self.records = []

    def write(self, record, fault_plan=None, request_id=""):
        self.records.append(record)


class TestSocketExclusivity:
    def test_second_daemon_leaves_live_socket_intact(self, tmp_path):
        """A refused rival must not unlink the running daemon's socket."""
        host = _DaemonHost(tmp_path, jobs=1)
        try:
            rival = ServeDaemon(
                host.socket_path, journal_path=str(tmp_path / "rival.journal")
            )
            with pytest.raises(RuntimeError, match="live daemon"):
                rival.serve(install_signals=False)
            assert os.path.exists(host.socket_path)
            out = io.StringIO()
            terminal = submit(
                host.socket_path,
                ServeRequest(id="still-up", benchmarks=WORKLOAD[:1]),
                out,
            )
            assert terminal["status"] == "complete"
        finally:
            host.stop()


class TestAdmissionJournal:
    def test_overflow_rejection_never_resumes(self, tmp_path):
        """A queue-full rejection leaves no unfinished journal entry."""
        daemon = ServeDaemon(str(tmp_path / "serve.sock"), queue_limit=1)
        sink = _RecordingSink()
        try:
            admitted = daemon._admit(
                sink, json.dumps({"id": "kept", "benchmarks": list(WORKLOAD[:1])})
            )
            assert admitted is not None
            rejected = daemon._admit(
                sink, json.dumps({"id": "spilt", "benchmarks": list(WORKLOAD[:1])})
            )
            assert rejected is None
            assert [record["type"] for record in sink.records] == [
                "accepted",
                "rejected",
            ]
            assert daemon.stats.serve_rejections == 1
        finally:
            daemon.journal.close()
        journal = RequestJournal(daemon.journal_path)
        assert [request.id for request in journal.unfinished()] == ["kept"]
        journal.close()


class TestOneShotCliEquivalence:
    @pytest.fixture(scope="class")
    def cli_env(self):
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        return env

    def test_served_invariants_match_one_shot_cli(self, tmp_path, cli_env):
        """Daemon-served records carry the invariants the batch CLI prints."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "infer", "--json"]
            + [arg for name in WORKLOAD for arg in ("--benchmark", name)],
            env=cli_env,
            capture_output=True,
            text=True,
            timeout=120,
            check=True,
        )
        cli_invariants = {
            (entry["benchmark"], inv["location"], inv["formula"], inv["spurious"])
            for entry in json.loads(completed.stdout)
            for inv in entry["invariants"]
        }

        host = _DaemonHost(tmp_path, jobs=1)
        try:
            out = io.StringIO()
            submit(host.socket_path, ServeRequest(id="cli", benchmarks=WORKLOAD), out)
        finally:
            host.stop()
        served_invariants = {
            (record["benchmark"], record["location"], inv["formula"], inv["spurious"])
            for line in out.getvalue().splitlines()
            if '"type":"result"' in line
            for record in [json.loads(line)]
            for inv in record["invariants"]
        }
        assert served_invariants == cli_invariants
