"""Request-journal tests: durability, compaction, torn lines, fault sites."""

from __future__ import annotations

import json

from repro.faults import FaultPlan, FaultRule, reset_injector
from repro.serve.journal import RequestJournal
from repro.serve.protocol import ServeRequest


def _request(request_id: str) -> ServeRequest:
    return ServeRequest(id=request_id, benchmarks=(f"bench/{request_id}",), seed=1)


class TestJournalLifecycle:
    def test_accepted_without_done_is_unfinished(self, tmp_path):
        journal = RequestJournal(tmp_path / "j.ndjson")
        journal.record_accepted(_request("a"))
        journal.record_accepted(_request("b"))
        journal.record_done("a")
        assert [r.id for r in journal.unfinished()] == ["b"]
        journal.close()

    def test_unfinished_preserves_admission_order(self, tmp_path):
        journal = RequestJournal(tmp_path / "j.ndjson")
        for request_id in ("r3", "r1", "r2"):
            journal.record_accepted(_request(request_id))
        assert [r.id for r in journal.unfinished()] == ["r3", "r1", "r2"]
        journal.close()

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = RequestJournal(path)
        journal.record_accepted(_request("a"))
        journal.close()
        # A fresh instance (a restarted daemon) sees the same state.
        reopened = RequestJournal(path)
        assert [r.id for r in reopened.unfinished()] == ["a"]
        reopened.close()

    def test_missing_file_is_empty(self, tmp_path):
        journal = RequestJournal(tmp_path / "nested" / "j.ndjson")
        assert journal.unfinished() == []
        journal.close()


class TestTornAndDamagedLines:
    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = RequestJournal(path)
        journal.record_accepted(_request("a"))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "accepted", "requ')  # crash mid-append
        reopened = RequestJournal(path)
        assert [r.id for r in reopened.unfinished()] == ["a"]
        reopened.close()

    def test_damaged_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = RequestJournal(path)
        journal.record_accepted(_request("a"))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage line\n")
        reopened = RequestJournal(path)
        reopened.record_accepted(_request("b"))
        assert [r.id for r in reopened.unfinished()] == ["a", "b"]
        reopened.close()


class TestCheckpoint:
    def test_compacts_to_unfinished_only(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = RequestJournal(path)
        for request_id in ("a", "b", "c"):
            journal.record_accepted(_request(request_id))
        journal.record_done("a")
        journal.record_done("c")
        assert journal.checkpoint() is True
        assert journal.events_since_checkpoint == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["request"]["id"] == "b"
        # The journal stays appendable after compaction.
        journal.record_done("b")
        assert journal.unfinished() == []
        journal.close()

    def test_injected_checkpoint_fault_keeps_uncompacted_journal(self, tmp_path):
        path = tmp_path / "j.ndjson"
        plan = FaultPlan(rules=(FaultRule("serve_checkpoint", "raise"),))
        reset_injector(plan)
        journal = RequestJournal(path, fault_plan=plan)
        journal.record_accepted(_request("a"))
        journal.record_done("a")
        journal.record_accepted(_request("b"))
        assert journal.checkpoint() is False
        # Uncompacted (all three events), but never less correct.
        assert len(path.read_text().splitlines()) == 3
        assert [r.id for r in journal.unfinished()] == ["b"]
        # The rule fired once; the next checkpoint succeeds and compacts.
        assert journal.checkpoint() is True
        assert len(path.read_text().splitlines()) == 1
        journal.close()
