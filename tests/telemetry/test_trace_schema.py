"""Trace schema round-trips, analysis invariants and the trace CLI."""

import json

import pytest

from repro.benchsuite.registry import get_benchmark
from repro.cli import main
from repro.core.sling import Sling, SlingConfig
from repro.telemetry import (
    TRACE_SCHEMA_VERSION,
    Telemetry,
    TraceError,
    Tracer,
    diff_summaries,
    phase_summary,
    read_trace,
    self_times,
    span_records,
    to_chrome,
)


def traced_inference(path, name: str = "sll/insertFront") -> list[dict]:
    """Run one traced benchmark inference and return the parsed trace."""
    telemetry = Telemetry(path)
    benchmark = get_benchmark(name)
    sling = Sling(
        benchmark.program,
        benchmark.predicates,
        SlingConfig(discard_crashed_runs=True, telemetry=telemetry),
    )
    sling.infer_function(benchmark.function, benchmark.test_cases(0))
    telemetry.close()
    return read_trace(path)


class TestTracerRoundTrip:
    def test_manual_spans_round_trip(self, tmp_path):
        path = tmp_path / "manual.ndjson"
        tracer = Tracer(path)
        with tracer.span("sweep", name="demo") as sweep:
            with tracer.span("job", name="sll/insertFront", seed=0) as job:
                job.set(ok=True)
            sweep.set(jobs=1)
        tracer.counters("demo", {"checker_hits": 3})
        tracer.close()

        records = read_trace(path)
        meta = [r for r in records if r["type"] == "trace_meta"]
        assert len(meta) == 1 and meta[0]["version"] == TRACE_SCHEMA_VERSION
        spans = {span["name"]: span for span in span_records(records)}
        # Spans are written on close, so the job span precedes the sweep span
        # in the file but parents correctly.
        assert spans["sll/insertFront"]["parent"] == spans["demo"]["id"]
        assert spans["demo"]["parent"] is None
        assert spans["sll/insertFront"]["attrs"] == {"seed": 0, "ok": True}
        counters = [r for r in records if r["type"] == "counters"]
        assert counters[0]["values"] == {"checker_hits": 3}

    def test_invalid_lines_are_rejected(self, tmp_path):
        path = tmp_path / "broken.ndjson"
        path.write_text('{"type": "span", "id": "1:0"}\n')
        with pytest.raises(TraceError):
            read_trace(path)
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_unknown_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.ndjson"
        path.write_text(json.dumps({"type": "trace_meta", "version": 999, "pid": 1}) + "\n")
        with pytest.raises(TraceError, match="version"):
            read_trace(path)


class TestTracedInference:
    def test_traced_run_is_schema_valid(self, tmp_path):
        records = traced_inference(tmp_path / "run.ndjson")
        kinds = {span["kind"] for span in span_records(records)}
        assert "function" in kinds
        assert "location" in kinds
        assert "candidate_group" in kinds

    def test_self_times_sum_to_root_duration(self, tmp_path):
        """Main-track spans nest, so self times are additive by construction."""
        records = traced_inference(tmp_path / "run.ndjson")
        spans = [s for s in span_records(records) if s["track"] == "main"]
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1
        total_self = sum(self_times(records).values())
        assert total_self == pytest.approx(roots[0]["dur"], rel=0.05)

    def test_phase_summary_flags_aux_kinds(self, tmp_path):
        records = traced_inference(tmp_path / "run.ndjson")
        summary = phase_summary(records)
        assert summary["function"]["count"] == 1
        assert "self_seconds" in summary["function"]
        if "stream_materialize" in summary:
            assert summary["stream_materialize"].get("aux") is True
            assert "self_seconds" not in summary["stream_materialize"]


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, tmp_path):
        records = traced_inference(tmp_path / "run.ndjson")
        chrome = json.loads(json.dumps(to_chrome(records)))
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "no complete events exported"
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)


class TestTraceCli:
    def test_summary_export_diff(self, tmp_path, capsys):
        trace_a = tmp_path / "a.ndjson"
        trace_b = tmp_path / "b.ndjson"
        traced_inference(trace_a)
        traced_inference(trace_b, name="sll/reverse")

        main(["trace", "summary", str(trace_a)])
        out = capsys.readouterr().out
        assert "phase" in out and "function" in out

        chrome_path = tmp_path / "a_chrome.json"
        main(["trace", "export", "--format", "chrome", "--out", str(chrome_path), str(trace_a)])
        with open(chrome_path, encoding="utf-8") as handle:
            chrome = json.load(handle)
        assert chrome["traceEvents"]

        main(["trace", "diff", "--json", str(trace_a), str(trace_b)])
        diff = json.loads(capsys.readouterr().out)
        assert diff == diff_summaries(read_trace(trace_a), read_trace(trace_b))
        assert "function" in diff

    def test_diff_needs_two_files(self, tmp_path):
        trace_a = tmp_path / "a.ndjson"
        traced_inference(trace_a)
        with pytest.raises(SystemExit):
            main(["trace", "diff", str(trace_a)])

    def test_summary_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "bogus.ndjson"
        bogus.write_text("{}\n")
        with pytest.raises(SystemExit):
            main(["trace", "summary", str(bogus)])
