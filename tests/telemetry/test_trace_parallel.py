"""Multiprocessing traces: worker segments merge and re-parent correctly."""

import glob

from repro.core.engine import EngineJob, InferenceEngine, default_job_config
from repro.telemetry import Telemetry, read_trace, span_records

BENCHMARKS = ("sll/insertFront", "sll/reverse", "dll/append", "dll/concat")


def test_worker_spans_reparent_under_origin(tmp_path):
    """A jobs=4 sweep yields one merged file with every job span re-parented.

    Workers write per-pid segment files; the engine folds them back into the
    main trace after the pool joins and deletes the segments.  The workers'
    root (job) spans must end up parented under the origin process's
    currently open span -- here the origin has none open at merge time, so
    they become roots -- and carry their own worker pids.
    """
    trace_path = tmp_path / "parallel.ndjson"
    telemetry = Telemetry(trace_path)
    config = default_job_config(telemetry=telemetry)
    engine = InferenceEngine(jobs=4)
    reports = engine.run(
        [EngineJob(kind="spec", benchmark=name, config=config) for name in BENCHMARKS]
    )
    telemetry.close()
    assert all(report.ok for report in reports)

    # Segments were merged and removed.
    assert glob.glob(f"{trace_path}.seg-*") == []

    records = read_trace(trace_path)
    job_spans = [span for span in span_records(records) if span["kind"] == "job"]
    assert sorted(span["name"] for span in job_spans) == sorted(BENCHMARKS)
    # The work genuinely ran in forked workers, not inline.
    origin_pid = telemetry.origin_pid
    assert {span["pid"] for span in job_spans} - {origin_pid}
    # Each job's children stayed attached across the merge.
    job_ids = {span["id"] for span in job_spans}
    function_spans = [s for s in span_records(records) if s["kind"] == "function"]
    assert len(function_spans) == len(BENCHMARKS)
    assert {span["parent"] for span in function_spans} <= job_ids


def test_worker_spans_parent_to_open_sweep_span(tmp_path):
    """With a sweep span open at merge time, worker jobs nest under it."""
    from repro.core.engine import run_category_batch

    trace_path = tmp_path / "sweep.ndjson"
    telemetry = Telemetry(trace_path)
    config = default_job_config(telemetry=telemetry)
    run_category_batch(
        "spec", categories=["SLL"], max_programs_per_category=4,
        config=config, jobs=4,
    )
    telemetry.close()

    records = read_trace(trace_path)
    sweeps = [span for span in span_records(records) if span["kind"] == "sweep"]
    assert len(sweeps) == 1
    job_spans = [span for span in span_records(records) if span["kind"] == "job"]
    assert job_spans
    assert {span["parent"] for span in job_spans} == {sweeps[0]["id"]}


def test_telemetry_pickles_without_tracer(tmp_path):
    import pickle

    telemetry = Telemetry(tmp_path / "t.ndjson")
    tracer = telemetry.tracer()
    with tracer.span("sweep", name="x"):
        clone = pickle.loads(pickle.dumps(telemetry))
    assert clone.path == telemetry.path
    assert clone.origin_pid == telemetry.origin_pid
    assert clone._tracer is None
    telemetry.close()
