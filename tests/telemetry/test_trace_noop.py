"""Tracing off (the default) must be a provable no-op.

``telemetry=None`` is the default of every entry point; these tests pin the
two halves of the zero-cost claim: no tracer object exists anywhere in the
pipeline, and a traced run produces bit-identical inference results to an
untraced one.
"""

import os

from repro.benchsuite.registry import get_benchmark
from repro.core.sling import Sling, SlingConfig
from repro.telemetry import Telemetry


class TestUntracedDefault:
    def test_no_tracer_anywhere_by_default(self):
        benchmark = get_benchmark("sll/insertFront")
        sling = Sling(
            benchmark.program, benchmark.predicates, SlingConfig(discard_crashed_runs=True)
        )
        assert sling.telemetry is None
        assert sling.tracer is None
        assert sling.checker.tracer is None

    def test_untraced_run_touches_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        benchmark = get_benchmark("sll/insertFront")
        sling = Sling(
            benchmark.program, benchmark.predicates, SlingConfig(discard_crashed_runs=True)
        )
        sling.infer_function(benchmark.function, benchmark.test_cases(0))
        assert os.listdir(tmp_path) == []


class TestTracingNeverChangesResults:
    def test_traced_run_is_bit_identical(self, tmp_path):
        benchmark = get_benchmark("sll/reverse")

        def invariants(config: SlingConfig) -> list[str]:
            sling = Sling(benchmark.program, benchmark.predicates, config)
            spec = sling.infer_function(benchmark.function, benchmark.test_cases(0))
            return [invariant.pretty() for invariant in spec.all_invariants()]

        untraced = invariants(SlingConfig(discard_crashed_runs=True))
        telemetry = Telemetry(tmp_path / "trace.ndjson")
        traced = invariants(
            SlingConfig(discard_crashed_runs=True, telemetry=telemetry)
        )
        telemetry.close()
        assert untraced == traced

    def test_traced_counters_are_identical(self, tmp_path):
        benchmark = get_benchmark("dll/append")

        def counters(config: SlingConfig) -> dict:
            sling = Sling(benchmark.program, benchmark.predicates, config)
            sling.infer_function(benchmark.function, benchmark.test_cases(0))
            return sling.cache_counters().as_dict()

        untraced = counters(SlingConfig(discard_crashed_runs=True))
        telemetry = Telemetry(tmp_path / "trace.ndjson")
        traced = counters(SlingConfig(discard_crashed_runs=True, telemetry=telemetry))
        telemetry.close()
        # The unfolding caches live on the shared registry and warm across
        # runs; everything else must match exactly.
        for key in untraced:
            if key.startswith("unfold_"):
                continue
            assert untraced[key] == traced[key], key
